//! Integration test of the full GPUJoule fitting pipeline at the paper's
//! configuration: microbenchmarks on the K40-class GPM, measured through
//! the 15 ms board sensor, must recover Table Ib — and the fitted model
//! must validate against mixed microbenchmarks within the Fig. 4a band.
//!
//! This is the repository's headline correctness test for §IV. It runs a
//! few hundred milliseconds of virtual measurement per microbenchmark and
//! takes tens of seconds; everything finer-grained lives in the crate
//! unit tests.

use mmgpu::common::units::Time;
use mmgpu::isa::{Opcode, Transaction};
use mmgpu::microbench::{fit, validate_mixed, FitConfig};
use mmgpu::silicon::VirtualK40;
use mmgpu::sim::GpuConfig;

fn paper_fit_config() -> FitConfig {
    // Slightly shortened targets keep the test under a minute while
    // leaving dozens of sensor windows per benchmark.
    FitConfig {
        gpu: GpuConfig::single_gpm(),
        target_duration: Time::from_millis(450.0),
        compute_iterations: 1200,
        rounds: 3,
    }
}

#[test]
fn fitted_tables_recover_table_1b_within_10_percent() {
    let hw = VirtualK40::new();
    let fitted = fit(&hw, &paper_fit_config());

    // Idle power (Const_Power).
    assert!(
        (fitted.const_power.watts() - 62.0).abs() < 1.0,
        "idle power {}",
        fitted.const_power
    );

    // Every published EPI within 10% (the paper's own fidelity bar).
    let expected_epi = [
        (Opcode::FAdd32, 0.06),
        (Opcode::FMul32, 0.05),
        (Opcode::FFma32, 0.05),
        (Opcode::IAdd32, 0.07),
        (Opcode::ISub32, 0.07),
        (Opcode::And32, 0.06),
        (Opcode::Or32, 0.06),
        (Opcode::Xor32, 0.06),
        (Opcode::FSin32, 0.10),
        (Opcode::FCos32, 0.10),
        (Opcode::IMul32, 0.13),
        (Opcode::IMad32, 0.15),
        (Opcode::FAdd64, 0.15),
        (Opcode::FMul64, 0.13),
        (Opcode::FFma64, 0.16),
        (Opcode::FSqrt32, 0.02),
        (Opcode::FLog232, 0.03),
        (Opcode::FExp232, 0.08),
        (Opcode::FRcp32, 0.31),
    ];
    for (op, nj) in expected_epi {
        let got = fitted.epi.get(op).nanojoules();
        let err = (got - nj).abs() / nj;
        assert!(
            err < 0.10,
            "{op}: fitted {got:.4} nJ vs Table Ib {nj} nJ ({:.1}%)",
            err * 100.0
        );
    }

    // Every published EPT within 10%.
    let expected_ept = [
        (Transaction::SharedToReg, 5.45),
        (Transaction::L1ToReg, 5.99),
        (Transaction::L2ToL1, 3.96),
        (Transaction::DramToL2, 7.82),
    ];
    for (txn, nj) in expected_ept {
        let got = fitted.ept.get(txn).nanojoules();
        let err = (got - nj).abs() / nj;
        assert!(
            err < 0.10,
            "{txn}: fitted {got:.3} nJ vs Table Ib {nj} nJ ({:.1}%)",
            err * 100.0
        );
    }

    // The derived per-bit column should reproduce Table Ib's second
    // column (5.32 / 5.85 / 15.48 / 30.55 pJ/bit) within the same bar.
    let per_bit = fitted.ept.per_bit(Transaction::DramToL2).pj_per_bit();
    assert!(
        (per_bit - 30.55).abs() / 30.55 < 0.10,
        "DRAM pJ/bit {per_bit:.2}"
    );
}

#[test]
fn mixed_validation_lands_in_fig4a_band() {
    let hw = VirtualK40::new();
    let cfg = paper_fit_config();
    let fitted = fit(&hw, &cfg);
    let model = fitted.to_energy_model();
    let report = validate_mixed(&hw, &model, &cfg.gpu, Time::from_millis(450.0));

    assert_eq!(report.len(), 5, "five Fig. 4a combinations");
    for item in report.items() {
        // Paper band: +2.5% to -6%; allow modest margin for the virtual
        // sensor's noise realization.
        assert!(
            item.error_percent() < 5.0 && item.error_percent() > -9.0,
            "{}: {:+.2}% outside the Fig. 4a band",
            item.name,
            item.error_percent()
        );
    }
    assert!(
        report.mean_abs_error_percent() < 6.0,
        "mean |err| {:.2}%",
        report.mean_abs_error_percent()
    );
}
