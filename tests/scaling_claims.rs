//! Integration tests asserting the paper's qualitative scaling claims on
//! fast smoke-scale sweeps.
//!
//! These exercise the full stack — workload generators → multi-GPM
//! performance simulator → energy model → metrics — and check the *shape*
//! results the paper's evaluation section reports: who wins, in which
//! direction, and where the crossovers sit.

use mmgpu::gpujoule::ConstantEnergyAmortization;
use mmgpu::sim::{BwSetting, Topology};
use mmgpu::workloads::{by_name, Scale, WorkloadSpec};
use mmgpu::xp::{ExpConfig, Lab};

fn mini_suite() -> Vec<WorkloadSpec> {
    ["Hotspot", "CoMD", "Stream", "Nekbone-12", "Lulesh-150"]
        .iter()
        .map(|n| by_name(n).expect("suite workload"))
        .collect()
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn scaling_speeds_up_everywhere() {
    let lab = Lab::new(Scale::Smoke);
    for w in mini_suite() {
        let s4 = lab.speedup(&w, &ExpConfig::paper_default(4, BwSetting::X2));
        assert!(s4 > 1.5, "{}: 4-GPM speedup {s4:.2}", w.name);
    }
}

#[test]
fn edpse_declines_with_module_count_on_average() {
    // Fig. 6's headline trend.
    let lab = Lab::new(Scale::Smoke);
    let suite = mini_suite();
    let at = |lab: &Lab, n: usize| {
        let v: Vec<f64> = suite
            .iter()
            .map(|w| lab.edpse(w, &ExpConfig::paper_default(n, BwSetting::X2)))
            .collect();
        mean(&v)
    };
    let e2 = at(&lab, 2);
    let e32 = at(&lab, 32);
    assert!(
        e2 > e32 + 10.0,
        "average EDPSE must decline substantially: {e2:.1} @2 vs {e32:.1} @32"
    );
}

#[test]
fn interconnect_bandwidth_dominates_edpse_at_scale() {
    // Fig. 8: higher inter-GPM bandwidth means higher EDPSE at 32 GPMs.
    let lab = Lab::new(Scale::Smoke);
    let w = by_name("Stream").unwrap();
    let x1 = lab.edpse(&w, &ExpConfig::paper_default(32, BwSetting::X1));
    let x4 = lab.edpse(&w, &ExpConfig::paper_default(32, BwSetting::X4));
    assert!(
        x4 > x1,
        "4x-BW ({x4:.1}) must beat 1x-BW ({x1:.1}) at 32 GPMs"
    );
}

#[test]
fn interconnect_energy_barely_matters() {
    // §V-C: 4x the per-bit link energy changes EDPSE by a few percent at
    // most, because link energy is a small slice of the total.
    let lab = Lab::new(Scale::Smoke);
    let w = by_name("Stream").unwrap();
    let base = ExpConfig::paper_default(32, BwSetting::X1);
    let hot = base.clone().with_link_energy_mult(4.0);
    let e_base = lab.edpse(&w, &base);
    let e_hot = lab.edpse(&w, &hot);
    let rel = (e_base - e_hot).abs() / e_base;
    assert!(
        rel < 0.10,
        "4x link energy should move EDPSE by <10% relative, got {:.1}% ({e_base:.1} -> {e_hot:.1})",
        rel * 100.0
    );
    // And it can only hurt, never help.
    assert!(e_hot <= e_base + 1e-9);
}

#[test]
fn energy_for_bandwidth_is_the_right_trade() {
    // §V-C: paying 4x link energy for 2x bandwidth *raises* EDPSE.
    let lab = Lab::new(Scale::Smoke);
    let suite = mini_suite();
    let slow_cheap = ExpConfig::paper_default(32, BwSetting::X1);
    let fast_hot =
        ExpConfig::on_board(32, BwSetting::X2, Topology::Ring).with_link_energy_mult(4.0);
    let a: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &slow_cheap)).collect();
    let b: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &fast_hot)).collect();
    assert!(
        mean(&b) > mean(&a),
        "4x-energy/2x-BW ({:.1}) must beat the baseline ({:.1})",
        mean(&b),
        mean(&a)
    );
}

#[test]
fn amortization_saves_energy_without_touching_performance() {
    // §V-C: constant-energy amortization cuts energy at identical runtime.
    let lab = Lab::new(Scale::Smoke);
    let w = by_name("Nekbone-12").unwrap();
    let none = ExpConfig::paper_default(32, BwSetting::X2)
        .with_amortization(ConstantEnergyAmortization::none());
    let half = ExpConfig::paper_default(32, BwSetting::X2)
        .with_amortization(ConstantEnergyAmortization::new(0.5));
    let p_none = lab.point(&w, &none);
    let p_half = lab.point(&w, &half);
    assert_eq!(p_none.duration(), p_half.duration());
    assert!(p_half.breakdown.total() < p_none.breakdown.total());
    // More amortization, more savings.
    let quarter = ExpConfig::paper_default(32, BwSetting::X2)
        .with_amortization(ConstantEnergyAmortization::new(0.25));
    let p_quarter = lab.point(&w, &quarter);
    assert!(p_half.breakdown.total() < p_quarter.breakdown.total());
    assert!(p_quarter.breakdown.total() < p_none.breakdown.total());
}

#[test]
fn switch_beats_ring_on_board_at_scale() {
    // Fig. 9: a high-radix switch raises EDPSE over the ring at high GPM
    // counts even with unchanged link bandwidth.
    let lab = Lab::new(Scale::Smoke);
    let suite = mini_suite();
    let ring = ExpConfig::on_board(32, BwSetting::X1, Topology::Ring);
    let switch = ExpConfig::on_board(32, BwSetting::X1, Topology::Switch);
    let r: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &ring)).collect();
    let s: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &switch)).collect();
    assert!(
        mean(&s) >= mean(&r) * 0.95,
        "switch ({:.1}) should be at least competitive with ring ({:.1})",
        mean(&s),
        mean(&r)
    );
}

#[test]
fn monolithic_scales_better_than_numa_ring() {
    // §V-B: the monolithic (ideal interconnect) comparison shows the
    // penalty is NUMA-related.
    let lab = Lab::new(Scale::Smoke);
    let w = by_name("Stream").unwrap();
    let ring = lab.speedup(&w, &ExpConfig::paper_default(32, BwSetting::X2));
    let mono = lab.speedup(
        &w,
        &ExpConfig::paper_default(32, BwSetting::X2).monolithic(),
    );
    assert!(
        mono >= ring,
        "monolithic speedup ({mono:.2}) must be at least the ring's ({ring:.2})"
    );
}

#[test]
fn naive_scaling_costs_energy_and_optimization_recovers_it() {
    // The §VII headline chain: naive on-board scaling costs substantial
    // energy; bandwidth + package amortization claw it back.
    let lab = Lab::new(Scale::Smoke);
    let suite = mini_suite();
    let naive: Vec<f64> = suite
        .iter()
        .map(|w| lab.energy_ratio(w, &ExpConfig::paper_default(32, BwSetting::X1)))
        .collect();
    let optimized: Vec<f64> = suite
        .iter()
        .map(|w| lab.energy_ratio(w, &ExpConfig::paper_default(32, BwSetting::X4)))
        .collect();
    assert!(
        mean(&naive) > mean(&optimized),
        "optimization must reduce energy: naive {:.2} vs optimized {:.2}",
        mean(&naive),
        mean(&optimized)
    );
}

#[test]
fn idle_time_rises_with_module_count_for_memory_apps() {
    // §V-B: insufficient inter-GPM bandwidth shows up as GPM idle time.
    let lab = Lab::new(Scale::Smoke);
    let w = by_name("Stream").unwrap();
    let p2 = lab.point(&w, &ExpConfig::paper_default(2, BwSetting::X1));
    let p32 = lab.point(&w, &ExpConfig::paper_default(32, BwSetting::X1));
    assert!(
        p32.counts.idle_fraction() > p2.counts.idle_fraction(),
        "idle fraction must grow: {:.2} @2 vs {:.2} @32",
        p2.counts.idle_fraction(),
        p32.counts.idle_fraction()
    );
}

#[test]
fn results_are_deterministic_across_labs() {
    let w = by_name("Hotspot").unwrap();
    let cfg = ExpConfig::paper_default(4, BwSetting::X2);
    let lab1 = Lab::new(Scale::Smoke);
    let lab2 = Lab::new(Scale::Smoke);
    let a = lab1.point(&w, &cfg);
    let b = lab2.point(&w, &cfg);
    assert_eq!(a.counts.as_ref(), b.counts.as_ref());
    assert_eq!(a.breakdown, b.breakdown);
}
