//! The complete full-scale reproduction verdict, as an (expensive,
//! `--ignored`) integration test:
//!
//! ```sh
//! cargo test --release --test full_scale_verdict -- --ignored --nocapture
//! ```

use mmgpu::workloads::Scale;
use mmgpu::xp::{default_suite, evaluate_scaling_claims, render_claims, Lab};

#[test]
#[ignore = "runs the full paper-scale sweep (~10 minutes)"]
fn full_scale_scaling_claims_pass() {
    let lab = Lab::new(Scale::Full);
    let suite = default_suite();
    let claims = evaluate_scaling_claims(&lab, &suite).expect("full-scale sweep evaluates");
    println!("{}", render_claims(&claims));
    let failing: Vec<&str> = claims.iter().filter(|c| !c.pass).map(|c| c.id).collect();
    assert!(
        failing.is_empty(),
        "claims failing at full scale: {failing:?}"
    );
}
