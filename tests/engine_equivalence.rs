//! Golden equivalence: the event-driven fast-forward engine must
//! reproduce the naive per-cycle loop bit-for-bit on real Table II
//! workloads across a seeded configuration matrix — cycles, every
//! per-transaction count, and the GPUJoule energy breakdown derived
//! from them. This is the repo-level guarantee that the performance
//! work of the engine cannot drift any figure.

use mmgpu::gpujoule::EnergyModel;
use mmgpu::sim::{
    BwSetting, CtaSchedule, EngineMode, GpuConfig, GpuSim, L2Mode, PagePolicy, Topology,
    WarpScheduler,
};
use mmgpu::workloads::{by_name, Scale};

/// The seeded matrix: every axis the figures ablate, at tiny scale.
fn config_matrix() -> Vec<(String, GpuConfig)> {
    let mut configs = Vec::new();
    for gpms in [1usize, 2, 4] {
        for topology in [Topology::Ring, Topology::Switch] {
            let mut cfg = GpuConfig::tiny(gpms);
            cfg.topology = topology;
            configs.push((format!("tiny/{gpms}gpm/{topology:?}"), cfg));
        }
    }
    // The scheduler / placement / L2 ablation corners.
    let mut gto = GpuConfig::tiny(2);
    gto.warp_scheduler = WarpScheduler::GreedyThenOldest;
    gto.cta_schedule = CtaSchedule::RoundRobin;
    configs.push(("tiny/2gpm/gto-rr".to_string(), gto));
    let mut memside = GpuConfig::tiny(4);
    memside.l2_mode = L2Mode::MemorySide;
    memside.page_policy = PagePolicy::Interleaved;
    configs.push(("tiny/4gpm/memside-interleaved".to_string(), memside));
    // One paper-scale point with the low-bandwidth on-board setting.
    configs.push((
        "paper/2gpm/x1".to_string(),
        GpuConfig::paper(2, BwSetting::X1, Topology::Ring),
    ));
    configs
}

#[test]
fn fast_forward_matches_naive_loop_on_real_workloads() {
    // One compute-heavy, one memory-heavy, one irregular app.
    for name in ["BPROP", "Stream", "BFS"] {
        let w = by_name(name).unwrap_or_else(|| panic!("workload {name} missing"));
        for (label, cfg) in config_matrix() {
            let launches = w.launches(Scale::Smoke);
            let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
            let mut naive = GpuSim::with_mode(&cfg, EngineMode::Naive);
            let re = event.run_workload(&launches);
            let rn = naive.run_workload(&launches);

            // Whole-result bit equality (per-kernel cycles, counts, CTAs).
            assert_eq!(re, rn, "{name} on {label}: workload results diverged");

            // The derived quantities the figures are built from.
            let ce = re.total_counts();
            let cn = rn.total_counts();
            assert_eq!(
                ce.txns, cn.txns,
                "{name} on {label}: transaction counts diverged"
            );
            let model = EnergyModel::k40();
            assert_eq!(
                model.estimate(&ce),
                model.estimate(&cn),
                "{name} on {label}: energy breakdowns diverged"
            );

            // Memory-side state stays in lockstep too, not just outputs.
            assert_eq!(
                event.memory().txns(),
                naive.memory().txns(),
                "{name} on {label}: memory-system counters diverged"
            );
        }
    }
}

#[test]
fn parallel_engine_matches_event_driven_on_real_workloads() {
    // The same repo-level guarantee for the sharded engine: real
    // Table II workloads across the seeded configuration matrix, with
    // results, transaction counts, the GPUJoule energy breakdown, and
    // memory-system counters all bit-identical to the serial
    // event-driven engine (the determinism contract of DESIGN.md §17).
    for name in ["BPROP", "Stream", "BFS"] {
        let w = by_name(name).unwrap_or_else(|| panic!("workload {name} missing"));
        for (label, cfg) in config_matrix() {
            let launches = w.launches(Scale::Smoke);
            let mut event = GpuSim::with_mode(&cfg, EngineMode::EventDriven);
            let mut par = GpuSim::with_mode(&cfg, EngineMode::Parallel);
            par.set_sim_threads(Some(4));
            let re = event.run_workload(&launches);
            let rp = par.run_workload(&launches);

            assert_eq!(rp, re, "{name} on {label}: workload results diverged");

            let ce = re.total_counts();
            let cp = rp.total_counts();
            assert_eq!(
                cp.txns, ce.txns,
                "{name} on {label}: transaction counts diverged"
            );
            let model = EnergyModel::k40();
            assert_eq!(
                model.estimate(&cp),
                model.estimate(&ce),
                "{name} on {label}: energy breakdowns diverged"
            );
            assert_eq!(
                par.memory().txns(),
                event.memory().txns(),
                "{name} on {label}: memory-system counters diverged"
            );
        }
    }
}

#[test]
fn shadow_par_mode_validates_a_full_workload_end_to_end() {
    // ShadowPar runs the naive reference on cloned machine state per
    // kernel and asserts bit-equality against the sharded engine
    // internally.
    let w = by_name("Stream").unwrap();
    let mut sim = GpuSim::with_mode(&GpuConfig::tiny(4), EngineMode::ShadowPar);
    sim.set_sim_threads(Some(4));
    let result = sim.run_workload(&w.launches(Scale::Smoke));
    assert!(result.total_cycles() > 0);
}

#[test]
fn shadow_mode_validates_a_full_workload_end_to_end() {
    // Shadow mode runs both loops on cloned machine state per kernel and
    // asserts bit-equality internally; surviving a multi-kernel workload
    // is the strongest self-check the engine has.
    let w = by_name("Stream").unwrap();
    let mut sim = GpuSim::with_mode(&GpuConfig::tiny(4), EngineMode::Shadow);
    let result = sim.run_workload(&w.launches(Scale::Smoke));
    assert!(result.total_cycles() > 0);
    // And fast-forward must actually engage on a bandwidth-bound app.
    assert!(
        sim.fast_forward_stats().skipped_cycles > 0,
        "Stream should trigger fast-forward jumps"
    );
}
