//! §IV-B3 portability: the identical fitting pipeline recovers the hidden
//! parameters of a *different* virtual GPU (16 nm Pascal-class) without
//! any per-board changes.

use mmgpu::common::units::Time;
use mmgpu::isa::Opcode;
use mmgpu::microbench::{fit, validate_mixed, FitConfig};
use mmgpu::silicon::{TruthModel, VirtualK40};
use mmgpu::sim::{BwSetting, GpmConfig, GpuConfig, Topology};

fn pascal_fit_config() -> FitConfig {
    let mut gpu = GpuConfig::paper(1, BwSetting::X2, Topology::Ring);
    gpu.gpm = GpmConfig::pascal_class();
    gpu.inter_gpm_bw = BwSetting::X2.inter_gpm_bw(gpu.gpm.dram_bw);
    FitConfig {
        gpu,
        target_duration: Time::from_millis(300.0),
        compute_iterations: 600,
        rounds: 2,
    }
}

#[test]
fn pipeline_recovers_a_different_board_unchanged() {
    let hw = VirtualK40::new().with_truth(TruthModel::pascal_class());
    let cfg = pascal_fit_config();
    let fitted = fit(&hw, &cfg);
    let truth = hw.truth();

    // Idle power.
    assert!(
        (fitted.const_power.watts() - truth.idle_power().watts()).abs() < 1.0,
        "idle {}",
        fitted.const_power
    );

    // Every compute EPI within 10% of the planted (scaled) values.
    for op in Opcode::ALL {
        let got = fitted.epi.get(op).nanojoules();
        let want = truth.true_epi(op).nanojoules();
        let err = (got - want).abs() / want;
        assert!(err < 0.10, "{op}: fitted {got:.4} vs planted {want:.4}");
    }

    // EPTs land at or above the planted values (floor-power absorption),
    // within a sane bound.
    for txn in mmgpu::isa::Transaction::ALL
        .iter()
        .filter(|t| t.is_intra_gpm())
    {
        let got = fitted.ept.get(*txn).nanojoules();
        let want = truth.true_ept(*txn).nanojoules();
        assert!(
            got > 0.8 * want && got < 2.0 * want,
            "{txn}: {got:.3} vs {want:.3}"
        );
    }

    // And the fitted model validates on its own board.
    let model = fitted.to_energy_model();
    let report = validate_mixed(&hw, &model, &cfg.gpu, Time::from_millis(300.0));
    assert!(
        report.mean_abs_error_percent() < 8.0,
        "mean |err| {:.1}%",
        report.mean_abs_error_percent()
    );
}
