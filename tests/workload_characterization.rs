//! Integration checks that the Table II surrogates express their claimed
//! character on the actual simulator — the compute/memory split is a
//! property of behaviour, not just a label.

use mmgpu::sim::{GpuConfig, GpuSim};
use mmgpu::workloads::{scaling_suite, suite, Category, Scale};

/// DRAM utilization of a workload on the single-GPM baseline.
fn dram_utilization(name: &str) -> f64 {
    let w = suite().into_iter().find(|w| w.name == name).unwrap();
    let mut sim = GpuSim::new(&GpuConfig::tiny(1));
    let result = sim.run_workload(&w.launches(Scale::Smoke));
    sim.memory().utilization_report(result.total_cycles()).dram
}

#[test]
fn memory_apps_use_more_dram_bandwidth_than_compute_apps() {
    let mut compute = Vec::new();
    let mut memory = Vec::new();
    for w in scaling_suite() {
        let util = dram_utilization(w.name);
        match w.category {
            Category::Compute => compute.push((w.name, util)),
            Category::Memory => memory.push((w.name, util)),
        }
    }
    let avg = |v: &[(&str, f64)]| v.iter().map(|&(_, u)| u).sum::<f64>() / v.len() as f64;
    let c = avg(&compute);
    let m = avg(&memory);
    assert!(
        m > 1.5 * c,
        "memory apps should be far more DRAM-hungry: C={c:.3} ({compute:?}) vs M={m:.3} ({memory:?})"
    );
}

#[test]
fn every_table_ii_app_runs_to_completion() {
    for w in suite() {
        let mut sim = GpuSim::new(&GpuConfig::tiny(2));
        let result = sim.run_workload(&w.launches(Scale::Smoke));
        assert!(result.total_cycles() > 0, "{} did nothing", w.name);
        let counts = result.total_counts();
        assert!(
            counts.total_instructions() > 0,
            "{} executed no instructions",
            w.name
        );
        assert!(counts.elapsed.is_positive());
    }
}

#[test]
fn stream_is_the_most_bandwidth_bound_app() {
    // The STREAM triad is the canonical bandwidth benchmark; the surrogate
    // should saturate DRAM harder than any compute-intensive app.
    let stream = dram_utilization("Stream");
    for w in scaling_suite() {
        if w.category == Category::Compute {
            let u = dram_utilization(w.name);
            assert!(
                stream > u,
                "Stream ({stream:.3}) should beat compute app {} ({u:.3})",
                w.name
            );
        }
    }
}

#[test]
fn runs_replay_bit_identically() {
    let w = suite()
        .into_iter()
        .find(|w| w.name == "Lulesh-150")
        .unwrap();
    let run = || {
        let mut sim = GpuSim::new(&GpuConfig::tiny(2));
        sim.run_workload(&w.launches(Scale::Smoke)).total_counts()
    };
    assert_eq!(run(), run());
}
