//! End-to-end daemon test over the real artifact registry: a smoke-scale
//! `xpd` server answers `fig2` with the exact bytes `xp run --out` would
//! write, serves the repeat from the content-addressed store, evaluates
//! config-delta ("what-if") queries, and keeps its store across a
//! daemon restart.

use mmgpu::common::proto::{QueryRequest, Source};
use mmgpu::workloads::Scale;
use mmgpu::xp::query::artifact_file_bytes;
use mmgpu::xp::registry::{ArtifactRegistry, RegistryOptions};
use mmgpu::xp::{default_suite, Lab, RegistryEngine};
use mmgpu::xpd::client::{self, Endpoint};
use mmgpu::xpd::server::{Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpd-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(store_dir: &Path) -> (Endpoint, JoinHandle<Result<(), String>>) {
    let engine = Arc::new(RegistryEngine::new(Scale::Smoke, 2, false));
    let mut config = ServerConfig::new(store_dir.to_path_buf());
    config.tcp = Some("127.0.0.1:0".to_string());
    let server = Server::bind(config, engine).unwrap();
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (Endpoint::Tcp(addr.to_string()), handle)
}

fn shutdown(endpoint: &Endpoint, handle: JoinHandle<Result<(), String>>) {
    let response = client::request(endpoint, &QueryRequest::shutdown(), None).unwrap();
    assert_eq!(response.status, "ok");
    handle.join().unwrap().unwrap();
}

#[test]
fn daemon_answers_match_a_local_run_and_persist() {
    let dir = temp_dir("registry");
    let store_dir = dir.join("store");
    let (endpoint, handle) = start(&store_dir);

    // Cold: the daemon schedules fig2 through the sweep executor.
    let request = QueryRequest::query("fig2");
    let first = client::request(&endpoint, &request, None).unwrap();
    assert_eq!(first.status, "ok", "error: {:?}", first.error);
    assert_eq!(first.source, Some(Source::Computed));
    let payload = first.payload.clone().unwrap();

    // The payload is byte-identical to what `xp run --out` writes:
    // the artifact evaluated locally, pretty-rendered, driver newline.
    let lab = Lab::with_threads(Scale::Smoke, 2);
    let registry = ArtifactRegistry::standard(&RegistryOptions { validation: false });
    let local = registry
        .get("fig2")
        .unwrap()
        .evaluate(&lab, &default_suite())
        .unwrap();
    assert_eq!(
        payload,
        artifact_file_bytes(&local.json),
        "daemon == xp run bytes"
    );

    // Warm: the repeat is a store hit with the same bytes and digest.
    let second = client::request(&endpoint, &request, None).unwrap();
    assert_eq!(second.source, Some(Source::Store));
    assert_eq!(second.payload.as_deref(), Some(payload.as_str()));
    assert_eq!(second.digest, first.digest);

    // A config-delta query renders the what-if payload and is itself
    // stored under a distinct digest.
    let whatif = QueryRequest::query("fig2").with_set("gpms", "2");
    let cold = client::request(&endpoint, &whatif, None).unwrap();
    assert_eq!(cold.status, "ok", "error: {:?}", cold.error);
    assert_ne!(cold.digest, first.digest, "deltas change the store key");
    let body = cold.payload.unwrap();
    assert!(
        body.contains("\"kind\": \"whatif\""),
        "what-if payload kind"
    );
    assert!(body.contains("\"gpms\": \"2\""), "echoes the applied delta");
    let warm = client::request(&endpoint, &whatif, None).unwrap();
    assert_eq!(warm.source, Some(Source::Store));
    assert_eq!(warm.payload.as_deref(), Some(body.as_str()));

    // Bad requests fail fast without disturbing the store.
    let bad = client::request(
        &endpoint,
        &QueryRequest::query("fig2").with_set("bw", "9x"),
        None,
    )
    .unwrap();
    assert_eq!(bad.status, "error");

    shutdown(&endpoint, handle);

    // A fresh daemon over the same store directory serves both answers
    // warm: nothing is re-simulated after a restart.
    let (endpoint, handle) = start(&store_dir);
    let served = client::request(&endpoint, &request, None).unwrap();
    assert_eq!(served.source, Some(Source::Store), "store survives restart");
    assert_eq!(served.payload.as_deref(), Some(payload.as_str()));
    let served = client::request(&endpoint, &whatif, None).unwrap();
    assert_eq!(served.source, Some(Source::Store));
    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
