//! Fit GPUJoule from scratch against the virtual Tesla K40 — the paper's
//! §IV workflow end to end: microbenchmarks, the power sensor, Eq. 5,
//! and the mixed-instruction validation step.
//!
//! The fitting pipeline never reads the silicon's hidden parameters; it
//! only sees NVML-style power readings. Recovering Table Ib is the test.
//!
//! ```sh
//! cargo run --release --example energy_model_fitting            # full fit
//! cargo run --release --example energy_model_fitting -- --fast  # reduced
//! ```

use mmgpu::common::units::Time;
use mmgpu::microbench::{fit, validate_mixed, FitConfig};
use mmgpu::silicon::VirtualK40;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let hw = VirtualK40::new();
    let cfg = if fast {
        FitConfig::fast()
    } else {
        FitConfig::default()
    };

    println!("fitting GPUJoule through the board power sensor...");
    let fitted = fit(&hw, &cfg);

    println!("\nfitted Energy-Per-Instruction table:");
    println!("{}", fitted.epi);
    println!("fitted Energy-Per-Transaction table:");
    println!("{}", fitted.ept);
    println!("fitted EPStall: {:.3} nJ", fitted.ep_stall.nanojoules());
    println!("measured idle (Const_Power): {}", fitted.const_power);

    // The Fig. 4a check: combine instruction types and compare model
    // versus sensor.
    let model = fitted.to_energy_model();
    let report = validate_mixed(&hw, &model, &cfg.gpu, Time::from_millis(400.0));
    println!("mixed-instruction validation (paper band +2.5% .. -6%):");
    println!("{report}");
}
