//! Quickstart: estimate GPU energy with GPUJoule and score a scaled
//! design with EDPSE.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mmgpu::common::units::{Energy, Time};
use mmgpu::gpujoule::{
    EdpScalingEfficiency, EnergyComponent, EnergyDelay, EnergyModel, IntegrationDomain,
    MultiGpmEnergyConfig,
};
use mmgpu::isa::{EventCounts, Opcode, Transaction};

fn main() {
    // --- 1. The fitted single-GPU model (Table Ib values) ---------------
    let model = EnergyModel::k40();

    // A hypothetical kernel: 200M FMA threads-instructions, a million
    // DRAM transactions, 2 ms of runtime.
    let mut events = EventCounts::new();
    events.instrs.add(Opcode::FFma32, 200_000_000);
    events.instrs.add(Opcode::IAdd32, 40_000_000);
    events.txns.add(Transaction::L1ToReg, 3_000_000);
    events.txns.add(Transaction::L2ToL1, 4_000_000);
    events.txns.add(Transaction::DramToL2, 1_000_000);
    events.stall_cycles = 5_000_000;
    events.elapsed = Time::from_millis(2.0);

    let breakdown = model.estimate(&events);
    println!("single-GPU estimate (Eq. 4):");
    println!("{breakdown}");

    // --- 2. The same work on an 8-module on-package GPU -----------------
    // Scaling gives a 6.5x speedup but adds NUMA traffic.
    let config = MultiGpmEnergyConfig::new(8, IntegrationDomain::OnPackage);
    let scaled_model = config.build_model();

    let mut scaled_events = events.clone();
    scaled_events.elapsed = Time::from_millis(2.0 / 6.5);
    scaled_events.inter_gpm_bytes = mmgpu::common::Bytes::from_mib(96);
    scaled_events.stall_cycles = 9_000_000;

    let scaled = scaled_model.estimate(&scaled_events);
    println!("8-GPM estimate under {config}:");
    println!("{scaled}");
    println!(
        "inter-module share: {:.1}%",
        scaled.fraction(EnergyComponent::InterModule) * 100.0
    );

    // --- 3. Was the scaling worth it? EDPSE (Eq. 2) ----------------------
    let base = EnergyDelay::new(breakdown.total(), events.elapsed);
    let big = EnergyDelay::new(scaled.total(), scaled_events.elapsed);
    let edpse = EdpScalingEfficiency::compute(base, big, 8).expect("valid design points");
    println!("EDPSE of the 8-GPM design: {edpse}");
    println!(
        "meets the paper's 50% production threshold: {}",
        edpse.meets_threshold()
    );

    // ED2PSE weighs performance more heavily.
    let ed2 = mmgpu::gpujoule::EdipScalingEfficiency::compute(base, big, 8, 2)
        .expect("valid design points");
    println!("{ed2}");

    // Silence the unused-energy lint in case of refactors.
    let _ = Energy::ZERO;
}
