//! Bring your own kernel: implement [`KernelProgram`] directly, simulate
//! it on multi-module configurations, and charge it with the energy
//! model. This is the extension point a downstream user starts from.
//!
//! The kernel here is a tiled matrix-multiply-like sweep: each CTA loads
//! two input tiles (one streamed, one reused) and writes an output tile.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use mmgpu::common::{CtaId, WarpId};
use mmgpu::gpujoule::{EdpScalingEfficiency, EnergyDelay, IntegrationDomain, MultiGpmEnergyConfig};
use mmgpu::isa::{GridShape, KernelProgram, MemRef, Opcode, WarpInstr, WarpInstrStream};
use mmgpu::sim::{BwSetting, GpuConfig, GpuSim, Topology};

/// A GEMM-flavored kernel: stream tiles of A, reuse a tile of B (shared
/// memory), FMA-heavy inner product, write C.
struct TiledGemm {
    /// Tiles along one matrix dimension; the grid is `tiles x tiles` CTAs.
    tiles: u32,
}

impl TiledGemm {
    const WARPS_PER_CTA: u32 = 8;
    const K_STEPS: u32 = 24;
}

impl KernelProgram for TiledGemm {
    fn name(&self) -> &str {
        "tiled-gemm"
    }

    fn grid(&self) -> GridShape {
        GridShape::new(self.tiles * self.tiles, Self::WARPS_PER_CTA)
    }

    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let tiles = self.tiles as u64;
        let (row, col) = (cta.0 as u64 / tiles, cta.0 as u64 % tiles);
        let w = warp.0 as u64;
        let a_base = row << 20;
        let b_base = (1 << 36) + (col << 20);
        let c_base = (1 << 37) + ((row * tiles + col) << 14);
        Box::new((0..Self::K_STEPS as u64).flat_map(move |k| {
            let a = WarpInstr::Mem(MemRef::global_load(a_base + k * 4096 + w * 128));
            let b = WarpInstr::Mem(MemRef::global_load(b_base + k * 4096 + w * 128));
            let smem = WarpInstr::Mem(MemRef::shared((w * 128) % (48 * 1024), false));
            let fmas = std::iter::repeat_n(WarpInstr::Compute(Opcode::FFma32), 16);
            let store = WarpInstr::Mem(MemRef::global_store(c_base + k * 1024 + w * 128));
            [a, b, smem]
                .into_iter()
                .chain(fmas)
                .chain(std::iter::once(store))
        }))
    }

    fn footprint_bytes(&self) -> u64 {
        (self.tiles as u64 * self.tiles as u64) << 14
    }
}

fn main() {
    let kernel = TiledGemm { tiles: 32 }; // 1024 CTAs

    // Single-module baseline.
    let mut sim1 = GpuSim::new(&GpuConfig::single_gpm());
    sim1.prefault(&kernel);
    let base = sim1.run_kernel(&kernel);
    let base_energy = MultiGpmEnergyConfig::new(1, IntegrationDomain::OnPackage)
        .build_model()
        .estimate(&base.counts);
    println!(
        "1-GPM: {} cycles, {} ({:.1}% idle)",
        base.cycles,
        base_energy.total(),
        base.counts.idle_fraction() * 100.0
    );

    // Scale it across on-package module counts.
    for gpms in [2usize, 4, 8, 16] {
        let cfg = GpuConfig::paper(gpms, BwSetting::X2, Topology::Ring);
        let mut sim = GpuSim::new(&cfg);
        sim.prefault(&kernel);
        let run = sim.run_kernel(&kernel);
        let energy = MultiGpmEnergyConfig::new(gpms, IntegrationDomain::OnPackage)
            .build_model()
            .estimate(&run.counts);

        let edpse = EdpScalingEfficiency::compute(
            EnergyDelay::new(base_energy.total(), base.counts.elapsed),
            EnergyDelay::new(energy.total(), run.counts.elapsed),
            gpms,
        )
        .expect("valid design points");

        println!(
            "{gpms}-GPM: {} cycles ({:.2}x), {}, EDPSE {edpse}",
            run.cycles,
            base.cycles as f64 / run.cycles as f64,
            energy.total(),
        );
    }
}
