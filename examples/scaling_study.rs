//! A miniature version of the paper's §V scaling study: run two
//! workloads from the Table II suite across 1–32 GPMs, at all three
//! bandwidth settings, and report speedup, energy, and EDPSE.
//!
//! ```sh
//! cargo run --release --example scaling_study            # full problem size
//! cargo run --release --example scaling_study -- --smoke # fast small run
//! ```

use mmgpu::common::table::TextTable;
use mmgpu::sim::BwSetting;
use mmgpu::workloads::{by_name, Scale};
use mmgpu::xp::{ExpConfig, Lab};

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let lab = Lab::new(scale);

    for name in ["Hotspot", "Stream"] {
        let workload = by_name(name).expect("workload in Table II suite");
        println!("\n{workload} — scaling from 1 to 32 GPMs");
        let mut table = TextTable::new(["config", "BW", "speedup", "energy vs 1-GPM", "EDPSE (%)"]);
        for gpms in [2usize, 4, 8, 16, 32] {
            for bw in BwSetting::ALL {
                let cfg = ExpConfig::paper_default(gpms, bw);
                let speedup = lab.speedup(&workload, &cfg);
                let energy = lab.energy_ratio(&workload, &cfg);
                let edpse = lab.edpse(&workload, &cfg);
                table.row([
                    format!("{gpms}-GPM"),
                    bw.to_string(),
                    format!("{speedup:.2}"),
                    format!("{energy:.2}"),
                    format!("{edpse:.1}"),
                ]);
            }
        }
        println!("{table}");
    }

    println!(
        "simulations run: {} (energy-model variants reuse cached runs)",
        lab.cached_runs()
    );
}
