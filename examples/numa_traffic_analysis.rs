//! Diagnose *why* a workload stops scaling: resource utilizations, load
//! latencies, page balance, and the energy breakdown, side by side across
//! module counts. This is the workflow §V-B of the paper walks through
//! when it attributes the EDPSE collapse to inter-GPM bandwidth.
//!
//! ```sh
//! cargo run --release --example numa_traffic_analysis [workload]
//! ```

use mmgpu::common::table::TextTable;
use mmgpu::gpujoule::{EnergyComponent, IntegrationDomain, MultiGpmEnergyConfig};
use mmgpu::sim::{BwSetting, GpuConfig, GpuSim, Topology};
use mmgpu::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .filter(|a| a != "--smoke")
        .unwrap_or_else(|| "Nekbone-12".to_string());
    let workload = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}; see Table II for names");
        std::process::exit(1);
    });
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };

    println!("NUMA scaling diagnosis for {workload}\n");
    let mut t = TextTable::new([
        "GPMs",
        "cycles",
        "idle %",
        "dram util",
        "link avg/max",
        "remote lat",
        "const share",
        "inter-module share",
    ]);
    for gpms in [1usize, 4, 16, 32] {
        let cfg = GpuConfig::paper(gpms, BwSetting::X2, Topology::Ring);
        let mut sim = GpuSim::new(&cfg);
        let result = sim.run_workload(&workload.launches(scale));
        let counts = result.total_counts();
        let util = sim.memory().utilization_report(result.total_cycles());
        let lat = sim.memory().latency_stats();

        let energy_cfg = MultiGpmEnergyConfig::new(gpms, IntegrationDomain::OnPackage);
        let breakdown = energy_cfg.build_model().estimate(&counts);

        t.row([
            gpms.to_string(),
            format!("{}k", result.total_cycles() / 1000),
            format!("{:.0}", counts.idle_fraction() * 100.0),
            format!("{:.2}", util.dram),
            format!("{:.2}/{:.2}", util.link_avg, util.link_max),
            format!("{:.0} cyc", lat.mean_remote()),
            format!(
                "{:.0}%",
                breakdown.fraction(EnergyComponent::ConstantOverhead) * 100.0
            ),
            format!(
                "{:.1}%",
                breakdown.fraction(EnergyComponent::InterModule) * 100.0
            ),
        ]);
    }
    println!("{t}");
    println!(
        "Reading: rising idle % with a saturated hottest link and a growing constant-energy\n\
         share is the §V-B signature — the GPU is waiting on remote memory, and every\n\
         waiting cycle pays the full constant-power bill."
    );
}
