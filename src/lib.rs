//! Umbrella crate for the HPCA 2019 multi-module GPU energy-efficiency
//! reproduction.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use one import root. The actual functionality
//! lives in:
//!
//! * [`gpujoule`] — the paper's primary contribution: the top-down energy
//!   model (Eq. 4), EPI/EPT tables, and the EDPSE metric family.
//! * [`sim`] — the cycle-level multi-GPM performance simulator substrate.
//! * [`workloads`] — synthetic surrogates for the Rodinia/CORAL suite.
//! * [`silicon`] — the "virtual Tesla K40" ground-truth hardware model and
//!   NVML-like power sensor used to fit and validate GPUJoule.
//! * [`microbench`] — the microbenchmark suite and EPI/EPT derivation.
//! * [`xp`] — the experiment harness regenerating every table and figure.
//! * [`xpd`] — the what-if sweep daemon: serves artifact queries and
//!   config-delta sweeps from a content-addressed result store.
//!
//! # Quickstart
//!
//! ```
//! use mmgpu::gpujoule::{EdpScalingEfficiency, EnergyDelay};
//! use mmgpu::common::units::{Energy, Time};
//!
//! // A 4-GPM design that runs 3.5x faster using 1.2x the energy:
//! let base = EnergyDelay::new(Energy::from_joules(100.0), Time::from_secs(10.0));
//! let scaled = EnergyDelay::new(Energy::from_joules(120.0), Time::from_secs(10.0 / 3.5));
//! let edpse = EdpScalingEfficiency::compute(base, scaled, 4).unwrap();
//! assert!(edpse.percent() > 70.0 && edpse.percent() < 75.0);
//! ```

pub use common;
pub use gpujoule;
pub use isa;
pub use microbench;
pub use runtime;
pub use silicon;
pub use sim;
pub use workloads;
pub use xp;
pub use xpd;
