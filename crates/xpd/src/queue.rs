//! A bounded, per-client-fair request queue feeding the batch
//! scheduler.
//!
//! Each client (connection) gets its own lane; the scheduler drains
//! batches round-robin across lanes, one item per lane per turn, so a
//! client flooding the daemon cannot starve a client with one pending
//! query — its request rides in the very next batch. The total queued
//! item count is capped; pushes beyond the cap fail immediately so the
//! connection thread can answer `busy` (backpressure) instead of
//! buffering unboundedly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Push failure: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity that was hit.
    pub cap: usize,
}

#[derive(Debug)]
struct Lane<T> {
    client: u64,
    items: VecDeque<T>,
}

#[derive(Debug)]
struct State<T> {
    lanes: Vec<Lane<T>>,
    /// Round-robin cursor: index of the lane the next drain starts at.
    cursor: usize,
    len: usize,
    closed: bool,
}

/// A bounded multi-lane queue with round-robin draining.
#[derive(Debug)]
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    cap: usize,
}

impl<T> FairQueue<T> {
    /// A queue holding at most `cap` items across all clients.
    pub fn new(cap: usize) -> Self {
        FairQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `item` on `client`'s lane. Returns the total queue
    /// depth after the push, or [`QueueFull`] at capacity (the item is
    /// returned to the caller untouched in that case, by value drop).
    pub fn push(&self, client: u64, item: T) -> Result<usize, QueueFull> {
        let mut state = self.state.lock().unwrap();
        if state.len >= self.cap {
            return Err(QueueFull { cap: self.cap });
        }
        match state.lanes.iter_mut().find(|l| l.client == client) {
            Some(lane) => lane.items.push_back(item),
            None => state.lanes.push(Lane {
                client,
                items: VecDeque::from([item]),
            }),
        }
        state.len += 1;
        let depth = state.len;
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Current total depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one item is queued, lingers up to `window`
    /// for more to accumulate (request batching), then drains up to
    /// `max` items round-robin across client lanes — one item per lane
    /// per turn. Returns `None` once the queue is closed *and* drained.
    pub fn pop_batch(&self, max: usize, window: Duration) -> Option<Vec<T>> {
        self.pop_batch_timed(max, window).map(|(batch, _)| batch)
    }

    /// [`pop_batch`](Self::pop_batch), plus how long the call lingered
    /// for batch-mates after the first item was available — the
    /// `batch_linger` phase of every job in the returned batch.
    pub fn pop_batch_timed(&self, max: usize, window: Duration) -> Option<(Vec<T>, Duration)> {
        let max = max.max(1);
        let mut state = self.state.lock().unwrap();
        // Wait for the first item (or close).
        while state.len == 0 {
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
        // Linger for the batch window or until the batch is full.
        let linger_start = Instant::now();
        let deadline = linger_start + window;
        while state.len < max && !state.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self.available.wait_timeout(state, deadline - now).unwrap();
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let linger = linger_start.elapsed();
        // Drain round-robin, one item per lane per turn.
        let mut batch = Vec::with_capacity(max.min(state.len));
        while batch.len() < max && state.len > 0 {
            if state.lanes.is_empty() {
                break;
            }
            let i = state.cursor % state.lanes.len();
            let lane = &mut state.lanes[i];
            if let Some(item) = lane.items.pop_front() {
                batch.push(item);
                state.len -= 1;
            }
            if state.lanes[i].items.is_empty() {
                state.lanes.remove(i);
                // Cursor now points at the lane after the removed one.
                if !state.lanes.is_empty() {
                    state.cursor %= state.lanes.len();
                }
            } else {
                state.cursor = (i + 1) % state.lanes.len();
            }
        }
        Some((batch, linger))
    }

    /// Removes `client`'s lane entirely and returns its queued items
    /// (the caller resolves their slots as failed). Used when a
    /// connection dies with work still queued: a dead client must not
    /// hold queue capacity, occupy a round-robin turn, or leave its
    /// waiters hanging. The cursor is adjusted so surviving lanes keep
    /// their drain order — removing a lane never skips another client's
    /// turn.
    pub fn drop_client(&self, client: u64) -> Vec<T> {
        let mut state = self.state.lock().unwrap();
        let Some(i) = state.lanes.iter().position(|l| l.client == client) else {
            return Vec::new();
        };
        let lane = state.lanes.remove(i);
        state.len -= lane.items.len();
        if i < state.cursor {
            state.cursor -= 1;
        }
        if !state.lanes.is_empty() {
            state.cursor %= state.lanes.len();
        } else {
            state.cursor = 0;
        }
        lane.items.into_iter().collect()
    }

    /// Closes the queue: pending items still drain, new pushes still
    /// succeed (races at shutdown resolve to a served answer, not a
    /// hang), but `pop_batch` returns `None` once empty.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const NOW: Duration = Duration::ZERO;

    #[test]
    fn drains_round_robin_across_clients() {
        let q: FairQueue<&str> = FairQueue::new(16);
        for item in ["a1", "a2", "a3", "a4"] {
            q.push(1, item).unwrap();
        }
        q.push(2, "b1").unwrap();
        q.push(3, "c1").unwrap();
        // One item per lane per turn: the flood on client 1 cannot
        // push b1/c1 out of the first batch.
        let batch = q.pop_batch(4, NOW).unwrap();
        assert_eq!(batch, vec!["a1", "b1", "c1", "a2"]);
        let batch = q.pop_batch(4, NOW).unwrap();
        assert_eq!(batch, vec!["a3", "a4"]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rejects_with_queue_full() {
        let q: FairQueue<u32> = FairQueue::new(2);
        assert_eq!(q.push(1, 10), Ok(1));
        assert_eq!(q.push(2, 20), Ok(2));
        assert_eq!(q.push(1, 30), Err(QueueFull { cap: 2 }));
        let batch = q.pop_batch(8, NOW).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(q.push(1, 30), Ok(1), "draining frees capacity");
    }

    #[test]
    fn close_drains_then_ends() {
        let q: FairQueue<u32> = FairQueue::new(8);
        q.push(1, 1).unwrap();
        q.close();
        assert_eq!(q.pop_batch(8, NOW), Some(vec![1]));
        assert_eq!(q.pop_batch(8, NOW), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close_and_on_push() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(8));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(50)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(7, 42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(vec![42]));

        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_batch(4, Duration::ZERO));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn drop_client_returns_items_and_frees_capacity() {
        let q: FairQueue<&str> = FairQueue::new(3);
        q.push(1, "a1").unwrap();
        q.push(1, "a2").unwrap();
        q.push(2, "b1").unwrap();
        assert_eq!(q.push(2, "b2"), Err(QueueFull { cap: 3 }));
        // The dead client's items come back (so their slots can be
        // failed) and its capacity is released immediately.
        assert_eq!(q.drop_client(1), vec!["a1", "a2"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.push(2, "b2"), Ok(2), "dead client freed its slots");
        assert_eq!(q.pop_batch(8, NOW).unwrap(), vec!["b1", "b2"]);
    }

    #[test]
    fn drop_client_does_not_starve_or_skew_survivors() {
        let q: FairQueue<&str> = FairQueue::new(16);
        for (client, item) in [
            (1, "a1"),
            (2, "b1"),
            (3, "c1"),
            (1, "a2"),
            (2, "b2"),
            (3, "c2"),
        ] {
            q.push(client, item).unwrap();
        }
        // Advance the cursor past lane 1 so the drop happens below it.
        assert_eq!(q.pop_batch(2, NOW).unwrap(), vec!["a1", "b1"]);
        assert_eq!(q.drop_client(1), vec!["a2"]);
        // Rotation resumes exactly where it left off: client 3 (whose
        // turn it was) is not skipped, and clients 2/3 alternate.
        assert_eq!(q.pop_batch(4, NOW).unwrap(), vec!["c1", "b2", "c2"]);
        assert!(q.is_empty());
    }

    #[test]
    fn drop_unknown_client_is_a_noop() {
        let q: FairQueue<u32> = FairQueue::new(4);
        q.push(1, 10).unwrap();
        assert_eq!(q.drop_client(99), Vec::<u32>::new());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_batch(4, NOW), Some(vec![10]));
    }

    #[test]
    fn window_accumulates_late_arrivals() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(8));
        q.push(1, 1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            q2.push(2, 2).unwrap();
        });
        let batch = q.pop_batch(8, Duration::from_millis(400)).unwrap();
        pusher.join().unwrap();
        assert_eq!(batch.len(), 2, "late arrival joined the batch: {batch:?}");
    }

    #[test]
    fn timed_pop_reports_the_linger_spent_waiting_for_batch_mates() {
        let q: FairQueue<u32> = FairQueue::new(8);
        q.push(1, 1).unwrap();
        // A full batch returns immediately: no measurable linger.
        let (batch, linger) = q.pop_batch_timed(1, Duration::from_millis(400)).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(linger < Duration::from_millis(100), "linger {linger:?}");
        // An underfull batch waits out the window, and says so.
        q.push(1, 2).unwrap();
        let (batch, linger) = q.pop_batch_timed(4, Duration::from_millis(40)).unwrap();
        assert_eq!(batch, vec![2]);
        assert!(linger >= Duration::from_millis(40), "linger {linger:?}");
    }
}
