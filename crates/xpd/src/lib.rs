//! `xpd` — the persistent what-if sweep daemon.
//!
//! The experiment harness (`xp`) answers questions like "fig6, but at
//! 2× inter-GPM bandwidth" by running a full sweep: minutes of
//! simulation for an answer that is a pure function of the
//! configuration. `xpd` makes those answers persistent and shared: a
//! daemon listening on a Unix socket and/or TCP, speaking
//! newline-delimited JSON ([`common::proto`]), that serves each query
//! from a content-addressed on-disk [`store::ResultStore`] keyed by
//! the workspace's FNV-1a config digests — falling back to cold
//! execution through the sweep executor only on a store miss.
//!
//! The crate is deliberately *engine-agnostic*: it knows how to store,
//! deduplicate, batch, and serve answers, but not how to compute them.
//! The harness implements [`QueryEngine`] over its artifact registry
//! and hands it to [`server::Server`]; keeping the dependency in that
//! direction (`xp → xpd`, never back) is what lets the daemon be
//! tested hermetically with mock engines.
//!
//! # Guarantees
//!
//! * **Exactly-once execution per digest.** Concurrent clients asking
//!   for the same (artifact, deltas) pair dedup through the same
//!   in-flight cache the sweep worker threads use
//!   ([`runtime::cache::ShardedCache`]): one leader computes, joiners
//!   wait, everyone gets the same bytes.
//! * **Byte-identity.** Payloads are the exact bytes `xp run --out`
//!   writes for the same artifact, so warm answers are
//!   indistinguishable from cold ones.
//! * **Bounded everything.** The request queue is capped (excess load
//!   answered `busy`), drained fairly across clients, and the store
//!   evicts least-recently-used results at its size cap.
//! * **Self-healing storage.** Every stored payload carries a content
//!   checksum ([`common::digest::payload_checksum`]); a torn or
//!   bit-flipped file is quarantined on read and transparently
//!   re-evaluated, never served. Durability is a policy
//!   ([`store::Durability`]), and the whole failure surface is
//!   exercisable deterministically via [`chaos::FaultInjector`]
//!   (`xp serve --chaos-seed`).
//! * **Bounded waiting.** Requests may carry a deadline; work that
//!   expires in the queue is answered `timeout`, not silently computed.
//!   Shutdown is graceful: stop accepting, drain in-flight work, flush
//!   the store, exit clean.

#![deny(missing_docs)]

pub mod chaos;
pub mod client;
pub mod flightrec;
pub mod log;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod store;

pub use common::proto::{MetricsFormat, QueryRequest, QueryResponse, RequestOp, Source};

use common::json::Json;

/// The computation behind the daemon: digesting queries and evaluating
/// the cold ones.
///
/// `xp` implements this over its artifact registry and `runtime` lab;
/// tests implement it with counters and canned payloads.
pub trait QueryEngine: Send + Sync {
    /// The content digest for `req` — the store key and dedup identity.
    /// Must be a pure function of the request (same request, same
    /// digest, across restarts) and must differ whenever the answer
    /// could differ (artifact id, config deltas, model version).
    fn digest(&self, req: &QueryRequest) -> Result<String, String>;

    /// Evaluates a batch of cold queries, one result per request, in
    /// order. Each `Ok` payload must be the exact bytes `xp run --out`
    /// would write for that query (trailing newline included); `Err`
    /// carries a human-readable failure for that request alone.
    fn evaluate(&self, reqs: &[QueryRequest]) -> Vec<Result<String, String>>;

    /// A JSON description of the engine (artifact ids, model version)
    /// reported in `stats` responses.
    fn describe(&self) -> Json;
}
