//! Deterministic chaos injection for the daemon's I/O boundaries.
//!
//! [`runtime::faults`] proved the shape at the sweep layer: a seeded,
//! pure decision function consulted at every interesting point, so an
//! injected fault fires at exactly the same place on every run and the
//! recovery paths become testable in CI without real flakiness. This
//! module extends that discipline up the serving stack. A
//! [`FaultInjector`] sits at four boundaries:
//!
//! * **Store writes** ([`IoPoint::StoreWrite`]): the payload write is
//!   torn — only a seeded fraction of the bytes reach disk. Half the
//!   time the torn temp file is also renamed into place, simulating a
//!   crash after `rename` but before the data hit the platters (the
//!   exact failure `--durability fsync` exists to prevent). The store's
//!   checksums must then quarantine the file instead of serving it.
//! * **Responses** ([`IoPoint::Response`]): the connection is dropped
//!   after a seeded prefix of the response line, so clients observe a
//!   torn response and must retry (queries are idempotent).
//! * **Accepts** ([`IoPoint::Accept`]): the freshly accepted connection
//!   is served only after a delay, exercising client connect/read
//!   timeouts.
//! * **Reads** ([`IoPoint::Read`]): the connection is closed before the
//!   request line is consumed, simulating a client (or middlebox) dying
//!   mid-request.
//!
//! Decisions are a pure function of `(seed, op_index)` where the op
//! index is a process-wide atomic sequence per injector: for a
//! single-threaded driver (the tests) the schedule is exactly
//! reproducible; under concurrency the *set* of faults stays
//! seed-stable even though their interleaving does not — the same
//! guarantee `runtime::faults` gives a multi-threaded sweep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where in the serving stack a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPoint {
    /// A payload write in the result store.
    StoreWrite,
    /// A response line about to be written to a client.
    Response,
    /// A freshly accepted connection.
    Accept,
    /// A request line about to be read from a client.
    Read,
}

/// One injected I/O fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Write only `keep_permille`/1000 of the bytes. When `rename` is
    /// set, the torn file is still renamed into place (data loss after
    /// a successful-looking write); otherwise the temp file is left
    /// behind, as a crash before `rename` would.
    TornWrite {
        /// Thousandths of the payload that reach disk.
        keep_permille: u32,
        /// Whether the torn temp file is renamed over the target.
        rename: bool,
    },
    /// Write only `keep_permille`/1000 of the response bytes, then drop
    /// the connection.
    DropResponse {
        /// Thousandths of the response line that are sent.
        keep_permille: u32,
    },
    /// Sleep before serving the accepted connection.
    DelayAccept(Duration),
    /// Close the connection instead of reading the next request.
    CloseRead,
}

/// Per-boundary injection rates, in probabilities (0.0–1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Rate of torn store writes.
    pub torn_write: f64,
    /// Rate of connections dropped mid-response.
    pub drop_response: f64,
    /// Rate of delayed accepts.
    pub delay_accept: f64,
    /// Rate of connections closed before a read.
    pub close_read: f64,
    /// How long a delayed accept sleeps.
    pub accept_delay: Duration,
}

impl Default for ChaosConfig {
    /// The rates behind `xp serve --chaos-seed`: frequent enough that a
    /// short test run hits every recovery path, rare enough that a
    /// retrying client always converges.
    fn default() -> Self {
        ChaosConfig {
            torn_write: 0.25,
            drop_response: 0.15,
            delay_accept: 0.10,
            close_read: 0.05,
            accept_delay: Duration::from_millis(30),
        }
    }
}

/// A seeded, deterministic injector of I/O faults.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    ops: AtomicU64,
    injected: AtomicU64,
    injected_live: trace::live::LiveCounter,
    torn_write_permille: u32,
    drop_response_permille: u32,
    delay_accept_permille: u32,
    close_read_permille: u32,
    accept_delay: Duration,
}

impl FaultInjector {
    /// An injector with the default [`ChaosConfig`] rates.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector::with_config(seed, &ChaosConfig::default())
    }

    /// An injector with explicit rates (tests pin single boundaries by
    /// zeroing the others).
    pub fn with_config(seed: u64, config: &ChaosConfig) -> FaultInjector {
        FaultInjector {
            seed,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            injected_live: trace::live::counter("xpd.chaos.injected"),
            torn_write_permille: permille(config.torn_write),
            drop_response_permille: permille(config.drop_response),
            delay_accept_permille: permille(config.delay_accept),
            close_read_permille: permille(config.close_read),
            accept_delay: config.accept_delay,
        }
    }

    /// The injector's seed (logged at daemon startup).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many faults this injector has fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The fault (if any) to inject at `point`. Consumes one op index;
    /// the decision is a pure function of `(seed, index, point)`.
    pub fn decide(&self, point: IoPoint) -> Option<IoFault> {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        let roll = mix(self.seed, index);
        let permille_roll = (roll % 1000) as u32;
        let rate = match point {
            IoPoint::StoreWrite => self.torn_write_permille,
            IoPoint::Response => self.drop_response_permille,
            IoPoint::Accept => self.delay_accept_permille,
            IoPoint::Read => self.close_read_permille,
        };
        if permille_roll >= rate {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.injected_live.add(1);
        // Derived bits of the same roll shape the fault: how much of the
        // write/response survives, and whether a torn write renames.
        let keep_permille = ((roll >> 10) % 1000) as u32;
        let fault = match point {
            IoPoint::StoreWrite => IoFault::TornWrite {
                keep_permille,
                rename: (roll >> 20) & 1 == 1,
            },
            IoPoint::Response => IoFault::DropResponse { keep_permille },
            IoPoint::Accept => IoFault::DelayAccept(self.accept_delay),
            IoPoint::Read => IoFault::CloseRead,
        };
        Some(fault)
    }
}

fn permille(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 1000.0).round() as u32
}

/// SplitMix64-style avalanche over `(seed, index)` — the same mixing
/// idiom as `runtime::faults`.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `bytes.len() * keep_permille / 1000`, the prefix a torn write keeps.
pub(crate) fn torn_prefix_len(total: usize, keep_permille: u32) -> usize {
    total.saturating_mul(keep_permille as usize) / 1000
}

/// The largest char-boundary index `<= at` in `s`: torn writes and torn
/// responses truncate byte-wise, but the buffers are `&str`, so the cut
/// is nudged back to a boundary rather than panicking mid-UTF-8.
pub(crate) fn floor_char_boundary(s: &str, at: usize) -> usize {
    let mut at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultInjector::new(7);
        let b = FaultInjector::new(7);
        for _ in 0..200 {
            assert_eq!(a.decide(IoPoint::StoreWrite), b.decide(IoPoint::StoreWrite));
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn different_seeds_differ_and_rates_roughly_hold() {
        let config = ChaosConfig {
            torn_write: 0.5,
            ..ChaosConfig::default()
        };
        let a = FaultInjector::with_config(1, &config);
        let b = FaultInjector::with_config(2, &config);
        let fire = |inj: &FaultInjector| {
            (0..2000)
                .filter(|_| inj.decide(IoPoint::StoreWrite).is_some())
                .count()
        };
        let (fa, fb) = (fire(&a), fire(&b));
        assert!((800..1200).contains(&fa), "seed 1 fired {fa}/2000");
        assert!((800..1200).contains(&fb), "seed 2 fired {fb}/2000");
    }

    #[test]
    fn zero_rates_never_fire() {
        let config = ChaosConfig {
            torn_write: 0.0,
            drop_response: 0.0,
            delay_accept: 0.0,
            close_read: 0.0,
            accept_delay: Duration::ZERO,
        };
        let inj = FaultInjector::with_config(3, &config);
        for point in [
            IoPoint::StoreWrite,
            IoPoint::Response,
            IoPoint::Accept,
            IoPoint::Read,
        ] {
            for _ in 0..50 {
                assert_eq!(inj.decide(point), None);
            }
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn torn_prefixes_are_proper_prefixes() {
        assert_eq!(torn_prefix_len(1000, 0), 0);
        assert_eq!(torn_prefix_len(1000, 500), 500);
        assert_eq!(torn_prefix_len(1000, 999), 999);
        assert!(torn_prefix_len(123, 999) < 123);
    }
}
