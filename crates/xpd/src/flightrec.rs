//! The flight recorder: an always-on bounded ring of recent
//! request/store/chaos events, dumped to disk when something goes
//! wrong.
//!
//! Continuous metrics (`trace::live`) answer *how much and how fast*;
//! the flight recorder answers *what just happened* — the last few
//! hundred events leading up to a panic, a quarantined store entry, or
//! an operator's `kill -QUIT`. Recording is always on and cheap (one
//! bounded `VecDeque` push under a mutex, at request granularity, not
//! per byte); nothing is written to disk until a dump is triggered, at
//! which point the ring is rendered to `<store>/flightrec-<n>.json` —
//! `n` increments across dumps *and* restarts, so a crash loop leaves a
//! numbered series instead of overwriting its own evidence.
//!
//! Dump triggers:
//! * **panic** — [`arm_panic_dumps`] chains a process-wide panic hook
//!   that dumps every live recorder (the daemon catches engine panics,
//!   but the hook runs first, so contained panics still leave a
//!   record);
//! * **quarantine** — the server's store observer dumps when a corrupt
//!   entry is quarantined;
//! * **SIGQUIT** — the CLI wires `kill -QUIT` to an explicit
//!   [`FlightRecorder::dump`], the operator's "show me what you were
//!   doing" button (serving continues).

use common::json::Json;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{SystemTime, UNIX_EPOCH};

/// Events retained in the ring; older ones fall off the front.
pub const RING_CAP: usize = 256;

/// One recorded event.
#[derive(Debug, Clone)]
struct FlightEvent {
    seq: u64,
    at_unix_ms: u64,
    kind: &'static str,
    detail: String,
}

/// An always-on bounded ring of recent events plus the machinery to
/// dump it (see the module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    seq: AtomicU64,
    next_dump: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl FlightRecorder {
    /// A recorder dumping into `dir`. Existing `flightrec-<n>.json`
    /// files there are counted so new dumps continue the series.
    pub fn new(dir: impl Into<PathBuf>) -> Arc<FlightRecorder> {
        let dir = dir.into();
        let mut next_dump = 0u64;
        if let Ok(listing) = std::fs::read_dir(&dir) {
            for entry in listing.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(n) = name
                    .strip_prefix("flightrec-")
                    .and_then(|rest| rest.strip_suffix(".json"))
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    next_dump = next_dump.max(n + 1);
                }
            }
        }
        Arc::new(FlightRecorder {
            dir,
            seq: AtomicU64::new(0),
            next_dump: AtomicU64::new(next_dump),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAP)),
        })
    }

    /// Appends one event, dropping (and counting) the oldest when full.
    pub fn record(&self, kind: &'static str, detail: String) {
        let event = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_unix_ms: unix_ms(),
            kind,
            detail,
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= RING_CAP {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Renders the ring as the dump document.
    fn render(&self, reason: &str) -> Json {
        let events: Vec<FlightEvent> = {
            let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.iter().cloned().collect()
        };
        let mut list = Json::array();
        for e in &events {
            let mut o = Json::object();
            o.insert("seq", e.seq as f64);
            o.insert("at_unix_ms", e.at_unix_ms as f64);
            o.insert("kind", e.kind);
            o.insert("detail", e.detail.as_str());
            list.push(o);
        }
        let mut doc = Json::object();
        doc.insert("reason", reason);
        doc.insert("dumped_at_unix_ms", unix_ms() as f64);
        doc.insert("pid", std::process::id() as f64);
        doc.insert("dropped", self.dropped.load(Ordering::Relaxed) as f64);
        doc.insert("events", list);
        doc
    }

    /// Dumps the ring to the next `flightrec-<n>.json` (tmp + rename,
    /// so a reader never sees a torn document) and returns its path.
    /// The ring keeps recording; a dump is a copy, not a drain.
    pub fn dump(&self, reason: &str) -> Result<PathBuf, String> {
        let n = self.next_dump.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("flightrec-{n}.json"));
        let tmp = self
            .dir
            .join(format!("flightrec-{n}.json.tmp.{}", std::process::id()));
        let body = self.render(reason).render();
        std::fs::write(&tmp, body.as_bytes())
            .map_err(|e| format!("xpd flightrec: cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("xpd flightrec: cannot rename into {}: {e}", path.display())
        })?;
        Ok(path)
    }
}

static PANIC_RECORDERS: OnceLock<Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();

/// Registers `recorder` for panic-triggered dumps, installing the
/// process-wide panic hook on first use. The hook chains to whatever
/// hook was installed before it, records the panic message into every
/// registered (still-live) recorder, and dumps each one — then lets the
/// previous hook print its usual report. Registration holds only a
/// `Weak`, so a shut-down server's recorder ages out instead of pinning
/// its store directory forever.
pub fn arm_panic_dumps(recorder: &Arc<FlightRecorder>) {
    let registry = PANIC_RECORDERS.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(registry) = PANIC_RECORDERS.get() {
                let mut recorders = registry.lock().unwrap_or_else(|e| e.into_inner());
                recorders.retain(|w| w.strong_count() > 0);
                for rec in recorders.iter().filter_map(Weak::upgrade) {
                    rec.record("panic", info.to_string());
                    if let Err(e) = rec.dump("panic") {
                        eprintln!("{e}");
                    }
                }
            }
            prev(info);
        }));
        Mutex::new(Vec::new())
    });
    registry
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::downgrade(recorder));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xpd-flightrec-{tag}-{}-{}",
            std::process::id(),
            unix_ms()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dumps_are_parseable_and_numbered_across_instances() {
        let dir = temp_dir("dump");
        let rec = FlightRecorder::new(&dir);
        rec.record("request", "id=1 op=query status=ok".to_string());
        rec.record("store", "put deadbeef".to_string());
        let path = rec.dump("test").unwrap();
        assert!(path.ends_with("flightrec-0.json"));
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("test"));
        let events = doc.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("request"));
        assert_eq!(events[1].get("seq").unwrap().as_f64(), Some(1.0));

        // A second dump and a fresh recorder both continue the series.
        assert!(rec.dump("again").unwrap().ends_with("flightrec-1.json"));
        let rec2 = FlightRecorder::new(&dir);
        assert!(rec2.dump("restart").unwrap().ends_with("flightrec-2.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let dir = temp_dir("ring");
        let rec = FlightRecorder::new(&dir);
        for i in 0..(RING_CAP + 10) {
            rec.record("request", format!("id={i}"));
        }
        let path = rec.dump("overflow").unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let events = doc.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(doc.get("dropped").unwrap().as_f64(), Some(10.0));
        // Oldest events fell off the front: the first retained seq is 10.
        assert_eq!(events[0].get("seq").unwrap().as_f64(), Some(10.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_hook_dumps_registered_recorders() {
        let dir = temp_dir("panic");
        let rec = FlightRecorder::new(&dir);
        rec.record("request", "before the crash".to_string());
        arm_panic_dumps(&rec);
        let _ = std::panic::catch_unwind(|| panic!("test panic for flightrec"));
        let dumped: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        assert!(
            !dumped.is_empty(),
            "panic hook left no dump in {}",
            dir.display()
        );
        let doc = Json::parse(&std::fs::read_to_string(&dumped[0]).unwrap()).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("panic"));
        let rendered = doc.render();
        assert!(rendered.contains("test panic for flightrec"), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
