//! Client side of the daemon protocol: connect to an endpoint, write
//! one request line, read one response line — with typed error
//! classification and an opt-in retry loop.
//!
//! The protocol is strict request/response lockstep over one stream,
//! so a [`Connection`] can be reused for a whole conversation (query,
//! stats, shutdown) and a one-shot helper ([`request`]) covers the
//! common single-query case.
//!
//! # Errors and retries
//!
//! Every failure is a [`QueryError`], split into [`Retryable`] and
//! [`Fatal`][QueryError::Fatal] at the point where the failure is
//! understood — not string-matched downstream. Retrying is *safe*
//! because queries are content-addressed and idempotent: asking twice
//! for the same digest yields the same bytes, computed at most once
//! (the daemon's in-flight dedup absorbs the duplicate). What is
//! retryable:
//!
//! * connect refused / reset — the daemon may be restarting;
//! * a torn response (connection closed, or a line without the
//!   terminating newline) — the answer was lost in transit, not wrong;
//! * a `busy` response — explicit backpressure, the queue was full.
//!
//! What is not: request rejections, engine failures, and `timeout`
//! responses (the deadline was the caller's own budget).
//! [`request_with_retries`] implements jittered exponential backoff
//! over exactly this classification.
//!
//! [`Retryable`]: QueryError::Retryable

use common::json::Json;
use common::proto::{QueryRequest, QueryResponse};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix socket path.
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
        }
    }
}

/// A classified client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Transient: the same request may succeed if sent again (daemon
    /// restarting, connection torn mid-response, queue full). Safe to
    /// retry because queries are idempotent.
    Retryable(String),
    /// Permanent: retrying the identical request cannot help (bad
    /// address, protocol violation).
    Fatal(String),
}

impl QueryError {
    /// Whether a retry may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, QueryError::Retryable(_))
    }

    /// The human-readable failure message.
    pub fn message(&self) -> &str {
        match self {
            QueryError::Retryable(m) | QueryError::Fatal(m) => m,
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

/// Classifies a connect/transport I/O failure: refused, reset, aborted,
/// and timed-out are transient (a daemon restart or a dropped
/// connection); everything else — unresolvable address, permission —
/// is permanent.
fn io_error(context: String, e: &std::io::Error) -> QueryError {
    let transient = matches!(
        e.kind(),
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::NotFound
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
            | ErrorKind::UnexpectedEof
            | ErrorKind::Interrupted
    );
    // A missing Unix socket file (NotFound) counts as transient: the
    // daemon may simply not have bound yet, the exact window a
    // retrying client is meant to ride out.
    if transient {
        QueryError::Retryable(context)
    } else {
        QueryError::Fatal(context)
    }
}

/// An open conversation with a daemon.
pub struct Connection {
    writer: Box<dyn Write>,
    reader: BufReader<Box<dyn Read>>,
    endpoint: Endpoint,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("endpoint", &self.endpoint)
            .finish()
    }
}

impl Connection {
    /// Connects to `endpoint`. `timeout` bounds the TCP connect and
    /// every subsequent read/write; `None` waits indefinitely (cold
    /// queries can legitimately take minutes of simulation).
    pub fn connect(
        endpoint: &Endpoint,
        timeout: Option<Duration>,
    ) -> Result<Connection, QueryError> {
        let fail = |e: std::io::Error| {
            io_error(format!("xpd client: cannot connect to {endpoint}: {e}"), &e)
        };
        match endpoint {
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path).map_err(fail)?;
                stream.set_read_timeout(timeout).map_err(fail)?;
                stream.set_write_timeout(timeout).map_err(fail)?;
                let reader = stream.try_clone().map_err(fail)?;
                Ok(Connection {
                    writer: Box::new(stream),
                    reader: BufReader::new(Box::new(reader)),
                    endpoint: endpoint.clone(),
                })
            }
            Endpoint::Tcp(addr) => {
                let stream = match timeout {
                    None => TcpStream::connect(addr).map_err(fail)?,
                    Some(t) => {
                        let resolved =
                            addr.to_socket_addrs()
                                .map_err(fail)?
                                .next()
                                .ok_or_else(|| {
                                    QueryError::Fatal(format!(
                                        "xpd client: {addr} resolves to nothing"
                                    ))
                                })?;
                        TcpStream::connect_timeout(&resolved, t).map_err(fail)?
                    }
                };
                stream.set_read_timeout(timeout).map_err(fail)?;
                stream.set_write_timeout(timeout).map_err(fail)?;
                let reader = stream.try_clone().map_err(fail)?;
                Ok(Connection {
                    writer: Box::new(stream),
                    reader: BufReader::new(Box::new(reader)),
                    endpoint: endpoint.clone(),
                })
            }
        }
    }

    /// Sends one request and reads its response. A connection that
    /// closes or tears mid-response is [`QueryError::Retryable`]: the
    /// answer was lost in transit, and the content-addressed request
    /// can safely be asked again on a fresh connection.
    pub fn request(&mut self, request: &QueryRequest) -> Result<QueryResponse, QueryError> {
        let endpoint = self.endpoint.clone();
        self.writer
            .write_all(request.to_json().render_jsonl_line().as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_error(format!("xpd client: cannot send to {endpoint}: {e}"), &e))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(QueryError::Retryable(format!(
                "xpd client: {endpoint} closed the connection before responding"
            ))),
            Ok(_) => {
                if !line.ends_with('\n') {
                    // The stream ended mid-line: a torn response. The
                    // bytes we did get may even parse, but they are not
                    // a complete answer — never trust them.
                    return Err(QueryError::Retryable(format!(
                        "xpd client: torn response from {endpoint} ({} bytes, no newline)",
                        line.len()
                    )));
                }
                let json = Json::parse(line.trim()).map_err(|e| {
                    QueryError::Retryable(format!("xpd client: bad response from {endpoint}: {e}"))
                })?;
                QueryResponse::from_json(&json).map_err(|e| {
                    QueryError::Retryable(format!("xpd client: bad response from {endpoint}: {e}"))
                })
            }
            Err(e) => Err(io_error(
                format!("xpd client: cannot read from {endpoint}: {e}"),
                &e,
            )),
        }
    }
}

/// One-shot helper: connect, send `request`, return the response.
pub fn request(
    endpoint: &Endpoint,
    request: &QueryRequest,
    timeout: Option<Duration>,
) -> Result<QueryResponse, QueryError> {
    Connection::connect(endpoint, timeout)?.request(request)
}

/// How [`request_with_retries`] paces itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = no retries).
    pub retries: u32,
    /// Base backoff: attempt `n` waits roughly `base * 2^n`, jittered.
    pub backoff: Duration,
    /// Seed for the deterministic jitter (callers pass the process id;
    /// tests pass a constant).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, failures surface immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// The jittered exponential delay before retry attempt `n`
    /// (0-based): uniformly between 50% and 100% of `base * 2^n`,
    /// capped at 30 s. Jitter decorrelates a thundering herd of
    /// clients that all saw `busy` at the same instant.
    pub fn delay(&self, attempt: u32) -> Duration {
        let base = self.backoff.as_millis() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let full = base.saturating_mul(1_u64 << attempt.min(16)).min(30_000);
        let jitter = splitmix(self.jitter_seed, attempt as u64) % (full / 2).max(1);
        Duration::from_millis(full - jitter)
    }
}

/// SplitMix64 avalanche — the workspace's stock deterministic mixer.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sends `request`, retrying [`QueryError::Retryable`] failures and
/// `busy` responses with jittered exponential backoff. Each attempt
/// gets a fresh connection (the torn one is useless). Returns the
/// last response when attempts run out — a final `busy` is still a
/// `busy` response, not an error, so callers keep their exit-code
/// mapping. `timeout` and `error` responses return immediately:
/// neither is improved by asking again.
pub fn request_with_retries(
    endpoint: &Endpoint,
    request: &QueryRequest,
    timeout: Option<Duration>,
    policy: &RetryPolicy,
) -> Result<QueryResponse, QueryError> {
    let mut attempt = 0_u32;
    loop {
        let outcome = self::request(endpoint, request, timeout);
        let retryable = match &outcome {
            Ok(response) => response.status == "busy",
            Err(e) => e.is_retryable(),
        };
        if !retryable || attempt >= policy.retries {
            return outcome;
        }
        std::thread::sleep(policy.delay(attempt));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_with_bounded_jitter() {
        let policy = RetryPolicy {
            retries: 5,
            backoff: Duration::from_millis(100),
            jitter_seed: 42,
        };
        for attempt in 0..5 {
            let full = 100 * (1 << attempt);
            let d = policy.delay(attempt).as_millis() as u64;
            assert!(
                d > full / 2 && d <= full,
                "attempt {attempt}: delay {d} outside ({}, {full}]",
                full / 2
            );
        }
        // Deterministic under a fixed seed.
        assert_eq!(policy.delay(3), policy.delay(3));
    }

    #[test]
    fn zero_backoff_never_sleeps() {
        assert_eq!(RetryPolicy::none().delay(0), Duration::ZERO);
        assert_eq!(RetryPolicy::none().delay(9), Duration::ZERO);
    }

    #[test]
    fn classification_is_typed_not_string_matched() {
        let busy = QueryError::Retryable("queue full".to_string());
        let bad = QueryError::Fatal("bad address".to_string());
        assert!(busy.is_retryable());
        assert!(!bad.is_retryable());
        assert_eq!(busy.message(), "queue full");
        assert_eq!(format!("{bad}"), "bad address");
    }

    #[test]
    fn connect_refused_is_retryable() {
        // Nothing listens on this socket path.
        let endpoint = Endpoint::Unix(PathBuf::from("/nonexistent/xpd-test.sock"));
        let err = Connection::connect(&endpoint, Some(Duration::from_millis(50))).unwrap_err();
        assert!(err.is_retryable(), "{err:?}");
    }
}
