//! Client side of the daemon protocol: connect to an endpoint, write
//! one request line, read one response line.
//!
//! The protocol is strict request/response lockstep over one stream,
//! so a [`Connection`] can be reused for a whole conversation (query,
//! stats, shutdown) and a one-shot helper ([`request`]) covers the
//! common single-query case.

use common::json::Json;
use common::proto::{QueryRequest, QueryResponse};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix socket path.
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
        }
    }
}

/// An open conversation with a daemon.
pub struct Connection {
    writer: Box<dyn Write>,
    reader: BufReader<Box<dyn Read>>,
    endpoint: Endpoint,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("endpoint", &self.endpoint)
            .finish()
    }
}

impl Connection {
    /// Connects to `endpoint`. `timeout` bounds the TCP connect and
    /// every subsequent read/write; `None` waits indefinitely (cold
    /// queries can legitimately take minutes of simulation).
    pub fn connect(endpoint: &Endpoint, timeout: Option<Duration>) -> Result<Connection, String> {
        let fail = |e: std::io::Error| format!("xpd client: cannot connect to {endpoint}: {e}");
        match endpoint {
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path).map_err(fail)?;
                stream.set_read_timeout(timeout).map_err(fail)?;
                stream.set_write_timeout(timeout).map_err(fail)?;
                let reader = stream.try_clone().map_err(fail)?;
                Ok(Connection {
                    writer: Box::new(stream),
                    reader: BufReader::new(Box::new(reader)),
                    endpoint: endpoint.clone(),
                })
            }
            Endpoint::Tcp(addr) => {
                let stream = match timeout {
                    None => TcpStream::connect(addr).map_err(fail)?,
                    Some(t) => {
                        let resolved = addr
                            .to_socket_addrs()
                            .map_err(fail)?
                            .next()
                            .ok_or_else(|| format!("xpd client: {addr} resolves to nothing"))?;
                        TcpStream::connect_timeout(&resolved, t).map_err(fail)?
                    }
                };
                stream.set_read_timeout(timeout).map_err(fail)?;
                stream.set_write_timeout(timeout).map_err(fail)?;
                let reader = stream.try_clone().map_err(fail)?;
                Ok(Connection {
                    writer: Box::new(stream),
                    reader: BufReader::new(Box::new(reader)),
                    endpoint: endpoint.clone(),
                })
            }
        }
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &QueryRequest) -> Result<QueryResponse, String> {
        let endpoint = self.endpoint.clone();
        self.writer
            .write_all(request.to_json().render_jsonl_line().as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("xpd client: cannot send to {endpoint}: {e}"))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(format!("xpd client: {endpoint} closed the connection")),
            Ok(_) => {
                let json = Json::parse(line.trim())
                    .map_err(|e| format!("xpd client: bad response from {endpoint}: {e}"))?;
                QueryResponse::from_json(&json)
                    .map_err(|e| format!("xpd client: bad response from {endpoint}: {e}"))
            }
            Err(e) => Err(format!("xpd client: cannot read from {endpoint}: {e}")),
        }
    }
}

/// One-shot helper: connect, send `request`, return the response.
pub fn request(
    endpoint: &Endpoint,
    request: &QueryRequest,
    timeout: Option<Duration>,
) -> Result<QueryResponse, String> {
    Connection::connect(endpoint, timeout)?.request(request)
}
