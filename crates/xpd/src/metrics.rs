//! Metrics rendering: the `metrics` request op's JSON and Prometheus
//! text exposition formats.
//!
//! Both renderings read the same two sources — the process-wide
//! always-on registry in `trace::live` (cumulative counters and
//! latency histograms, plus a ~1 minute windowed rollup for rates and
//! recent quantiles) and a [`Gauges`] of instantaneous server state
//! sampled by the caller (queue depth, store size, uptime). The
//! Prometheus exposition follows the text format version 0.0.4, so a
//! real scraper pointed at a TCP daemon's `/metrics` just works:
//! counters become `_total` families, per-op request latency becomes
//! one `summary` family with `op` labels whose quantiles come from the
//! last-minute window (and whose `_sum`/`_count` stay cumulative, the
//! standard summary semantics), and phase latencies become a second
//! summary family with `phase` labels.

use common::json::Json;
use std::time::Duration;
use trace::hist::HistogramSnapshot;
use trace::live::{self, LiveSnapshot, Window};

/// Instantaneous server state the registry cannot know: sampled by the
/// server at render time and exported as Prometheus gauges.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_cap: u64,
    /// Digests currently being computed (single-flight leaders).
    pub inflight: u64,
    /// Entries resident in the store.
    pub store_entries: u64,
    /// Payload bytes resident in the store.
    pub store_bytes: u64,
    /// Seconds since the server started (monotonic clock).
    pub uptime_secs: f64,
    /// The daemon's process ID.
    pub pid: u32,
}

/// The window quantiles are computed over.
pub const WINDOW: Duration = Duration::from_secs(60);

fn is_exported(name: &str) -> bool {
    name.starts_with("xpd.")
}

/// `xpd.request_duration.query` → `("xpd_request_duration", Some(("op", "query")))`;
/// plain counters/histograms get a mangled name and no label.
fn prom_family(name: &str) -> (String, Option<(&'static str, String)>) {
    if let Some(op) = name.strip_prefix("xpd.request_duration.") {
        return (
            "xpd_request_duration".to_string(),
            Some(("op", op.to_string())),
        );
    }
    if let Some(phase) = name.strip_prefix("xpd.phase.") {
        return (
            "xpd_phase_duration".to_string(),
            Some(("phase", phase.to_string())),
        );
    }
    let mangled: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    (mangled, None)
}

/// Counter families whose Prometheus name is not the mechanical
/// mangling of the registry name.
fn prom_counter_family(name: &str) -> String {
    if name == "xpd.request" {
        // The canonical "how many requests" family scrapers look for.
        return "xpd_requests".to_string();
    }
    prom_family(name).0
}

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn latency_json(h: &HistogramSnapshot) -> Json {
    let mut o = Json::object();
    o.insert("count", h.count as f64);
    o.insert("mean_ms", ms(h.mean() as u64));
    o.insert("p50_ms", ms(h.quantile(0.5)));
    o.insert("p99_ms", ms(h.quantile(0.99)));
    o.insert("max_ms", ms(h.max));
    o
}

/// The `metrics` op's JSON payload: gauges, cumulative counters, and a
/// last-minute window of rates and latency quantiles.
pub fn metrics_json(g: &Gauges) -> Json {
    let cum = live::cumulative();
    let win = live::window(WINDOW);
    render_json(g, &cum, &win)
}

fn render_json(g: &Gauges, cum: &LiveSnapshot, win: &Window) -> Json {
    let mut doc = Json::object();
    doc.insert("uptime_secs", g.uptime_secs);
    doc.insert("pid", g.pid as f64);

    let mut gauges = Json::object();
    gauges.insert("queue_depth", g.queue_depth as f64);
    gauges.insert("queue_cap", g.queue_cap as f64);
    gauges.insert("inflight", g.inflight as f64);
    gauges.insert("store_entries", g.store_entries as f64);
    gauges.insert("store_bytes", g.store_bytes as f64);
    doc.insert("gauges", gauges);

    let mut counters = Json::object();
    for (name, v) in cum.counters.iter().filter(|(n, _)| is_exported(n)) {
        counters.insert(name, *v as f64);
    }
    doc.insert("counters", counters);

    let mut window = Json::object();
    window.insert("elapsed_secs", secs(win.elapsed_nanos));
    let mut rates = Json::object();
    for (name, _) in win.counters.iter().filter(|(n, _)| is_exported(n)) {
        rates.insert(name, win.rate(name));
    }
    window.insert("rates", rates);
    let mut latency = Json::object();
    for (name, h) in win.histograms.iter().filter(|(n, _)| is_exported(n)) {
        if h.count > 0 {
            latency.insert(name, latency_json(h));
        }
    }
    window.insert("latency", latency);
    doc.insert("window_1m", window);
    doc
}

/// The `metrics` op's Prometheus text payload (exposition format
/// 0.0.4), served to real scrapers over the HTTP bridge.
pub fn prometheus_text(g: &Gauges) -> String {
    let cum = live::cumulative();
    let win = live::window(WINDOW);
    render_prometheus(g, &cum, &win)
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

fn render_prometheus(g: &Gauges, cum: &LiveSnapshot, win: &Window) -> String {
    let mut out = String::new();

    for (name, v) in cum.counters.iter().filter(|(n, _)| is_exported(n)) {
        let family = prom_counter_family(name);
        out.push_str(&format!(
            "# HELP {family}_total Cumulative count of `{name}` since process start.\n\
             # TYPE {family}_total counter\n\
             {family}_total {v}\n"
        ));
    }

    push_gauge(
        &mut out,
        "xpd_queue_depth",
        "Requests currently queued.",
        g.queue_depth as f64,
    );
    push_gauge(
        &mut out,
        "xpd_queue_cap",
        "Configured queue capacity.",
        g.queue_cap as f64,
    );
    push_gauge(
        &mut out,
        "xpd_inflight",
        "Digests currently being computed.",
        g.inflight as f64,
    );
    push_gauge(
        &mut out,
        "xpd_store_entries",
        "Entries resident in the store.",
        g.store_entries as f64,
    );
    push_gauge(
        &mut out,
        "xpd_store_bytes",
        "Payload bytes resident in the store.",
        g.store_bytes as f64,
    );
    push_gauge(
        &mut out,
        "xpd_uptime_seconds",
        "Seconds since the server started.",
        g.uptime_secs,
    );

    // Summaries: group histograms by family so each family gets one
    // HELP/TYPE header, with quantiles from the recent window and
    // cumulative _sum/_count (the standard summary semantics).
    let mut last_family: Option<String> = None;
    for (name, cum_h) in cum.histograms.iter().filter(|(n, _)| is_exported(n)) {
        let (family, label) = prom_family(name);
        if last_family.as_deref() != Some(&family) {
            out.push_str(&format!(
                "# HELP {family} Latency in seconds (quantiles over the last minute).\n\
                 # TYPE {family} summary\n"
            ));
            last_family = Some(family.clone());
        }
        let sel = |q: &str| match &label {
            Some((k, v)) => format!("{{{k}=\"{v}\",quantile=\"{q}\"}}"),
            None => format!("{{quantile=\"{q}\"}}"),
        };
        let bare = match &label {
            Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
            None => String::new(),
        };
        if let Some(win_h) = win.histogram(name).filter(|h| h.count > 0) {
            for (q, label_q) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{family}{} {}\n",
                    sel(label_q),
                    secs(win_h.quantile(q))
                ));
            }
        }
        out.push_str(&format!("{family}_sum{bare} {}\n", secs(cum_h.sum)));
        out.push_str(&format!("{family}_count{bare} {}\n", cum_h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Gauges, LiveSnapshot, Window) {
        let gauges = Gauges {
            queue_depth: 2,
            queue_cap: 256,
            inflight: 1,
            store_entries: 5,
            store_bytes: 1234,
            uptime_secs: 42.5,
            pid: 777,
        };
        let mut query_lat = HistogramSnapshot::default();
        for nanos in [1_000_000, 2_000_000, 150_000_000] {
            query_lat.record(nanos);
        }
        let mut queue_wait = HistogramSnapshot::default();
        queue_wait.record(500_000);
        let cum = LiveSnapshot {
            at_nanos: 90_000_000_000,
            counters: vec![
                ("not.exported".to_string(), 9),
                ("xpd.request".to_string(), 120),
                ("xpd.store.hit".to_string(), 80),
            ],
            histograms: vec![
                ("xpd.phase.queue_wait".to_string(), queue_wait.clone()),
                ("xpd.request_duration.query".to_string(), query_lat.clone()),
            ],
        };
        let win = Window {
            elapsed_nanos: 60_000_000_000,
            counters: vec![
                ("not.exported".to_string(), 9),
                ("xpd.request".to_string(), 30),
                ("xpd.store.hit".to_string(), 20),
            ],
            histograms: vec![
                ("xpd.phase.queue_wait".to_string(), queue_wait),
                ("xpd.request_duration.query".to_string(), query_lat),
            ],
        };
        (gauges, cum, win)
    }

    #[test]
    fn json_reports_gauges_cumulative_counters_and_windowed_latency() {
        let (g, cum, win) = fixture();
        let doc = render_json(&g, &cum, &win);
        assert_eq!(doc.get("uptime_secs").unwrap().as_f64(), Some(42.5));
        assert_eq!(doc.get("pid").unwrap().as_f64(), Some(777.0));
        let gauges = doc.get("gauges").unwrap();
        assert_eq!(gauges.get("queue_depth").unwrap().as_f64(), Some(2.0));
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("xpd.request").unwrap().as_f64(), Some(120.0));
        assert!(
            counters.get("not.exported").is_none(),
            "foreign names stay out"
        );
        let window = doc.get("window_1m").unwrap();
        assert_eq!(window.get("elapsed_secs").unwrap().as_f64(), Some(60.0));
        assert_eq!(
            window
                .get("rates")
                .unwrap()
                .get("xpd.request")
                .unwrap()
                .as_f64(),
            Some(0.5)
        );
        let lat = window
            .get("latency")
            .unwrap()
            .get("xpd.request_duration.query")
            .unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(3.0));
        assert!(lat.get("p99_ms").unwrap().as_f64().unwrap() >= 100.0);
    }

    #[test]
    fn prometheus_text_has_counter_gauge_and_summary_families() {
        let (g, cum, win) = fixture();
        let text = render_prometheus(&g, &cum, &win);
        assert!(text.contains("# TYPE xpd_requests_total counter"), "{text}");
        assert!(text.contains("xpd_requests_total 120"), "{text}");
        assert!(text.contains("xpd_store_hit_total 80"), "{text}");
        assert!(!text.contains("not_exported"), "{text}");
        assert!(text.contains("# TYPE xpd_queue_depth gauge"), "{text}");
        assert!(text.contains("xpd_queue_depth 2"), "{text}");
        assert!(text.contains("xpd_uptime_seconds 42.5"), "{text}");
        assert!(
            text.contains("# TYPE xpd_request_duration summary"),
            "{text}"
        );
        assert!(
            text.contains("xpd_request_duration{op=\"query\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("xpd_request_duration_count{op=\"query\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("xpd_phase_duration{phase=\"queue_wait\",quantile=\"0.5\"}"),
            "{text}"
        );
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn empty_windows_skip_quantiles_but_keep_cumulative_sums() {
        let (g, cum, mut win) = fixture();
        win.histograms.clear();
        let text = render_prometheus(&g, &cum, &win);
        assert!(!text.contains("quantile="), "{text}");
        assert!(
            text.contains("xpd_request_duration_count{op=\"query\"} 3"),
            "{text}"
        );
    }
}
