//! The content-addressed on-disk result store: one file per config
//! digest, an append-only JSONL journal for LRU order, checksummed
//! crash-safe writes with a configurable durability policy, and a size
//! cap enforced by least-recently-used eviction.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   journal.jsonl          # {"op":...,"digest":...,"ck":...} records
//!   <digest>.json          # header line + the exact payload bytes
//!   <digest>.json.tmp      # in-progress write (renamed or reaped)
//!   <digest>.json.corrupt  # quarantined payload (kept for forensics)
//! ```
//!
//! Every payload file starts with a one-line header carrying the
//! entry's digest, payload byte count, and an FNV-1a content checksum
//! ([`common::digest::payload_checksum`]); the payload bytes follow
//! verbatim. Every journal record carries a checksum of its own fields.
//! Reads verify before serving: a torn, truncated, or bit-flipped file
//! is **quarantined** (renamed to `.corrupt`, counted in
//! [`StoreStats::corrupt`] and the `xpd.store.corrupt` trace counter)
//! and reported as a miss, so the daemon transparently falls through to
//! cold re-evaluation — the store self-heals rather than serving bad
//! bytes.
//!
//! The design reuses the `xp run --resume` journal idiom: every
//! mutation appends one JSONL record, so a crash loses at most the
//! record in flight; payload files are written to a `.tmp` sibling and
//! atomically renamed, so a reader never observes a torn payload *name*
//! (torn *contents* — rename durable but data lost in a power cut — are
//! what the checksums catch). On open the journal is replayed against
//! the directory listing — files without records are verified and
//! adopted, records without files are dropped, a torn final record is
//! ignored, corruption anywhere else rebuilds the index from the files
//! themselves, and leftover `.tmp` files are reaped — so the store
//! self-heals from any crash point.
//!
//! How hard writes push the disk is a policy, [`Durability`]: `none`
//! leaves everything to the OS cache, `flush` syncs file *data* before
//! rename, and `fsync` additionally syncs the directory so the rename
//! itself survives power loss. Journal compaction always syncs the
//! directory after its rename, at every durability level: losing a
//! compacted journal loses LRU order for the whole store, which is a
//! worse deal than one extra fsync per thousand mutations.

use crate::chaos::{floor_char_boundary, torn_prefix_len, FaultInjector, IoFault, IoPoint};
use common::digest::{is_hex_digest, payload_checksum, Fnv1a};
use common::json::Json;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Rewrite the journal once it holds this many records more than the
/// live entry count (touch records accumulate on every hit).
const COMPACT_SLACK: usize = 1024;

/// Store file format version, embedded in every payload header.
const FORMAT_VERSION: f64 = 1.0;

/// How hard the store pushes writes toward the platters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No explicit syncing: writes reach the OS cache and the kernel
    /// decides when they hit disk. Fastest; a power cut can lose or
    /// tear recent entries (the checksums turn "tear" into "lose").
    None,
    /// `fdatasync` payload and journal data before renames, so a
    /// renamed file's *contents* are on disk. A power cut can still
    /// lose the rename itself (the entry vanishes, never corrupts).
    #[default]
    Flush,
    /// [`Durability::Flush`] plus directory fsync after every rename
    /// and journal-data sync after every append: an acknowledged `put`
    /// survives power loss.
    Fsync,
}

impl Durability {
    /// Parses a `--durability` flag value.
    pub fn parse(s: &str) -> Result<Durability, String> {
        match s {
            "none" => Ok(Durability::None),
            "flush" => Ok(Durability::Flush),
            "fsync" => Ok(Durability::Fsync),
            other => Err(format!(
                "unknown durability {other:?} (expected none, flush, or fsync)"
            )),
        }
    }

    fn wants_data_sync(self) -> bool {
        !matches!(self, Durability::None)
    }

    fn wants_dir_sync(self) -> bool {
        matches!(self, Durability::Fsync)
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Durability::None => "none",
            Durability::Flush => "flush",
            Durability::Fsync => "fsync",
        })
    }
}

/// Point-in-time store occupancy, for stats responses and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of stored payloads.
    pub entries: usize,
    /// Total payload bytes (headers, journal, and tmp files excluded).
    pub bytes: u64,
    /// Payloads evicted since the store was opened.
    pub evictions: u64,
    /// Payloads quarantined for failing integrity checks since the
    /// store was opened.
    pub corrupt: u64,
}

/// A mutation on the store's write path, reported to the observer the
/// server installs (flight recorder, event log). Quarantines matter
/// most — they are the store's "something on disk lied to me" signal —
/// so the server dumps the flight recorder when one fires.
#[derive(Debug, Clone)]
pub enum StoreEvent {
    /// A new payload was persisted.
    Put {
        /// The stored digest.
        digest: String,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// An entry was evicted at the size cap.
    Evicted {
        /// The evicted digest.
        digest: String,
    },
    /// An entry failed verification and was quarantined.
    Quarantined {
        /// The quarantined digest.
        digest: String,
        /// What the verification found.
        why: String,
    },
}

type Observer = Box<dyn Fn(&StoreEvent) + Send + Sync>;

#[derive(Debug)]
struct Entry {
    digest: String,
    bytes: u64,
    /// Content checksum recorded when the entry was written/journaled;
    /// `None` when only a touch record survived (verified against the
    /// file's own header on read instead).
    sum: Option<String>,
}

#[derive(Debug)]
struct State {
    /// LRU order: front is coldest, back is hottest.
    entries: Vec<Entry>,
    total_bytes: u64,
    evictions: u64,
    corrupt: u64,
    journal: File,
    journal_records: usize,
}

/// A content-addressed payload store with a byte-size cap.
///
/// All methods take `&self`; an internal mutex serializes mutations, so
/// one store can be shared across the daemon's connection threads.
pub struct ResultStore {
    dir: PathBuf,
    max_bytes: u64,
    durability: Durability,
    chaos: Option<Arc<FaultInjector>>,
    observer: OnceLock<Observer>,
    state: Mutex<State>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("max_bytes", &self.max_bytes)
            .field("durability", &self.durability)
            .finish_non_exhaustive()
    }
}

/// Renders the payload-file body for `digest`: the header line plus the
/// payload bytes verbatim. Public so tests (and external tooling) can
/// fabricate valid store files.
pub fn encode_entry(digest: &str, payload: &str) -> String {
    let mut header = Json::object();
    header.insert("v", FORMAT_VERSION);
    header.insert("digest", digest);
    header.insert("sum", payload_checksum(payload).as_str());
    header.insert("bytes", payload.len() as f64);
    format!("{}{payload}", header.render_jsonl_line())
}

/// Parses and verifies a payload-file body read back for `digest`.
/// Returns the payload and its checksum, or a description of what
/// failed (missing/garbled header, digest mismatch, truncated payload,
/// checksum mismatch).
fn decode_entry(digest: &str, body: &str) -> Result<(String, String), String> {
    let Some((header_line, payload)) = body.split_once('\n') else {
        return Err("missing header line".to_string());
    };
    let header = Json::parse(header_line).map_err(|e| format!("garbled header: {e}"))?;
    if header.get("v").and_then(Json::as_f64) != Some(FORMAT_VERSION) {
        return Err("unknown format version".to_string());
    }
    if header.get("digest").and_then(Json::as_str) != Some(digest) {
        return Err("header digest does not match file name".to_string());
    }
    let sum = header
        .get("sum")
        .and_then(Json::as_str)
        .filter(|s| is_hex_digest(s))
        .ok_or_else(|| "header missing checksum".to_string())?;
    let bytes = header
        .get("bytes")
        .and_then(Json::as_f64)
        .ok_or_else(|| "header missing byte count".to_string())?;
    if payload.len() as f64 != bytes {
        return Err(format!(
            "payload truncated: header says {bytes} bytes, file holds {}",
            payload.len()
        ));
    }
    let actual = payload_checksum(payload);
    if actual != sum {
        return Err(format!("checksum mismatch: header {sum}, content {actual}"));
    }
    Ok((payload.to_string(), sum.to_string()))
}

/// The integrity checksum of one journal record's fields.
fn record_ck(op: &str, digest: &str, bytes: Option<u64>, sum: Option<&str>) -> String {
    let mut h = Fnv1a::of(op);
    h.update("|").update(digest).update("|");
    if let Some(b) = bytes {
        h.update(&b.to_string());
    }
    h.update("|").update(sum.unwrap_or(""));
    h.hex()
}

/// Syncs a directory's metadata so a rename inside it survives power
/// loss. Failures are reported to the caller (who logs, not dies: the
/// store still works, it just lost a durability rung).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir` with a total
    /// payload cap of `max_bytes`, the default [`Durability::Flush`]
    /// policy, and no chaos injection.
    pub fn open(dir: &Path, max_bytes: u64) -> Result<ResultStore, String> {
        ResultStore::open_with(dir, max_bytes, Durability::default(), None)
    }

    /// Opens the store with an explicit durability policy and an
    /// optional chaos injector for the write path (tests, `xp serve
    /// --chaos-seed`).
    pub fn open_with(
        dir: &Path,
        max_bytes: u64,
        durability: Durability,
        chaos: Option<Arc<FaultInjector>>,
    ) -> Result<ResultStore, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("xpd store: cannot create {}: {e}", dir.display()))?;

        // Reap in-progress writes from a previous crash.
        let mut on_disk: HashMap<String, u64> = HashMap::new();
        let listing = std::fs::read_dir(dir)
            .map_err(|e| format!("xpd store: cannot list {}: {e}", dir.display()))?;
        for entry in listing {
            let entry = entry.map_err(|e| format!("xpd store: cannot list entry: {e}"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.contains(".json.tmp") {
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if let Some(stem) = name.strip_suffix(".json") {
                if is_hex_digest(stem) {
                    let len = entry
                        .metadata()
                        .map_err(|e| format!("xpd store: cannot stat {name}: {e}"))?
                        .len();
                    on_disk.insert(stem.to_string(), len);
                }
            }
        }

        // Replay the journal to recover LRU order and per-entry
        // checksums. A torn final record (crash mid-append) is ignored;
        // corruption anywhere else — unparseable JSON or a record whose
        // own checksum does not match — falls back to the directory
        // listing: the store is a cache, so self-healing beats refusing
        // to start.
        let journal_path = dir.join("journal.jsonl");
        let mut order: Vec<String> = Vec::new();
        let mut meta: HashMap<String, (Option<u64>, Option<String>)> = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&journal_path) {
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            for (i, line) in lines.iter().enumerate() {
                let parsed = Json::parse(line).ok().and_then(|rec| {
                    let op = rec.get("op").and_then(Json::as_str)?.to_string();
                    let digest = rec.get("digest").and_then(Json::as_str)?.to_string();
                    let bytes = rec.get("bytes").and_then(Json::as_f64).map(|b| b as u64);
                    let sum = rec.get("sum").and_then(Json::as_str).map(String::from);
                    if let Some(ck) = rec.get("ck").and_then(Json::as_str) {
                        if ck != record_ck(&op, &digest, bytes, sum.as_deref()) {
                            return None; // bit-flipped record
                        }
                    }
                    Some((op, digest, bytes, sum))
                });
                let Some((op, digest, bytes, sum)) = parsed else {
                    if i + 1 == lines.len() {
                        break; // torn final append
                    }
                    eprintln!(
                        "xpd store: {} is corrupt at record {}; rebuilding index from files",
                        journal_path.display(),
                        i + 1
                    );
                    order.clear();
                    meta.clear();
                    break;
                };
                order.retain(|d| d != &digest);
                match op.as_str() {
                    "put" => {
                        meta.insert(digest.clone(), (bytes, sum));
                        order.push(digest);
                    }
                    "touch" => order.push(digest),
                    _ => {}
                }
            }
        }

        // Journal entries without files are dropped; files without
        // journal entries are verified and adopted (coldest, in name
        // order, so adoption is deterministic) — or quarantined if they
        // fail their own header's checksum.
        let mut corrupt = 0_u64;
        let mut entries: Vec<Entry> = Vec::new();
        let mut adopted: Vec<String> = on_disk
            .keys()
            .filter(|d| !order.contains(d))
            .cloned()
            .collect();
        adopted.sort();
        let mut quarantine_now = |digest: &str, why: &str| {
            eprintln!("xpd store: quarantining {digest}: {why}");
            let from = dir.join(format!("{digest}.json"));
            let to = dir.join(format!("{digest}.json.corrupt"));
            if std::fs::rename(&from, &to).is_err() {
                let _ = std::fs::remove_file(&from);
            }
            trace::live::counter("xpd.store.corrupt").add(1);
            corrupt += 1;
        };
        for digest in adopted {
            match std::fs::read_to_string(dir.join(format!("{digest}.json"))) {
                Ok(body) => match decode_entry(&digest, &body) {
                    Ok((payload, sum)) => entries.push(Entry {
                        digest,
                        bytes: payload.len() as u64,
                        sum: Some(sum),
                    }),
                    Err(why) => quarantine_now(&digest, &why),
                },
                Err(e) => eprintln!("xpd store: cannot adopt {digest}: {e}"),
            }
        }
        for digest in order {
            if !on_disk.contains_key(&digest) {
                continue;
            }
            let (bytes, sum) = meta.remove(&digest).unwrap_or((None, None));
            let bytes = match bytes {
                Some(b) => b,
                // A touch-only digest (no surviving put record): read
                // the file's own header for the byte count.
                None => match std::fs::read_to_string(dir.join(format!("{digest}.json")))
                    .map_err(|e| e.to_string())
                    .and_then(|body| decode_entry(&digest, &body))
                {
                    Ok((payload, _)) => payload.len() as u64,
                    Err(why) => {
                        quarantine_now(&digest, &why);
                        continue;
                    }
                },
            };
            entries.push(Entry { digest, bytes, sum });
        }
        let total_bytes = entries.iter().map(|e| e.bytes).sum();

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| format!("xpd store: cannot open {}: {e}", journal_path.display()))?;
        let store = ResultStore {
            dir: dir.to_path_buf(),
            max_bytes: max_bytes.max(1),
            durability,
            chaos,
            observer: OnceLock::new(),
            state: Mutex::new(State {
                entries,
                total_bytes,
                evictions: 0,
                corrupt,
                journal,
                journal_records: usize::MAX, // force one compaction pass
            }),
        };
        {
            // Rewrite the journal to exactly one record per live entry,
            // and bring an over-cap store (cap lowered since last run)
            // back under its limit.
            let mut state = store.state.lock().unwrap();
            store.compact(&mut state)?;
            store.evict_over_cap(&mut state);
        }
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs the mutation observer (at most one per store; later
    /// calls are ignored). The server uses it to feed the flight
    /// recorder and event log. Called with the store lock held, so
    /// observers must not call back into the store.
    pub fn set_observer(&self, observer: impl Fn(&StoreEvent) + Send + Sync + 'static) {
        let _ = self.observer.set(Box::new(observer));
    }

    fn notify(&self, event: StoreEvent) {
        if let Some(observer) = self.observer.get() {
            observer(&event);
        }
    }

    /// The configured durability policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The payload for `digest`, touching its LRU slot. `None` on a
    /// miss — including an indexed entry whose file has gone missing
    /// (dropped, miss reported) or fails its integrity checks
    /// (quarantined, `xpd.store.corrupt` bumped, miss reported so the
    /// caller transparently re-evaluates).
    pub fn get(&self, digest: &str) -> Option<String> {
        let mut state = self.state.lock().unwrap();
        let pos = state.entries.iter().position(|e| e.digest == digest)?;
        let body = match std::fs::read_to_string(self.payload_path(digest)) {
            Ok(body) => body,
            Err(_) => {
                // The file vanished under us (manual cleanup, disk
                // trouble): drop the entry and report a miss.
                let entry = state.entries.remove(pos);
                state.total_bytes = state.total_bytes.saturating_sub(entry.bytes);
                self.append(&mut state, "evict", digest, None, None);
                return None;
            }
        };
        let verified =
            decode_entry(digest, &body).and_then(|(payload, sum)| match &state.entries[pos].sum {
                Some(expected) if *expected != sum => Err(format!(
                    "checksum mismatch: journal recorded {expected}, file holds {sum}"
                )),
                _ => Ok(payload),
            });
        match verified {
            Ok(payload) => {
                let entry = state.entries.remove(pos);
                state.entries.push(entry);
                self.append(&mut state, "touch", digest, None, None);
                let _ = self.compact_if_slack(&mut state);
                Some(payload)
            }
            Err(why) => {
                self.quarantine(&mut state, pos, &why);
                None
            }
        }
    }

    /// Stores `payload` under `digest` (crash-safe: tmp + rename, with
    /// a checksummed header and the configured [`Durability`]), then
    /// evicts least-recently-used entries until the store is back under
    /// its size cap. Re-putting an existing digest is a touch.
    pub fn put(&self, digest: &str, payload: &str) -> Result<(), String> {
        let mut state = self.state.lock().unwrap();
        if let Some(pos) = state.entries.iter().position(|e| e.digest == digest) {
            // Content-addressed: same digest, same payload. Just touch.
            let entry = state.entries.remove(pos);
            state.entries.push(entry);
            self.append(&mut state, "touch", digest, None, None);
            return Ok(());
        }
        let body = encode_entry(digest, payload);
        let sum = payload_checksum(payload);
        let path = self.payload_path(digest);
        let tmp = self
            .dir
            .join(format!("{digest}.json.tmp.{}", std::process::id()));
        self.write_payload(&tmp, &path, &body)?;
        state.entries.push(Entry {
            digest: digest.to_string(),
            bytes: payload.len() as u64,
            sum: Some(sum.clone()),
        });
        state.total_bytes += payload.len() as u64;
        self.append(
            &mut state,
            "put",
            digest,
            Some(payload.len() as u64),
            Some(&sum),
        );
        self.notify(StoreEvent::Put {
            digest: digest.to_string(),
            bytes: payload.len() as u64,
        });
        self.evict_over_cap(&mut state);
        self.compact_if_slack(&mut state)
    }

    /// Pushes the journal (and the directory holding it) to disk: the
    /// daemon calls this once on graceful shutdown so the final LRU
    /// state survives whatever happens to the host next.
    pub fn flush(&self) -> Result<(), String> {
        let state = self.state.lock().unwrap();
        state
            .journal
            .sync_data()
            .and_then(|()| sync_dir(&self.dir))
            .map_err(|e| format!("xpd store: cannot flush {}: {e}", self.dir.display()))
    }

    /// Current occupancy.
    pub fn stats(&self) -> StoreStats {
        let state = self.state.lock().unwrap();
        StoreStats {
            entries: state.entries.len(),
            bytes: state.total_bytes,
            evictions: state.evictions,
            corrupt: state.corrupt,
        }
    }

    /// The digests currently stored, coldest first (tests and debug).
    pub fn digests_lru_order(&self) -> Vec<String> {
        let state = self.state.lock().unwrap();
        state.entries.iter().map(|e| e.digest.clone()).collect()
    }

    fn payload_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Writes `body` to `tmp`, syncs per the durability policy, renames
    /// into `path`, then syncs the directory if the policy asks for it.
    /// The chaos injector can tear the write at any of those steps.
    fn write_payload(&self, tmp: &Path, path: &Path, body: &str) -> Result<(), String> {
        let chaos = self
            .chaos
            .as_ref()
            .and_then(|inj| inj.decide(IoPoint::StoreWrite));
        if let Some(IoFault::TornWrite {
            keep_permille,
            rename,
        }) = chaos
        {
            // Simulate a crash mid-write: a prefix of the bytes reaches
            // disk. With `rename`, the rename completed but the data did
            // not (a power cut under `--durability none`); without it,
            // the crash hit before rename and only the tmp file remains.
            let torn =
                &body[..floor_char_boundary(body, torn_prefix_len(body.len(), keep_permille))];
            let _ = std::fs::write(tmp, torn);
            if rename {
                let _ = std::fs::rename(tmp, path);
            }
            return Err(format!(
                "chaos: torn write for {} ({} of {} bytes{})",
                path.display(),
                torn.len(),
                body.len(),
                if rename { ", renamed" } else { "" }
            ));
        }
        let mut file = File::create(tmp)
            .map_err(|e| format!("xpd store: cannot create {}: {e}", tmp.display()))?;
        file.write_all(body.as_bytes())
            .map_err(|e| format!("xpd store: cannot write {}: {e}", tmp.display()))?;
        if self.durability.wants_data_sync() {
            file.sync_data()
                .map_err(|e| format!("xpd store: cannot sync {}: {e}", tmp.display()))?;
        }
        drop(file);
        std::fs::rename(tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(tmp);
            format!("xpd store: cannot rename into {}: {e}", path.display())
        })?;
        if self.durability.wants_dir_sync() {
            if let Err(e) = sync_dir(&self.dir) {
                eprintln!("xpd store: directory sync failed: {e}");
            }
        }
        Ok(())
    }

    /// Quarantines the entry at `pos`: the payload file is renamed to
    /// `.corrupt` (kept for forensics), the entry leaves the index, and
    /// the corruption is counted. The caller reports a miss, so the
    /// digest is transparently re-evaluated and re-stored.
    fn quarantine(&self, state: &mut State, pos: usize, why: &str) {
        let entry = state.entries.remove(pos);
        state.total_bytes = state.total_bytes.saturating_sub(entry.bytes);
        state.corrupt += 1;
        eprintln!("xpd store: quarantining {}: {why}", entry.digest);
        let from = self.payload_path(&entry.digest);
        let to = self.dir.join(format!("{}.json.corrupt", entry.digest));
        if std::fs::rename(&from, &to).is_err() {
            let _ = std::fs::remove_file(&from);
        }
        self.append(state, "evict", &entry.digest, None, None);
        trace::live::counter("xpd.store.corrupt").add(1);
        self.notify(StoreEvent::Quarantined {
            digest: entry.digest,
            why: why.to_string(),
        });
    }

    /// Appends one journal record (with its own integrity checksum) and
    /// flushes it. Journal IO failures are logged, not fatal: the store
    /// can still serve from memory and the index rebuilds from the
    /// directory on next open.
    fn append(
        &self,
        state: &mut State,
        op: &str,
        digest: &str,
        bytes: Option<u64>,
        sum: Option<&str>,
    ) {
        let mut rec = Json::object();
        rec.insert("op", op);
        rec.insert("digest", digest);
        if let Some(b) = bytes {
            rec.insert("bytes", b as f64);
        }
        if let Some(s) = sum {
            rec.insert("sum", s);
        }
        rec.insert("ck", record_ck(op, digest, bytes, sum).as_str());
        let written = state
            .journal
            .write_all(rec.render_jsonl_line().as_bytes())
            .and_then(|()| state.journal.flush())
            .and_then(|()| {
                if self.durability == Durability::Fsync {
                    state.journal.sync_data()
                } else {
                    Ok(())
                }
            });
        if let Err(e) = written {
            eprintln!("xpd store: journal append failed: {e}");
        }
        state.journal_records = state.journal_records.saturating_add(1);
    }

    /// Evicts coldest entries until the store fits its cap. The hottest
    /// entry is never evicted, even if it alone exceeds the cap —
    /// serving one oversized answer beats thrashing on it.
    fn evict_over_cap(&self, state: &mut State) {
        while state.total_bytes > self.max_bytes && state.entries.len() > 1 {
            let evicted = state.entries.remove(0);
            state.total_bytes = state.total_bytes.saturating_sub(evicted.bytes);
            state.evictions += 1;
            let _ = std::fs::remove_file(self.payload_path(&evicted.digest));
            self.append(state, "evict", &evicted.digest, None, None);
            trace::live::counter("xpd.store.eviction").add(1);
            self.notify(StoreEvent::Evicted {
                digest: evicted.digest,
            });
        }
    }

    fn compact_if_slack(&self, state: &mut State) -> Result<(), String> {
        if state.journal_records > state.entries.len().saturating_add(COMPACT_SLACK) {
            self.compact(state)
        } else {
            Ok(())
        }
    }

    /// Rewrites the journal as one `put` record per live entry in LRU
    /// order (tmp + rename, like payloads). The directory is synced
    /// after the rename **regardless of the durability policy**: a
    /// compaction that evaporates in a power cut takes the whole LRU
    /// order with it, so this rename is always made durable.
    fn compact(&self, state: &mut State) -> Result<(), String> {
        let path = self.dir.join("journal.jsonl");
        let tmp = self
            .dir
            .join(format!("journal.jsonl.tmp.{}", std::process::id()));
        let mut body = String::new();
        for entry in &state.entries {
            let mut rec = Json::object();
            rec.insert("op", "put");
            rec.insert("digest", entry.digest.as_str());
            rec.insert("bytes", entry.bytes as f64);
            if let Some(sum) = &entry.sum {
                rec.insert("sum", sum.as_str());
            }
            rec.insert(
                "ck",
                record_ck(
                    "put",
                    &entry.digest,
                    Some(entry.bytes),
                    entry.sum.as_deref(),
                )
                .as_str(),
            );
            body.push_str(&rec.render_jsonl_line());
        }
        let mut file = File::create(&tmp)
            .map_err(|e| format!("xpd store: cannot create {}: {e}", tmp.display()))?;
        file.write_all(body.as_bytes())
            .map_err(|e| format!("xpd store: cannot write {}: {e}", tmp.display()))?;
        if self.durability.wants_data_sync() {
            file.sync_data()
                .map_err(|e| format!("xpd store: cannot sync {}: {e}", tmp.display()))?;
        }
        drop(file);
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("xpd store: cannot rename into {}: {e}", path.display())
        })?;
        if let Err(e) = sync_dir(&self.dir) {
            eprintln!("xpd store: directory sync after compaction failed: {e}");
        }
        state.journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("xpd store: cannot reopen {}: {e}", path.display()))?;
        state.journal_records = state.entries.len();
        Ok(())
    }
}
