//! The content-addressed on-disk result store: one file per config
//! digest, an append-only JSONL journal for LRU order, crash-safe
//! writes, and a size cap enforced by least-recently-used eviction.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   journal.jsonl        # {"op":"put"|"touch"|"evict","digest":...}
//!   <digest>.json        # the exact payload bytes, digest = 16 hex
//!   <digest>.json.tmp    # in-progress write (renamed or reaped)
//! ```
//!
//! The design reuses the `xp run --resume` journal idiom: every
//! mutation appends one JSONL record and flushes, so a crash loses at
//! most the record in flight; payload files are written to a `.tmp`
//! sibling and atomically renamed, so a reader never observes a torn
//! payload. On open the journal is replayed against the directory
//! listing — files without records are adopted, records without files
//! are dropped, a torn final record is ignored, and leftover `.tmp`
//! files are reaped — so the store self-heals from any crash point.

use common::digest::is_hex_digest;
use common::json::Json;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Rewrite the journal once it holds this many records more than the
/// live entry count (touch records accumulate on every hit).
const COMPACT_SLACK: usize = 1024;

/// Point-in-time store occupancy, for stats responses and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of stored payloads.
    pub entries: usize,
    /// Total payload bytes (journal and tmp files excluded).
    pub bytes: u64,
    /// Payloads evicted since the store was opened.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    digest: String,
    bytes: u64,
}

#[derive(Debug)]
struct State {
    /// LRU order: front is coldest, back is hottest.
    entries: Vec<Entry>,
    total_bytes: u64,
    evictions: u64,
    journal: File,
    journal_records: usize,
}

/// A content-addressed payload store with a byte-size cap.
///
/// All methods take `&self`; an internal mutex serializes mutations, so
/// one store can be shared across the daemon's connection threads.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    max_bytes: u64,
    state: Mutex<State>,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir` with a total
    /// payload cap of `max_bytes`.
    pub fn open(dir: &Path, max_bytes: u64) -> Result<ResultStore, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("xpd store: cannot create {}: {e}", dir.display()))?;

        // Reap in-progress writes from a previous crash.
        let mut on_disk: HashMap<String, u64> = HashMap::new();
        let listing = std::fs::read_dir(dir)
            .map_err(|e| format!("xpd store: cannot list {}: {e}", dir.display()))?;
        for entry in listing {
            let entry = entry.map_err(|e| format!("xpd store: cannot list entry: {e}"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.contains(".json.tmp") {
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if let Some(stem) = name.strip_suffix(".json") {
                if is_hex_digest(stem) {
                    let len = entry
                        .metadata()
                        .map_err(|e| format!("xpd store: cannot stat {name}: {e}"))?
                        .len();
                    on_disk.insert(stem.to_string(), len);
                }
            }
        }

        // Replay the journal to recover LRU order. A torn final record
        // (crash mid-append) is ignored; corruption anywhere else falls
        // back to the directory listing — the store is a cache, so
        // self-healing beats refusing to start.
        let journal_path = dir.join("journal.jsonl");
        let mut order: Vec<String> = Vec::new();
        if let Ok(text) = std::fs::read_to_string(&journal_path) {
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            for (i, line) in lines.iter().enumerate() {
                let Ok(rec) = Json::parse(line) else {
                    if i + 1 == lines.len() {
                        break; // torn final append
                    }
                    eprintln!(
                        "xpd store: {} is corrupt at record {}; rebuilding index from files",
                        journal_path.display(),
                        i + 1
                    );
                    order.clear();
                    break;
                };
                let (op, digest) = (
                    rec.get("op").and_then(Json::as_str),
                    rec.get("digest").and_then(Json::as_str),
                );
                let Some(digest) = digest else { continue };
                order.retain(|d| d != digest);
                match op {
                    Some("put") | Some("touch") => order.push(digest.to_string()),
                    Some("evict") => {}
                    _ => {}
                }
            }
        }

        // Journal entries without files are dropped; files without
        // journal entries are adopted (coldest, in name order, so
        // adoption is deterministic).
        let mut entries: Vec<Entry> = Vec::new();
        let mut adopted: Vec<String> = on_disk
            .keys()
            .filter(|d| !order.contains(d))
            .cloned()
            .collect();
        adopted.sort();
        for digest in adopted.into_iter().chain(order) {
            if let Some(&bytes) = on_disk.get(&digest) {
                entries.push(Entry { digest, bytes });
            }
        }
        let total_bytes = entries.iter().map(|e| e.bytes).sum();

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| format!("xpd store: cannot open {}: {e}", journal_path.display()))?;
        let store = ResultStore {
            dir: dir.to_path_buf(),
            max_bytes: max_bytes.max(1),
            state: Mutex::new(State {
                entries,
                total_bytes,
                evictions: 0,
                journal,
                journal_records: usize::MAX, // force one compaction pass
            }),
        };
        {
            // Rewrite the journal to exactly one record per live entry,
            // and bring an over-cap store (cap lowered since last run)
            // back under its limit.
            let mut state = store.state.lock().unwrap();
            store.compact(&mut state)?;
            store.evict_over_cap(&mut state);
        }
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The payload for `digest`, touching its LRU slot. `None` on a
    /// miss (including an indexed entry whose file has gone missing —
    /// the entry is dropped and the miss reported).
    pub fn get(&self, digest: &str) -> Option<String> {
        let mut state = self.state.lock().unwrap();
        let pos = state.entries.iter().position(|e| e.digest == digest)?;
        match std::fs::read_to_string(self.payload_path(digest)) {
            Ok(text) => {
                let entry = state.entries.remove(pos);
                state.entries.push(entry);
                self.append(&mut state, "touch", digest);
                let _ = self.compact_if_slack(&mut state);
                Some(text)
            }
            Err(_) => {
                // The file vanished under us (manual cleanup, disk
                // trouble): drop the entry and report a miss.
                let entry = state.entries.remove(pos);
                state.total_bytes = state.total_bytes.saturating_sub(entry.bytes);
                self.append(&mut state, "evict", digest);
                None
            }
        }
    }

    /// Stores `payload` under `digest` (crash-safe: tmp + rename),
    /// then evicts least-recently-used entries until the store is back
    /// under its size cap. Re-putting an existing digest is a touch.
    pub fn put(&self, digest: &str, payload: &str) -> Result<(), String> {
        let mut state = self.state.lock().unwrap();
        if let Some(pos) = state.entries.iter().position(|e| e.digest == digest) {
            // Content-addressed: same digest, same payload. Just touch.
            let entry = state.entries.remove(pos);
            state.entries.push(entry);
            self.append(&mut state, "touch", digest);
            return Ok(());
        }
        let path = self.payload_path(digest);
        let tmp = self
            .dir
            .join(format!("{digest}.json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, payload)
            .map_err(|e| format!("xpd store: cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("xpd store: cannot rename into {}: {e}", path.display())
        })?;
        state.entries.push(Entry {
            digest: digest.to_string(),
            bytes: payload.len() as u64,
        });
        state.total_bytes += payload.len() as u64;
        self.append(&mut state, "put", digest);
        self.evict_over_cap(&mut state);
        self.compact_if_slack(&mut state)
    }

    /// Current occupancy.
    pub fn stats(&self) -> StoreStats {
        let state = self.state.lock().unwrap();
        StoreStats {
            entries: state.entries.len(),
            bytes: state.total_bytes,
            evictions: state.evictions,
        }
    }

    /// The digests currently stored, coldest first (tests and debug).
    pub fn digests_lru_order(&self) -> Vec<String> {
        let state = self.state.lock().unwrap();
        state.entries.iter().map(|e| e.digest.clone()).collect()
    }

    fn payload_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Appends one journal record and flushes it. Journal IO failures
    /// are logged, not fatal: the store can still serve from memory and
    /// the index rebuilds from the directory on next open.
    fn append(&self, state: &mut State, op: &str, digest: &str) {
        let mut rec = Json::object();
        rec.insert("op", op);
        rec.insert("digest", digest);
        if let Err(e) = state
            .journal
            .write_all(rec.render_jsonl_line().as_bytes())
            .and_then(|()| state.journal.flush())
        {
            eprintln!("xpd store: journal append failed: {e}");
        }
        state.journal_records = state.journal_records.saturating_add(1);
    }

    /// Evicts coldest entries until the store fits its cap. The hottest
    /// entry is never evicted, even if it alone exceeds the cap —
    /// serving one oversized answer beats thrashing on it.
    fn evict_over_cap(&self, state: &mut State) {
        while state.total_bytes > self.max_bytes && state.entries.len() > 1 {
            let evicted = state.entries.remove(0);
            state.total_bytes = state.total_bytes.saturating_sub(evicted.bytes);
            state.evictions += 1;
            let _ = std::fs::remove_file(self.payload_path(&evicted.digest));
            self.append(state, "evict", &evicted.digest);
            trace::count("xpd.store.eviction", 1);
        }
    }

    fn compact_if_slack(&self, state: &mut State) -> Result<(), String> {
        if state.journal_records > state.entries.len().saturating_add(COMPACT_SLACK) {
            self.compact(state)
        } else {
            Ok(())
        }
    }

    /// Rewrites the journal as one `put` record per live entry in LRU
    /// order (tmp + rename, like payloads).
    fn compact(&self, state: &mut State) -> Result<(), String> {
        let path = self.dir.join("journal.jsonl");
        let tmp = self
            .dir
            .join(format!("journal.jsonl.tmp.{}", std::process::id()));
        let mut body = String::new();
        for entry in &state.entries {
            let mut rec = Json::object();
            rec.insert("op", "put");
            rec.insert("digest", entry.digest.as_str());
            rec.insert("bytes", entry.bytes as f64);
            body.push_str(&rec.render_jsonl_line());
        }
        std::fs::write(&tmp, &body)
            .map_err(|e| format!("xpd store: cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("xpd store: cannot rename into {}: {e}", path.display())
        })?;
        state.journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("xpd store: cannot reopen {}: {e}", path.display()))?;
        state.journal_records = state.entries.len();
        Ok(())
    }
}
