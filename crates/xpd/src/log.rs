//! Size-capped rotating structured event logs.
//!
//! [`EventLog`] appends one JSON object per line (JSONL) to a file the
//! operator names with `--log`. When the file would grow past the
//! configured cap it is rotated once — renamed to `<file>.1`,
//! clobbering the previous `.1` — so a forgotten daemon consumes at
//! most ~2× the cap of disk, and the newest events are always in the
//! un-suffixed file. Lines are written whole under a lock, so
//! concurrent connection threads never interleave partial records.
//!
//! The same type backs the `--slow-ms` slow-query log: one line per
//! request whose total latency crossed the threshold, with its phase
//! breakdown, so "what was slow last night" is a `grep`, not a replay.

use common::json::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Default rotation threshold (4 MiB) when the operator gives none.
pub const DEFAULT_CAP_BYTES: u64 = 4 * 1024 * 1024;

#[derive(Debug)]
struct Sink {
    file: File,
    written: u64,
}

/// An append-only JSONL log that rotates once at a size cap.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    cap_bytes: u64,
    sink: Mutex<Sink>,
}

fn open_append(path: &Path) -> Result<(File, u64), String> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("xpd log: cannot open {}: {e}", path.display()))?;
    let written = file.metadata().map(|m| m.len()).unwrap_or(0);
    Ok((file, written))
}

impl EventLog {
    /// Opens (or creates) the log at `path`, appending to existing
    /// content. `cap_bytes` is the rotation threshold; 0 means
    /// [`DEFAULT_CAP_BYTES`].
    pub fn open(path: impl Into<PathBuf>, cap_bytes: u64) -> Result<EventLog, String> {
        let path = path.into();
        let (file, written) = open_append(&path)?;
        Ok(EventLog {
            path,
            cap_bytes: if cap_bytes == 0 {
                DEFAULT_CAP_BYTES
            } else {
                cap_bytes
            },
            sink: Mutex::new(Sink { file, written }),
        })
    }

    /// The path events are appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event as a single JSONL line, stamped with
    /// `at_unix_ms`. Rotates first if the line would cross the cap.
    /// Errors are reported, not fatal: a full disk degrades logging,
    /// never serving.
    pub fn append(&self, mut event: Json) -> Result<(), String> {
        let at = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        event.insert("at_unix_ms", at as f64);
        let mut line = event.render();
        line.push('\n');
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if sink.written + line.len() as u64 > self.cap_bytes && sink.written > 0 {
            // Rotate: current file becomes `.1` (clobbering the old
            // `.1`), and we start a fresh file at the original path.
            let rotated = self.path.with_extension(match self.path.extension() {
                Some(ext) => format!("{}.1", ext.to_string_lossy()),
                None => "1".to_string(),
            });
            sink.file
                .flush()
                .map_err(|e| format!("xpd log: flush before rotate failed: {e}"))?;
            std::fs::rename(&self.path, &rotated)
                .map_err(|e| format!("xpd log: rotate to {} failed: {e}", rotated.display()))?;
            let (file, written) = open_append(&self.path)?;
            *sink = Sink { file, written };
        }
        sink.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("xpd log: write to {} failed: {e}", self.path.display()))?;
        sink.written += line.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "xpd-eventlog-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn event(pairs: &[(&str, &str)]) -> Json {
        let mut o = Json::object();
        for (k, v) in pairs {
            o.insert(*k, *v);
        }
        o
    }

    #[test]
    fn appends_parseable_jsonl_lines() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path, 0).unwrap();
        log.append(event(&[("kind", "request"), ("op", "query")]))
            .unwrap();
        log.append(event(&[("kind", "request"), ("op", "stats")]))
            .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("kind").unwrap().as_str(), Some("request"));
            assert!(doc.get("at_unix_ms").unwrap().as_f64().is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotates_once_at_the_cap_and_keeps_newest_in_place() {
        let path = temp_path("rotate");
        let rotated = path.with_extension("jsonl.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        let log = EventLog::open(&path, 512).unwrap();
        for i in 0..64 {
            log.append(event(&[("kind", "request"), ("i", &i.to_string()[..])]))
                .unwrap();
        }
        let live = std::fs::metadata(&path).unwrap().len();
        let old = std::fs::metadata(&rotated).unwrap().len();
        assert!(live <= 512, "live log {live} bytes exceeds cap");
        assert!(old <= 512, "rotated log {old} bytes exceeds cap");
        // The newest event is in the un-suffixed file.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().last().unwrap().contains("\"63\""), "{body}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn reopening_appends_instead_of_truncating() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::open(&path, 0).unwrap();
            log.append(event(&[("kind", "first")])).unwrap();
        }
        let log = EventLog::open(&path, 0).unwrap();
        log.append(event(&[("kind", "second")])).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2, "{body}");
        let _ = std::fs::remove_file(&path);
    }
}
