//! The daemon itself: listeners, connection threads, the in-flight
//! dedup point, and the batch scheduler.
//!
//! # Request path
//!
//! ```text
//! conn thread                scheduler thread
//! -----------                ----------------
//! parse request
//! digest via engine
//! inflight.get_or_compute ─┐
//!   leader: store.get ──hit┼─► respond (source=store)
//!           miss: enqueue ─┼─► pop_batch (fair, batched)
//!           wait on slot   │   engine.evaluate(batch)
//!   joiner: wait on flight │   store.put + resolve slots
//! respond, leader removes  │
//! the in-flight entry      │
//! ```
//!
//! The in-flight entry is removed as soon as the leader has answered:
//! the [`ShardedCache`] is purely a dedup point, and the disk store's
//! LRU size cap stays the only capacity policy. A request that arrives
//! after removal simply becomes a new leader and hits the store.

use crate::chaos::{
    floor_char_boundary, torn_prefix_len, ChaosConfig, FaultInjector, IoFault, IoPoint,
};
use crate::flightrec::{self, FlightRecorder};
use crate::log::EventLog;
use crate::metrics::{self, Gauges};
use crate::queue::{FairQueue, QueueFull};
use crate::store::{Durability, ResultStore, StoreEvent};
use crate::QueryEngine;
use common::json::Json;
use common::proto::{MetricsFormat, QueryRequest, QueryResponse, RequestOp, Source};
use runtime::cache::{panic_message, ShardedCache};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use trace::live::{LiveHistogram, ScopedCounter};

/// How often accept loops and idle connections check the stop flag.
const POLL: Duration = Duration::from_millis(100);

/// Where and how a [`Server`] listens and stores results.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (removed on clean shutdown).
    pub socket: Option<PathBuf>,
    /// TCP address to listen on (`127.0.0.1:0` picks a free port,
    /// reported by [`Server::tcp_addr`]).
    pub tcp: Option<String>,
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// Store size cap in payload bytes; LRU eviction beyond it.
    pub store_cap_bytes: u64,
    /// Maximum queued cold requests before clients get `busy`.
    pub queue_cap: usize,
    /// Maximum cold requests evaluated per engine batch.
    pub batch_max: usize,
    /// How long the scheduler lingers for more requests to join a
    /// batch once the first arrives.
    pub batch_window: Duration,
    /// How hard store writes push toward the disk
    /// ([`Durability::Flush`] by default).
    pub durability: Durability,
    /// When set, a seeded [`FaultInjector`] with the default
    /// [`ChaosConfig`] rates is threaded through the daemon's I/O
    /// boundaries (`xp serve --chaos-seed N`). Same seed, same fault
    /// schedule — the knob exists for recovery testing, never for
    /// production serving.
    pub chaos_seed: Option<u64>,
    /// When set, requests slower than this many milliseconds are
    /// appended (with their phase breakdown) to `<store>/slow.jsonl`
    /// (`xp serve --slow-ms N`).
    pub slow_ms: Option<u64>,
    /// When set, every request is appended as one JSONL record to this
    /// file (`xp serve --log FILE`), rotated once at
    /// [`log_cap_bytes`](Self::log_cap_bytes).
    pub log_file: Option<PathBuf>,
    /// Rotation threshold for [`log_file`](Self::log_file); 0 means
    /// [`crate::log::DEFAULT_CAP_BYTES`].
    pub log_cap_bytes: u64,
}

impl ServerConfig {
    /// A config with serving defaults; callers set `socket` and/or
    /// `tcp` before binding.
    pub fn new(store_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: None,
            tcp: None,
            store_dir: store_dir.into(),
            store_cap_bytes: 256 * 1024 * 1024,
            queue_cap: 256,
            batch_max: 8,
            batch_window: Duration::from_millis(20),
            durability: Durability::default(),
            chaos_seed: None,
            slow_ms: None,
            log_file: None,
            log_cap_bytes: 0,
        }
    }
}

/// Where an answered request's time went, in nanoseconds. All zero for
/// answers that never reached the scheduler (store hits, errors).
/// Joiners share the leader's flight, so a deduped answer carries the
/// *leader's* phases — the work that actually produced the bytes.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseNanos {
    /// Queued before the scheduler began assembling the answering batch.
    queue_wait: u64,
    /// The batch window spent waiting for batch-mates.
    batch_linger: u64,
    /// Engine evaluation wall time of the whole batch (the requester
    /// waits for all of it, so that is the honest per-request number).
    eval: u64,
    /// Persisting this answer to the store.
    store_write: u64,
}

/// A query answer as it moves between threads. Payloads are `Arc`ed so
/// joiners share the leader's allocation.
#[derive(Clone)]
enum Answer {
    Ready(Source, Arc<String>, PhaseNanos),
    Busy(String),
    TimedOut(String),
    Failed(String),
}

/// One cold request parked in the queue: resolved by the scheduler.
struct Job {
    /// The request ID minted at accept, for logs and the flight
    /// recorder.
    id: u64,
    digest: String,
    request: QueryRequest,
    slot: Arc<Slot>,
    /// When the requester stops caring. The scheduler answers expired
    /// jobs `timeout` instead of spending engine time on them.
    deadline: Option<Instant>,
    /// When the job entered the queue — the start of its `queue_wait`
    /// phase.
    enqueued_at: Instant,
}

/// A one-shot rendezvous between a waiting connection thread and the
/// scheduler.
struct Slot {
    answer: Mutex<Option<Answer>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            answer: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn set(&self, answer: Answer) {
        let mut slot = self.answer.lock().unwrap();
        *slot = Some(answer);
        drop(slot);
        self.ready.notify_all();
    }

    fn wait(&self) -> Answer {
        let mut slot = self.answer.lock().unwrap();
        loop {
            if let Some(answer) = slot.as_ref() {
                return answer.clone();
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }
}

/// The daemon's counters, as instance-scoped views over the always-on
/// `xpd.*` registry ([`trace::live`]): one write serves `stats`
/// responses (instance-exact, via [`ScopedCounter::local`] — tests run
/// several servers in one process), the `metrics` op and Prometheus
/// exposition (the process-wide registry), and `xp trace summary`
/// (sessions fold the registry delta in). The names are the same ones
/// the pre-registry `trace::count` calls used, so existing summaries
/// and dashboards keep reading.
struct Counters {
    requests: ScopedCounter,
    store_hits: ScopedCounter,
    store_misses: ScopedCounter,
    inflight_joins: ScopedCounter,
    enqueued: ScopedCounter,
    rejected: ScopedCounter,
    timeouts: ScopedCounter,
    batches: ScopedCounter,
    batch_points: ScopedCounter,
    peak_depth: ScopedCounter,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            requests: ScopedCounter::new("xpd.request"),
            store_hits: ScopedCounter::new("xpd.store.hit"),
            store_misses: ScopedCounter::new("xpd.store.miss"),
            inflight_joins: ScopedCounter::new("xpd.inflight_join"),
            enqueued: ScopedCounter::new("xpd.queue.enqueued"),
            rejected: ScopedCounter::new("xpd.queue.rejected"),
            timeouts: ScopedCounter::new("xpd.timeout"),
            batches: ScopedCounter::new("xpd.batch"),
            batch_points: ScopedCounter::new("xpd.batch_points"),
            peak_depth: ScopedCounter::new("xpd.queue.peak_depth"),
        }
    }
}

/// Always-on latency histograms: request durations per op, and the
/// cold path's phase breakdown. Handles are obtained once at bind and
/// held, so the hot path pays only the histogram's relaxed increments.
struct Latency {
    query: LiveHistogram,
    stats: LiveHistogram,
    health: LiveHistogram,
    metrics: LiveHistogram,
    shutdown: LiveHistogram,
    queue_wait: LiveHistogram,
    batch_linger: LiveHistogram,
    eval: LiveHistogram,
    store_write: LiveHistogram,
}

impl Latency {
    fn new() -> Latency {
        Latency {
            query: trace::live::histogram("xpd.request_duration.query"),
            stats: trace::live::histogram("xpd.request_duration.stats"),
            health: trace::live::histogram("xpd.request_duration.health"),
            metrics: trace::live::histogram("xpd.request_duration.metrics"),
            shutdown: trace::live::histogram("xpd.request_duration.shutdown"),
            queue_wait: trace::live::histogram("xpd.phase.queue_wait"),
            batch_linger: trace::live::histogram("xpd.phase.batch_linger"),
            eval: trace::live::histogram("xpd.phase.eval"),
            store_write: trace::live::histogram("xpd.phase.store_write"),
        }
    }

    fn for_op(&self, op: RequestOp) -> &LiveHistogram {
        match op {
            RequestOp::Query => &self.query,
            RequestOp::Stats => &self.stats,
            RequestOp::Health => &self.health,
            RequestOp::Metrics => &self.metrics,
            RequestOp::Shutdown => &self.shutdown,
        }
    }
}

/// State shared by connection threads, accept loops, and the
/// scheduler.
struct Shared {
    engine: Arc<dyn QueryEngine>,
    store: ResultStore,
    queue: FairQueue<Job>,
    queue_cap: usize,
    inflight: ShardedCache<String, Answer>,
    counters: Counters,
    latency: Latency,
    stop: AtomicBool,
    next_client: AtomicU64,
    /// Request IDs, minted when a request line parses.
    next_request: AtomicU64,
    /// Queries currently being answered (between parse and respond) —
    /// the in-flight count `health` reports for readiness probes.
    active: AtomicU64,
    chaos: Option<Arc<FaultInjector>>,
    flight: Arc<FlightRecorder>,
    slow_ms: Option<u64>,
    slow_log: Option<EventLog>,
    event_log: Option<EventLog>,
    /// When the server was bound (monotonic — uptime arithmetic).
    started: Instant,
    /// When the server was bound (wall clock, for `health` reporting).
    started_unix_ms: u64,
}

/// A bound (but not yet running) daemon. [`Server::run`] blocks until
/// a client sends `shutdown`; drive it from a dedicated thread when
/// embedding (tests, `xp serve`).
pub struct Server {
    shared: Arc<Shared>,
    unix: Option<(UnixListener, PathBuf)>,
    tcp: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
    batch_max: usize,
    batch_window: Duration,
}

impl Server {
    /// Opens the store and binds the configured listeners. At least one
    /// of `socket`/`tcp` must be set. A stale Unix socket file left by
    /// a crashed daemon is reclaimed; a *live* one (something answers a
    /// connect) is an error.
    pub fn bind(config: ServerConfig, engine: Arc<dyn QueryEngine>) -> Result<Server, String> {
        if config.socket.is_none() && config.tcp.is_none() {
            return Err(
                "xpd: no endpoint configured (need a socket path and/or a TCP address)".to_string(),
            );
        }
        let chaos = config
            .chaos_seed
            .map(|seed| Arc::new(FaultInjector::with_config(seed, &ChaosConfig::default())));
        if let Some(inj) = &chaos {
            eprintln!("xpd: chaos injection armed (seed {})", inj.seed());
        }
        let store = ResultStore::open_with(
            &config.store_dir,
            config.store_cap_bytes,
            config.durability,
            chaos.clone(),
        )?;

        // The flight recorder lives in the store directory (it is the
        // daemon's one guaranteed-writable place; the store only adopts
        // hex-digest names, so `flightrec-*.json` is invisible to it).
        // Store mutations feed it via the observer, and a quarantine —
        // the "something on disk lied" moment — triggers a dump.
        let flight = FlightRecorder::new(&config.store_dir);
        flightrec::arm_panic_dumps(&flight);
        {
            let flight = Arc::clone(&flight);
            store.set_observer(move |event| match event {
                StoreEvent::Put { digest, bytes } => {
                    flight.record("store", format!("put {digest} ({bytes} bytes)"));
                }
                StoreEvent::Evicted { digest } => {
                    flight.record("store", format!("evict {digest}"));
                }
                StoreEvent::Quarantined { digest, why } => {
                    flight.record("store", format!("quarantine {digest}: {why}"));
                    match flight.dump("quarantine") {
                        Ok(path) => {
                            eprintln!("xpd: flight recorder dumped to {}", path.display());
                        }
                        Err(e) => eprintln!("{e}"),
                    }
                }
            });
        }
        let slow_log = match config.slow_ms {
            Some(_) => Some(EventLog::open(config.store_dir.join("slow.jsonl"), 0)?),
            None => None,
        };
        let event_log = match &config.log_file {
            Some(path) => Some(EventLog::open(path, config.log_cap_bytes)?),
            None => None,
        };

        let unix = match &config.socket {
            None => None,
            Some(path) => {
                if path.exists() {
                    match UnixStream::connect(path) {
                        Ok(_) => {
                            return Err(format!(
                                "xpd: {} is already served by a live daemon",
                                path.display()
                            ))
                        }
                        Err(_) => {
                            let _ = std::fs::remove_file(path);
                        }
                    }
                }
                let listener = UnixListener::bind(path)
                    .map_err(|e| format!("xpd: cannot bind {}: {e}", path.display()))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| format!("xpd: cannot configure {}: {e}", path.display()))?;
                Some((listener, path.clone()))
            }
        };
        let (tcp, tcp_addr) = match &config.tcp {
            None => (None, None),
            Some(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(|e| format!("xpd: cannot bind {addr}: {e}"))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| format!("xpd: cannot configure {addr}: {e}"))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| format!("xpd: cannot resolve {addr}: {e}"))?;
                (Some(listener), Some(local))
            }
        };

        Ok(Server {
            shared: Arc::new(Shared {
                engine,
                store,
                queue: FairQueue::new(config.queue_cap),
                queue_cap: config.queue_cap.max(1),
                inflight: ShardedCache::new(16),
                counters: Counters::new(),
                latency: Latency::new(),
                stop: AtomicBool::new(false),
                next_client: AtomicU64::new(1),
                next_request: AtomicU64::new(1),
                active: AtomicU64::new(0),
                chaos,
                flight,
                slow_ms: config.slow_ms,
                slow_log,
                event_log,
                started: Instant::now(),
                started_unix_ms: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            }),
            unix,
            tcp,
            tcp_addr,
            batch_max: config.batch_max,
            batch_window: config.batch_window,
        })
    }

    /// The bound TCP address, when a TCP endpoint was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The server's flight recorder — grab it before [`Server::run`]
    /// consumes the server, to wire external dump triggers (the CLI's
    /// SIGQUIT handler).
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    /// A handle that requests graceful shutdown from another thread —
    /// the CLI wires SIGINT/SIGTERM to it. Equivalent to a client
    /// sending `shutdown`: stop accepting, drain queued work, flush the
    /// store, exit clean.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a client sends `shutdown`: accept loops and the
    /// batch scheduler run on their own threads; pending cold requests
    /// drain (and persist) before this returns.
    pub fn run(self) -> Result<(), String> {
        // The rollup ticker keeps the live registry's 1 s / 1 min rings
        // advancing even when nobody queries, so the first `metrics`
        // request after a quiet hour still has a well-matched window
        // baseline to diff against.
        let ticker = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("xpd-tick".to_string())
                .spawn(move || {
                    while !shared.stop.load(Ordering::SeqCst) {
                        trace::live::tick();
                        std::thread::sleep(Duration::from_millis(250));
                    }
                })
                .map_err(|e| format!("xpd: cannot spawn ticker: {e}"))?
        };
        let scheduler = {
            let shared = Arc::clone(&self.shared);
            let (max, window) = (self.batch_max, self.batch_window);
            std::thread::Builder::new()
                .name("xpd-sched".to_string())
                .spawn(move || scheduler_loop(&shared, max, window))
                .map_err(|e| format!("xpd: cannot spawn scheduler: {e}"))?
        };

        let mut accepts = Vec::new();
        let mut socket_path = None;
        if let Some((listener, path)) = self.unix {
            socket_path = Some(path);
            let shared = Arc::clone(&self.shared);
            accepts.push(
                std::thread::Builder::new()
                    .name("xpd-accept-unix".to_string())
                    .spawn(move || accept_loop_unix(&shared, &listener))
                    .map_err(|e| format!("xpd: cannot spawn acceptor: {e}"))?,
            );
        }
        if let Some(listener) = self.tcp {
            let shared = Arc::clone(&self.shared);
            accepts.push(
                std::thread::Builder::new()
                    .name("xpd-accept-tcp".to_string())
                    .spawn(move || accept_loop_tcp(&shared, &listener))
                    .map_err(|e| format!("xpd: cannot spawn acceptor: {e}"))?,
            );
        }

        for handle in accepts {
            let _ = handle.join();
        }
        // No new work can arrive; let queued jobs drain, then stop the
        // scheduler. Connection threads still waiting on slots get
        // their answers and exit on their next read poll.
        self.shared.queue.close();
        let _ = scheduler.join();
        let _ = ticker.join();
        // Graceful exit: the final LRU order is pushed to disk so the
        // next open replays it instead of rebuilding from files.
        if let Err(e) = self.shared.store.flush() {
            eprintln!("xpd: {e}");
        }
        if let Some(path) = socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Requests graceful shutdown of a running [`Server`] from outside its
/// connection threads (see [`Server::stop_handle`]).
pub struct StopHandle {
    shared: Arc<Shared>,
}

impl StopHandle {
    /// Flips the stop flag; accept loops exit on their next poll and
    /// [`Server::run`] drains and returns.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

fn accept_loop_unix(shared: &Arc<Shared>, listener: &UnixListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                let delay = accept_delay(shared);
                spawn_conn(shared, move |shared, client| {
                    if let Some(d) = delay {
                        std::thread::sleep(d);
                    }
                    serve_conn(shared, client, &stream)
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn accept_loop_tcp(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                let delay = accept_delay(shared);
                spawn_conn(shared, move |shared, client| {
                    if let Some(d) = delay {
                        std::thread::sleep(d);
                    }
                    serve_conn(shared, client, &stream)
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// The chaos-injected delay (if any) before a freshly accepted
/// connection is served. The sleep happens on the connection's own
/// thread so a delayed client never stalls the accept loop.
fn accept_delay(shared: &Arc<Shared>) -> Option<Duration> {
    match shared.chaos.as_ref()?.decide(IoPoint::Accept)? {
        IoFault::DelayAccept(d) => Some(d),
        _ => None,
    }
}

fn spawn_conn(shared: &Arc<Shared>, serve: impl FnOnce(&Arc<Shared>, u64) + Send + 'static) {
    let client = shared.next_client.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("xpd-conn-{client}"))
        .spawn(move || serve(&shared, client));
    if let Err(e) = spawned {
        eprintln!("xpd: cannot spawn connection thread: {e}");
    }
}

/// One request/response line at a time until EOF, error, or shutdown.
/// Works over `&UnixStream` and `&TcpStream` alike (both implement
/// `Read`/`Write` by shared reference).
fn serve_conn<S>(shared: &Arc<Shared>, client: u64, stream: &S)
where
    for<'a> &'a S: Read + Write,
{
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let text = std::mem::take(&mut line);
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                // HTTP bridge: a plain `GET` (curl, a Prometheus
                // scraper) gets a one-shot HTTP/1.0 response and the
                // connection closes, so real scrapers work against a
                // TCP daemon without speaking the JSONL protocol.
                if let Some(rest) = text.strip_prefix("GET ") {
                    let path = rest.split_whitespace().next().unwrap_or("/");
                    shared
                        .flight
                        .record("http", format!("GET {path} client={client}"));
                    let (status, content_type, body) = http_get(shared, path);
                    let response = format!(
                        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    );
                    let mut writer = stream;
                    let _ = writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.flush());
                    break;
                }
                // Chaos: a client (or middlebox) dying mid-request — the
                // connection closes without a response and the request
                // is *not* processed. Clients must treat a vanished
                // response as retryable.
                if let Some(inj) = &shared.chaos {
                    if inj.decide(IoPoint::Read) == Some(IoFault::CloseRead) {
                        shared
                            .flight
                            .record("chaos", format!("close_read client={client}"));
                        break;
                    }
                }
                let response = handle_line(shared, client, text);
                let body = response.to_json().render_jsonl_line();
                // Chaos: the connection drops after a prefix of the
                // response line — the client sees a torn (newline-less)
                // response and must retry.
                let body = match shared
                    .chaos
                    .as_ref()
                    .and_then(|i| i.decide(IoPoint::Response))
                {
                    Some(IoFault::DropResponse { keep_permille }) => {
                        shared
                            .flight
                            .record("chaos", format!("drop_response client={client}"));
                        let keep = torn_prefix_len(body.len(), keep_permille);
                        let torn = &body[..floor_char_boundary(&body, keep)];
                        let mut writer = stream;
                        let _ = writer
                            .write_all(torn.as_bytes())
                            .and_then(|()| writer.flush());
                        break;
                    }
                    _ => body,
                };
                let mut writer = stream;
                let sent = writer
                    .write_all(body.as_bytes())
                    .and_then(|()| writer.flush());
                if sent.is_err() || shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Read timeout: `line` keeps any partial read; poll the
            // stop flag and keep listening.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // The connection is gone. In the lockstep request/response protocol
    // a client with queued work is still parked in `answer_cold`, so
    // this is usually a no-op — but if work for this client is ever
    // left in the queue (future pipelined clients, torn requests), it
    // must not hold capacity or a rotation turn. Resolve its slots so
    // no waiter hangs.
    for job in shared.queue.drop_client(client) {
        job.slot.set(Answer::Failed(
            "client disconnected before evaluation".to_string(),
        ));
    }
}

fn handle_line(shared: &Arc<Shared>, client: u64, text: &str) -> QueryResponse {
    let request = Json::parse(text)
        .map_err(|e| format!("bad request JSON: {e}"))
        .and_then(|j| QueryRequest::from_json(&j));
    let request = match request {
        Ok(r) => r,
        Err(e) => return QueryResponse::error(e),
    };
    // The request ID is minted here — the moment the request becomes a
    // request — and rides through the queue, scheduler, and logs.
    let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    let begun = Instant::now();
    shared.counters.requests.add(1);
    let (response, phases) = match request.op {
        RequestOp::Stats => (
            QueryResponse::stats(stats_json(shared)),
            PhaseNanos::default(),
        ),
        RequestOp::Health => (
            QueryResponse::stats(health_json(shared)),
            PhaseNanos::default(),
        ),
        RequestOp::Metrics => (
            metrics_response(shared, request.format),
            PhaseNanos::default(),
        ),
        RequestOp::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            (
                QueryResponse {
                    status: "ok".to_string(),
                    digest: None,
                    source: None,
                    payload: None,
                    error: None,
                    stats: None,
                    metrics: None,
                    timing: None,
                },
                PhaseNanos::default(),
            )
        }
        RequestOp::Query => {
            shared.active.fetch_add(1, Ordering::SeqCst);
            let answered = handle_query(shared, client, id, &request);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            answered
        }
    };
    let elapsed = begun.elapsed();
    shared.latency.for_op(request.op).record(elapsed);
    finish_request(shared, client, id, &request, response, phases, elapsed)
}

/// Post-dispatch bookkeeping shared by every op: feeds the flight
/// recorder, the `--log` event log, and the `--slow-ms` slow-query log,
/// and attaches the optional `timing` breakdown (response metadata
/// only — the payload bytes are untouched, so digests and byte-identity
/// guarantees are unaffected).
fn finish_request(
    shared: &Arc<Shared>,
    client: u64,
    id: u64,
    request: &QueryRequest,
    response: QueryResponse,
    phases: PhaseNanos,
    elapsed: Duration,
) -> QueryResponse {
    let total_ms = elapsed.as_secs_f64() * 1e3;
    let op = request.op.as_str();
    shared.flight.record(
        "request",
        format!(
            "id={id} client={client} op={op} status={} ms={total_ms:.3}",
            response.status
        ),
    );
    if let Some(log) = &shared.event_log {
        let mut event = Json::object();
        event.insert("kind", "request");
        event.insert("id", id as f64);
        event.insert("client", client as f64);
        event.insert("op", op);
        event.insert("status", response.status.as_str());
        event.insert("ms", total_ms);
        if let Err(e) = log.append(event) {
            eprintln!("xpd: {e}");
        }
    }
    if let (Some(slow_ms), Some(log)) = (shared.slow_ms, &shared.slow_log) {
        if total_ms >= slow_ms as f64 {
            let mut event = timing_json(total_ms, phases);
            event.insert("kind", "slow");
            event.insert("id", id as f64);
            event.insert("op", op);
            event.insert("status", response.status.as_str());
            if let Some(digest) = &response.digest {
                event.insert("digest", digest.as_str());
            }
            if let Err(e) = log.append(event) {
                eprintln!("xpd: {e}");
            }
        }
    }
    if request.timing {
        return response.with_timing(timing_json(total_ms, phases));
    }
    response
}

/// The phase-breakdown object carried by `timing` responses and
/// slow-query log records.
fn timing_json(total_ms: f64, phases: PhaseNanos) -> Json {
    let ms = |nanos: u64| nanos as f64 / 1e6;
    let mut o = Json::object();
    o.insert("total_ms", total_ms);
    o.insert("queue_wait_ms", ms(phases.queue_wait));
    o.insert("batch_linger_ms", ms(phases.batch_linger));
    o.insert("eval_ms", ms(phases.eval));
    o.insert("store_write_ms", ms(phases.store_write));
    o
}

/// Serves the `metrics` op in the asked rendering.
fn metrics_response(shared: &Arc<Shared>, format: MetricsFormat) -> QueryResponse {
    let g = gauges(shared);
    match format {
        MetricsFormat::Json => QueryResponse::metrics(metrics::metrics_json(&g)),
        MetricsFormat::Prometheus => QueryResponse::metrics_text(metrics::prometheus_text(&g)),
    }
}

/// Samples the instantaneous state the metrics renderers export as
/// gauges.
fn gauges(shared: &Arc<Shared>) -> Gauges {
    let store = shared.store.stats();
    Gauges {
        queue_depth: shared.queue.len() as u64,
        queue_cap: shared.queue_cap as u64,
        inflight: shared.active.load(Ordering::SeqCst),
        store_entries: store.entries as u64,
        store_bytes: store.bytes,
        uptime_secs: shared.started.elapsed().as_secs_f64(),
        pid: std::process::id(),
    }
}

/// The HTTP bridge's GET dispatch: `/metrics` serves the Prometheus
/// text exposition, `/stats` and `/health` serve their JSON objects.
fn http_get(shared: &Arc<Shared>, path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics::prometheus_text(&gauges(shared)),
        ),
        "/stats" => ("200 OK", "application/json", stats_json(shared).render()),
        "/health" => ("200 OK", "application/json", health_json(shared).render()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found (try /metrics, /stats, or /health)\n".to_string(),
        ),
    }
}

fn handle_query(
    shared: &Arc<Shared>,
    client: u64,
    id: u64,
    request: &QueryRequest,
) -> (QueryResponse, PhaseNanos) {
    let digest = match shared.engine.digest(request) {
        Ok(d) => d,
        Err(e) => return (QueryResponse::error(e), PhaseNanos::default()),
    };
    // The deadline clock starts when the request is parsed. Joiners
    // share the leader's flight, so the leader's deadline governs a
    // deduped answer — a joiner with a tighter deadline still gets the
    // payload when the leader does (documented trade: dedup identity is
    // the digest, and the deadline is deliberately not part of it).
    let deadline = request
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // The dedup point: the first requester of a digest leads (checks
    // the store, enqueues on a miss, waits); concurrent requesters of
    // the same digest join the leader's flight and share its answer.
    let mut led = false;
    let outcome = shared.inflight.get_or_compute(&digest, || {
        led = true;
        answer_cold(shared, client, id, &digest, request, deadline)
    });
    if led {
        // Answered: drop the memory copy so the disk store's LRU cap
        // remains the only capacity policy. Late requesters become new
        // leaders and hit the store.
        shared.inflight.remove(&digest);
    } else {
        shared.counters.inflight_joins.add(1);
    }
    let zero = PhaseNanos::default();
    match outcome {
        Ok(Answer::Ready(source, payload, phases)) => {
            (QueryResponse::ok(&digest, source, payload.as_str()), phases)
        }
        Ok(Answer::Busy(message)) => (QueryResponse::busy(message), zero),
        Ok(Answer::TimedOut(message)) => (QueryResponse::timeout(message), zero),
        Ok(Answer::Failed(message)) => (QueryResponse::error(message), zero),
        Err(panicked) => (QueryResponse::error(panicked.to_string()), zero),
    }
}

/// The leader's path on an in-flight miss: serve from the store or
/// enqueue for the scheduler and wait.
fn answer_cold(
    shared: &Arc<Shared>,
    client: u64,
    id: u64,
    digest: &str,
    request: &QueryRequest,
    deadline: Option<Instant>,
) -> Answer {
    if let Some(payload) = shared.store.get(digest) {
        shared.counters.store_hits.add(1);
        return Answer::Ready(Source::Store, Arc::new(payload), PhaseNanos::default());
    }
    shared.counters.store_misses.add(1);
    if shared.stop.load(Ordering::SeqCst) {
        return Answer::Busy("daemon is shutting down".to_string());
    }
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return timed_out(shared, request);
        }
    }
    let slot = Arc::new(Slot::new());
    let job = Job {
        id,
        digest: digest.to_string(),
        request: request.clone(),
        slot: Arc::clone(&slot),
        deadline,
        enqueued_at: Instant::now(),
    };
    match shared.queue.push(client, job) {
        Ok(depth) => {
            shared.counters.enqueued.add(1);
            // Peak-depth as a monotone counter: `raise_to` emits only
            // the delta over the previous peak into the shared
            // registry, so the counter's final value in a trace summary
            // *is* the peak depth.
            shared.counters.peak_depth.raise_to(depth as u64);
            slot.wait()
        }
        Err(QueueFull { cap }) => {
            shared.counters.rejected.add(1);
            Answer::Busy(format!("request queue full ({cap} pending); retry later"))
        }
    }
}

/// Records one expired request and builds its answer.
fn timed_out(shared: &Arc<Shared>, request: &QueryRequest) -> Answer {
    shared.counters.timeouts.add(1);
    Answer::TimedOut(format!(
        "deadline of {} ms expired before evaluation",
        request.deadline_ms.unwrap_or(0)
    ))
}

/// Drains batches until the queue closes: evaluate, persist, resolve.
fn scheduler_loop(shared: &Arc<Shared>, batch_max: usize, batch_window: Duration) {
    while let Some((batch, linger)) = shared.queue.pop_batch_timed(batch_max, batch_window) {
        // Requests whose deadline expired while queued are answered
        // `timeout` here, *before* engine time is spent on them —
        // graceful degradation under overload: the backlog sheds
        // abandoned work instead of computing answers nobody awaits.
        let now = Instant::now();
        let (batch, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.deadline.is_none_or(|d| now < d));
        for job in expired {
            let answer = timed_out(shared, &job.request);
            job.slot.set(answer);
        }
        if batch.is_empty() {
            continue;
        }
        shared.counters.batches.add(1);
        shared.counters.batch_points.add(batch.len() as u64);
        let _span = trace::span("xpd.batch");

        // Phase attribution: a job's total queued time splits into the
        // wait before the scheduler began assembling this batch and the
        // shared linger for batch-mates.
        let linger_nanos = linger.as_nanos() as u64;
        let waits: Vec<u64> = batch
            .iter()
            .map(|job| {
                let queued = now.duration_since(job.enqueued_at).as_nanos() as u64;
                queued.saturating_sub(linger_nanos)
            })
            .collect();
        for wait in &waits {
            shared.latency.queue_wait.record_nanos(*wait);
        }
        shared.latency.batch_linger.record_nanos(linger_nanos);

        let requests: Vec<QueryRequest> = batch.iter().map(|j| j.request.clone()).collect();
        let eval_begun = Instant::now();
        let results = catch_unwind(AssertUnwindSafe(|| shared.engine.evaluate(&requests)));
        let eval_nanos = eval_begun.elapsed().as_nanos() as u64;
        shared.latency.eval.record_nanos(eval_nanos);
        shared.flight.record(
            "batch",
            format!(
                "points={} ids={:?} eval_ms={:.3}",
                batch.len(),
                batch.iter().map(|j| j.id).collect::<Vec<_>>(),
                eval_nanos as f64 / 1e6
            ),
        );
        match results {
            Ok(results) => {
                for (i, job) in batch.iter().enumerate() {
                    let result = results.get(i).cloned().unwrap_or_else(|| {
                        Err(format!(
                            "engine returned {} results for a batch of {}",
                            results.len(),
                            batch.len()
                        ))
                    });
                    match result {
                        Ok(payload) => {
                            let put_begun = Instant::now();
                            if let Err(e) = shared.store.put(&job.digest, &payload) {
                                eprintln!("xpd: store put failed: {e}");
                            }
                            let store_write = put_begun.elapsed().as_nanos() as u64;
                            shared.latency.store_write.record_nanos(store_write);
                            let phases = PhaseNanos {
                                queue_wait: waits[i],
                                batch_linger: linger_nanos,
                                eval: eval_nanos,
                                store_write,
                            };
                            job.slot.set(Answer::Ready(
                                Source::Computed,
                                Arc::new(payload),
                                phases,
                            ));
                        }
                        Err(message) => job.slot.set(Answer::Failed(message)),
                    }
                }
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                for job in &batch {
                    job.slot
                        .set(Answer::Failed(format!("engine panicked: {message}")));
                }
            }
        }
    }
}

/// The live counter object served to `stats` requests.
fn stats_json(shared: &Arc<Shared>) -> Json {
    let c = &shared.counters;
    // `stats` reports *this server's* numbers: the scoped counters'
    // local cells, not the process-wide registry (tests run several
    // servers in one process; `metrics` serves the global view).
    let load = |sc: &ScopedCounter| sc.local() as f64;
    let store = shared.store.stats();

    let mut store_json = Json::object();
    store_json.insert("hits", load(&c.store_hits));
    store_json.insert("misses", load(&c.store_misses));
    store_json.insert("entries", store.entries as f64);
    store_json.insert("bytes", store.bytes as f64);
    store_json.insert("evictions", store.evictions as f64);
    store_json.insert("corrupt", store.corrupt as f64);
    store_json.insert("durability", shared.store.durability().to_string().as_str());

    let mut queue_json = Json::object();
    queue_json.insert("depth", shared.queue.len() as f64);
    queue_json.insert("cap", shared.queue_cap as f64);
    queue_json.insert("enqueued", load(&c.enqueued));
    queue_json.insert("rejected", load(&c.rejected));
    queue_json.insert("timeouts", load(&c.timeouts));
    queue_json.insert("peak_depth", load(&c.peak_depth));

    let mut batch_json = Json::object();
    batch_json.insert("batches", load(&c.batches));
    batch_json.insert("points", load(&c.batch_points));

    let mut o = Json::object();
    o.insert("requests", load(&c.requests));
    o.insert("inflight_joins", load(&c.inflight_joins));
    o.insert("store", store_json);
    o.insert("queue", queue_json);
    o.insert("batch", batch_json);
    if let Some(inj) = &shared.chaos {
        let mut chaos_json = Json::object();
        chaos_json.insert("seed", inj.seed() as f64);
        chaos_json.insert("injected", inj.injected() as f64);
        o.insert("chaos", chaos_json);
    }
    o.insert("engine", shared.engine.describe());
    o
}

/// The readiness-probe object served to `health` requests: cheap,
/// capacity-focused, and stable-shaped (no engine description, no
/// cumulative counters a probe would have to diff). `ready` is false
/// once shutdown has begun.
fn health_json(shared: &Arc<Shared>) -> Json {
    let store = shared.store.stats();
    let mut o = Json::object();
    o.insert("ready", !shared.stop.load(Ordering::SeqCst));
    o.insert("uptime_secs", shared.started.elapsed().as_secs_f64());
    o.insert("pid", std::process::id() as f64);
    o.insert("started_unix_ms", shared.started_unix_ms as f64);
    o.insert("queue_depth", shared.queue.len() as f64);
    o.insert("queue_cap", shared.queue_cap as f64);
    o.insert("inflight", shared.active.load(Ordering::SeqCst) as f64);
    o.insert("store_entries", store.entries as f64);
    o.insert("store_bytes", store.bytes as f64);
    o.insert("store_corrupt", store.corrupt as f64);
    o
}
