//! Integration tests for the content-addressed result store: crash-safe
//! writes, digest round-trips, LRU eviction at the size cap, journal
//! replay across reopens, and self-healing from torn or corrupt state.

use std::path::PathBuf;
use xpd::store::{encode_entry, ResultStore};

/// A fresh, empty temp directory unique to this process and test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpd-store-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic 16-hex digest for test entry `n`.
fn digest(n: usize) -> String {
    format!("{n:016x}")
}

#[test]
fn payloads_round_trip_through_disk() {
    let dir = temp_dir("roundtrip");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();

    let payload = "{\n  \"id\": \"fig6\"\n}\n\n";
    store.put(&digest(1), payload).unwrap();
    assert_eq!(store.get(&digest(1)).as_deref(), Some(payload));
    assert_eq!(store.get(&digest(2)), None, "unknown digest misses");

    // The payload lives in a file named after its digest: one checksum
    // header line, then the payload bytes verbatim.
    let on_disk = std::fs::read_to_string(dir.join(format!("{}.json", digest(1)))).unwrap();
    assert_eq!(on_disk, encode_entry(&digest(1), payload));
    assert_eq!(
        on_disk.split_once('\n').unwrap().1,
        payload,
        "the wire payload is byte-identical after the header line"
    );

    let stats = store.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(
        stats.bytes,
        payload.len() as u64,
        "the cap counts payload bytes, not headers"
    );
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.corrupt, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reput_is_a_touch_not_a_rewrite() {
    let dir = temp_dir("reput");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    store.put(&digest(1), "one\n").unwrap();
    store.put(&digest(2), "two\n").unwrap();
    // Re-putting digest 1 moves it to the hot end without growing the store.
    store.put(&digest(1), "one\n").unwrap();
    assert_eq!(store.stats().entries, 2);
    assert_eq!(store.digests_lru_order(), vec![digest(2), digest(1)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_holds_the_size_cap() {
    let dir = temp_dir("lru");
    // Cap fits two 8-byte payloads but not three.
    let store = ResultStore::open(&dir, 16).unwrap();
    let payload = "12345678";
    store.put(&digest(1), payload).unwrap();
    store.put(&digest(2), payload).unwrap();
    // Touch 1 so 2 becomes the coldest entry.
    assert!(store.get(&digest(1)).is_some());
    store.put(&digest(3), payload).unwrap();

    assert_eq!(store.get(&digest(2)), None, "coldest entry evicted");
    assert!(store.get(&digest(1)).is_some(), "touched entry survives");
    assert!(store.get(&digest(3)).is_some(), "new entry survives");
    assert!(
        !dir.join(format!("{}.json", digest(2))).exists(),
        "evicted payload removed from disk"
    );
    let stats = store.stats();
    assert_eq!(stats.entries, 2);
    assert!(stats.bytes <= 16);
    assert_eq!(stats.evictions, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_hottest_entry_survives_even_oversized() {
    let dir = temp_dir("oversized");
    let store = ResultStore::open(&dir, 4).unwrap();
    store.put(&digest(1), "far too large for the cap").unwrap();
    assert!(
        store.get(&digest(1)).is_some(),
        "a lone oversized entry is served, not thrashed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_recovers_entries_and_lru_order() {
    let dir = temp_dir("reopen");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "one\n").unwrap();
        store.put(&digest(2), "two\n").unwrap();
        store.put(&digest(3), "three\n").unwrap();
        // Touch 1: order on disk becomes [2, 3, 1] coldest-first.
        assert!(store.get(&digest(1)).is_some());
    }
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(2), digest(3), digest(1)],
        "journal replay restores LRU order across restarts"
    );
    assert_eq!(store.get(&digest(1)).as_deref(), Some("one\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leftover_tmp_files_are_reaped_on_open() {
    let dir = temp_dir("reap");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "kept\n").unwrap();
    }
    // Simulate a crash mid-write: a .tmp sibling that never got renamed.
    let tmp = dir.join(format!("{}.json.tmp.12345", digest(2)));
    std::fs::write(&tmp, "torn payload").unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert!(!tmp.exists(), "in-progress write reaped");
    assert_eq!(store.stats().entries, 1);
    assert_eq!(store.get(&digest(1)).as_deref(), Some("kept\n"));
    assert_eq!(store.get(&digest(2)), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_final_journal_record_is_tolerated() {
    let dir = temp_dir("torn");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "one\n").unwrap();
        store.put(&digest(2), "two\n").unwrap();
    }
    // Simulate a crash mid-append: garbage on the journal's last line.
    use std::io::Write;
    let mut journal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("journal.jsonl"))
        .unwrap();
    journal.write_all(b"{\"op\":\"touch\",\"dig").unwrap();
    drop(journal);

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(1), digest(2)],
        "records before the torn tail still apply"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unjournaled_files_are_adopted_and_missing_files_dropped() {
    let dir = temp_dir("heal");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(5), "five\n").unwrap();
        store.put(&digest(6), "six\n").unwrap();
    }
    // A payload written by hand (or surviving a lost journal) is adopted
    // if it carries a valid header; a journaled payload whose file
    // vanished is dropped.
    std::fs::write(
        dir.join(format!("{}.json", digest(7))),
        encode_entry(&digest(7), "seven\n"),
    )
    .unwrap();
    std::fs::remove_file(dir.join(format!("{}.json", digest(5)))).unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(7), digest(6)],
        "adopted files index coldest; vanished files drop"
    );
    assert_eq!(store.get(&digest(7)).as_deref(), Some("seven\n"));
    assert_eq!(store.get(&digest(5)), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_file_vanishing_underneath_a_get_reports_a_miss() {
    let dir = temp_dir("vanish");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    store.put(&digest(1), "one\n").unwrap();
    std::fs::remove_file(dir.join(format!("{}.json", digest(1)))).unwrap();
    assert_eq!(store.get(&digest(1)), None);
    assert_eq!(store.stats().entries, 0, "the dangling entry is dropped");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_payload_is_quarantined_not_served() {
    let dir = temp_dir("quarantine");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    store.put(&digest(1), "{\"id\":\"fig6\"}\n").unwrap();

    // Flip bits in the payload body behind the store's back (disk rot,
    // torn write whose rename still landed).
    let path = dir.join(format!("{}.json", digest(1)));
    let body = std::fs::read_to_string(&path).unwrap();
    let tampered = body.replace("fig6", "fig7");
    assert_ne!(body, tampered);
    std::fs::write(&path, tampered).unwrap();

    assert_eq!(
        store.get(&digest(1)),
        None,
        "a checksum mismatch is a miss, never served bytes"
    );
    let stats = store.stats();
    assert_eq!(stats.corrupt, 1);
    assert_eq!(stats.entries, 0, "the corrupt entry left the index");
    assert!(
        dir.join(format!("{}.json.corrupt", digest(1))).exists(),
        "the bad file is kept for forensics"
    );
    assert!(!path.exists());

    // Self-heal: the digest can be re-put and served again.
    store.put(&digest(1), "{\"id\":\"fig6\"}\n").unwrap();
    assert_eq!(
        store.get(&digest(1)).as_deref(),
        Some("{\"id\":\"fig6\"}\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_truncated_payload_is_quarantined() {
    let dir = temp_dir("truncated");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    store
        .put(&digest(1), "a payload long enough to truncate\n")
        .unwrap();

    // Tear the file mid-payload: header intact, bytes missing — the
    // exact shape a power cut leaves under `--durability none`.
    let path = dir.join(format!("{}.json", digest(1)));
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &body[..body.len() - 10]).unwrap();

    assert_eq!(store.get(&digest(1)), None);
    assert_eq!(store.stats().corrupt, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_unjournaled_file_is_quarantined_at_open() {
    let dir = temp_dir("adopt-corrupt");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "good\n").unwrap();
    }
    // Two hand-written strays: one valid, one with a lying checksum.
    std::fs::write(
        dir.join(format!("{}.json", digest(2))),
        encode_entry(&digest(2), "also good\n"),
    )
    .unwrap();
    std::fs::write(
        dir.join(format!("{}.json", digest(3))),
        encode_entry(&digest(3), "original\n").replace("original", "tampered"),
    )
    .unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(store.stats().corrupt, 1);
    assert_eq!(store.get(&digest(2)).as_deref(), Some("also good\n"));
    assert_eq!(store.get(&digest(3)), None);
    assert!(dir.join(format!("{}.json.corrupt", digest(3))).exists());
    assert_eq!(store.get(&digest(1)).as_deref(), Some("good\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_journal_corruption_rebuilds_the_index_from_files() {
    let dir = temp_dir("midfile");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "one\n").unwrap();
        store.put(&digest(2), "two\n").unwrap();
        store.put(&digest(3), "three\n").unwrap();
        assert!(store.get(&digest(1)).is_some());
    }
    // Flip bits in the *middle* of the journal — not the torn-tail case.
    let journal = dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert!(lines.len() >= 3, "need a middle record to corrupt");
    let mid = lines.len() / 2;
    lines[mid] = lines[mid].replace(|c: char| c.is_ascii_hexdigit(), "Z");
    std::fs::write(&journal, format!("{}\n", lines.join("\n"))).unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    // LRU order is lost (rebuilt from the directory, name order), but
    // every payload survives, verified, and is served byte-identical.
    let mut digests = store.digests_lru_order();
    digests.sort();
    assert_eq!(digests, vec![digest(1), digest(2), digest(3)]);
    assert_eq!(store.get(&digest(1)).as_deref(), Some("one\n"));
    assert_eq!(store.get(&digest(2)).as_deref(), Some("two\n"));
    assert_eq!(store.get(&digest(3)).as_deref(), Some("three\n"));
    assert_eq!(store.stats().corrupt, 0, "payload files were all intact");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_bit_flipped_journal_record_is_caught_by_its_checksum() {
    let dir = temp_dir("journal-ck");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "one\n").unwrap();
        store.put(&digest(2), "two\n").unwrap();
        store.put(&digest(3), "three\n").unwrap();
    }
    // A *parseable* record whose fields were altered: swap a digest in
    // the middle of the journal. JSON-valid, checksum-invalid.
    let journal = dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let mid = lines.len() / 2;
    lines[mid] = lines[mid].replace(&digest(2), &digest(9));
    std::fs::write(&journal, format!("{}\n", lines.join("\n"))).unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    // The record's own checksum exposes the tamper; the index rebuilds
    // from files and every real payload is still served.
    let mut digests = store.digests_lru_order();
    digests.sort();
    assert_eq!(digests, vec![digest(1), digest(2), digest(3)]);
    assert_eq!(store.get(&digest(2)).as_deref(), Some("two\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_policies_round_trip_payloads_identically() {
    use xpd::store::Durability;
    for (policy, tag) in [
        (Durability::None, "none"),
        (Durability::Flush, "flush"),
        (Durability::Fsync, "fsync"),
    ] {
        let dir = temp_dir(&format!("durability-{tag}"));
        let store = ResultStore::open_with(&dir, 1 << 20, policy, None).unwrap();
        assert_eq!(store.durability(), policy);
        store.put(&digest(1), "same bytes either way\n").unwrap();
        store.flush().unwrap();
        drop(store);
        let store = ResultStore::open_with(&dir, 1 << 20, policy, None).unwrap();
        assert_eq!(
            store.get(&digest(1)).as_deref(),
            Some("same bytes either way\n"),
            "durability is a syncing policy, never a format change ({tag})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(Durability::parse("fsync"), Ok(Durability::Fsync));
    assert!(Durability::parse("paranoid").is_err());
}

#[test]
fn lowering_the_cap_across_restart_evicts_on_open() {
    let dir = temp_dir("recap");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        for n in 0..4 {
            store.put(&digest(n), "12345678").unwrap();
        }
    }
    let store = ResultStore::open(&dir, 16).unwrap();
    let stats = store.stats();
    assert_eq!(stats.entries, 2, "open enforces the (lowered) cap");
    assert!(stats.bytes <= 16);
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(2), digest(3)],
        "the hottest entries survive the re-cap"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
