//! Integration tests for the content-addressed result store: crash-safe
//! writes, digest round-trips, LRU eviction at the size cap, journal
//! replay across reopens, and self-healing from torn or corrupt state.

use std::path::PathBuf;
use xpd::store::ResultStore;

/// A fresh, empty temp directory unique to this process and test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpd-store-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic 16-hex digest for test entry `n`.
fn digest(n: usize) -> String {
    format!("{n:016x}")
}

#[test]
fn payloads_round_trip_through_disk() {
    let dir = temp_dir("roundtrip");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();

    let payload = "{\n  \"id\": \"fig6\"\n}\n\n";
    store.put(&digest(1), payload).unwrap();
    assert_eq!(store.get(&digest(1)).as_deref(), Some(payload));
    assert_eq!(store.get(&digest(2)), None, "unknown digest misses");

    // The payload lives in a file named after its digest, byte-exact.
    let on_disk = std::fs::read_to_string(dir.join(format!("{}.json", digest(1)))).unwrap();
    assert_eq!(on_disk, payload);

    let stats = store.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.bytes, payload.len() as u64);
    assert_eq!(stats.evictions, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reput_is_a_touch_not_a_rewrite() {
    let dir = temp_dir("reput");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    store.put(&digest(1), "one\n").unwrap();
    store.put(&digest(2), "two\n").unwrap();
    // Re-putting digest 1 moves it to the hot end without growing the store.
    store.put(&digest(1), "one\n").unwrap();
    assert_eq!(store.stats().entries, 2);
    assert_eq!(store.digests_lru_order(), vec![digest(2), digest(1)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_holds_the_size_cap() {
    let dir = temp_dir("lru");
    // Cap fits two 8-byte payloads but not three.
    let store = ResultStore::open(&dir, 16).unwrap();
    let payload = "12345678";
    store.put(&digest(1), payload).unwrap();
    store.put(&digest(2), payload).unwrap();
    // Touch 1 so 2 becomes the coldest entry.
    assert!(store.get(&digest(1)).is_some());
    store.put(&digest(3), payload).unwrap();

    assert_eq!(store.get(&digest(2)), None, "coldest entry evicted");
    assert!(store.get(&digest(1)).is_some(), "touched entry survives");
    assert!(store.get(&digest(3)).is_some(), "new entry survives");
    assert!(
        !dir.join(format!("{}.json", digest(2))).exists(),
        "evicted payload removed from disk"
    );
    let stats = store.stats();
    assert_eq!(stats.entries, 2);
    assert!(stats.bytes <= 16);
    assert_eq!(stats.evictions, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_hottest_entry_survives_even_oversized() {
    let dir = temp_dir("oversized");
    let store = ResultStore::open(&dir, 4).unwrap();
    store.put(&digest(1), "far too large for the cap").unwrap();
    assert!(
        store.get(&digest(1)).is_some(),
        "a lone oversized entry is served, not thrashed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_recovers_entries_and_lru_order() {
    let dir = temp_dir("reopen");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "one\n").unwrap();
        store.put(&digest(2), "two\n").unwrap();
        store.put(&digest(3), "three\n").unwrap();
        // Touch 1: order on disk becomes [2, 3, 1] coldest-first.
        assert!(store.get(&digest(1)).is_some());
    }
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(2), digest(3), digest(1)],
        "journal replay restores LRU order across restarts"
    );
    assert_eq!(store.get(&digest(1)).as_deref(), Some("one\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leftover_tmp_files_are_reaped_on_open() {
    let dir = temp_dir("reap");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "kept\n").unwrap();
    }
    // Simulate a crash mid-write: a .tmp sibling that never got renamed.
    let tmp = dir.join(format!("{}.json.tmp.12345", digest(2)));
    std::fs::write(&tmp, "torn payload").unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert!(!tmp.exists(), "in-progress write reaped");
    assert_eq!(store.stats().entries, 1);
    assert_eq!(store.get(&digest(1)).as_deref(), Some("kept\n"));
    assert_eq!(store.get(&digest(2)), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_final_journal_record_is_tolerated() {
    let dir = temp_dir("torn");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(1), "one\n").unwrap();
        store.put(&digest(2), "two\n").unwrap();
    }
    // Simulate a crash mid-append: garbage on the journal's last line.
    use std::io::Write;
    let mut journal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("journal.jsonl"))
        .unwrap();
    journal.write_all(b"{\"op\":\"touch\",\"dig").unwrap();
    drop(journal);

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(1), digest(2)],
        "records before the torn tail still apply"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unjournaled_files_are_adopted_and_missing_files_dropped() {
    let dir = temp_dir("heal");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        store.put(&digest(5), "five\n").unwrap();
        store.put(&digest(6), "six\n").unwrap();
    }
    // A payload written by hand (or surviving a lost journal) is adopted;
    // a journaled payload whose file vanished is dropped.
    std::fs::write(dir.join(format!("{}.json", digest(7))), "seven\n").unwrap();
    std::fs::remove_file(dir.join(format!("{}.json", digest(5)))).unwrap();

    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(7), digest(6)],
        "adopted files index coldest; vanished files drop"
    );
    assert_eq!(store.get(&digest(7)).as_deref(), Some("seven\n"));
    assert_eq!(store.get(&digest(5)), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_file_vanishing_underneath_a_get_reports_a_miss() {
    let dir = temp_dir("vanish");
    let store = ResultStore::open(&dir, 1 << 20).unwrap();
    store.put(&digest(1), "one\n").unwrap();
    std::fs::remove_file(dir.join(format!("{}.json", digest(1)))).unwrap();
    assert_eq!(store.get(&digest(1)), None);
    assert_eq!(store.stats().entries, 0, "the dangling entry is dropped");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lowering_the_cap_across_restart_evicts_on_open() {
    let dir = temp_dir("recap");
    {
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        for n in 0..4 {
            store.put(&digest(n), "12345678").unwrap();
        }
    }
    let store = ResultStore::open(&dir, 16).unwrap();
    let stats = store.stats();
    assert_eq!(stats.entries, 2, "open enforces the (lowered) cap");
    assert!(stats.bytes <= 16);
    assert_eq!(
        store.digests_lru_order(),
        vec![digest(2), digest(3)],
        "the hottest entries survive the re-cap"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
