//! Integration tests for the daemon itself, driven through real
//! sockets with a mock [`QueryEngine`]: compute-then-store-hit flow,
//! restart persistence, error containment, backpressure, and a
//! concurrent-clients property asserting exactly-once evaluation per
//! unique digest.

use common::digest::Fnv1a;
use common::json::Json;
use common::proto::{QueryRequest, QueryResponse, Source};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xpd::client::{self, Connection, Endpoint};
use xpd::server::{Server, ServerConfig};
use xpd::QueryEngine;

/// A fresh, empty temp directory unique to this process and test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpd-server-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canned payload the mock engine produces for an artifact query.
fn mock_payload(request: &QueryRequest) -> String {
    let mut sets: Vec<_> = request.sets.clone();
    sets.sort();
    format!(
        "{{\n  \"artifact\": \"{}\",\n  \"sets\": {:?}\n}}\n",
        request.artifact, sets
    )
}

/// A gate the blocking-engine test uses to park `evaluate` calls.
#[derive(Default)]
struct Gate {
    state: Mutex<(bool, usize)>, // (open, evaluate calls entered)
    changed: Condvar,
}

impl Gate {
    fn enter_and_wait_open(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 += 1;
        self.changed.notify_all();
        while !state.0 {
            state = self.changed.wait(state).unwrap();
        }
    }

    fn open(&self) {
        let mut state = self.state.lock().unwrap();
        state.0 = true;
        self.changed.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut state = self.state.lock().unwrap();
        while state.1 < n {
            assert!(Instant::now() < deadline, "engine never entered evaluate");
            let (next, _) = self
                .changed
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap();
            state = next;
        }
    }
}

/// A deterministic engine: digests are content hashes of the request,
/// payloads are canned, and every evaluation is counted per digest.
/// `artifact == "fail-*"` evaluates to an error, `"explode"` panics,
/// and `"bad"` fails at digest time.
#[derive(Default)]
struct MockEngine {
    evaluated: Mutex<HashMap<String, usize>>,
    gate: Option<Arc<Gate>>,
}

impl MockEngine {
    fn evaluations(&self, digest: &str) -> usize {
        *self.evaluated.lock().unwrap().get(digest).unwrap_or(&0)
    }

    fn digest_of(request: &QueryRequest) -> String {
        let mut sets: Vec<_> = request.sets.clone();
        sets.sort();
        let mut h = Fnv1a::of("mock|");
        h.update(&request.artifact);
        for (k, v) in &sets {
            h.update("|");
            h.update(k);
            h.update("=");
            h.update(v);
        }
        h.hex()
    }
}

impl QueryEngine for MockEngine {
    fn digest(&self, request: &QueryRequest) -> Result<String, String> {
        if request.artifact == "bad" {
            return Err(format!("no such artifact {:?}", request.artifact));
        }
        Ok(Self::digest_of(request))
    }

    fn evaluate(&self, requests: &[QueryRequest]) -> Vec<Result<String, String>> {
        if let Some(gate) = &self.gate {
            gate.enter_and_wait_open();
        }
        requests
            .iter()
            .map(|request| {
                if request.artifact == "explode" {
                    panic!("mock engine exploded");
                }
                if request.artifact.starts_with("fail") {
                    return Err(format!("cannot evaluate {:?}", request.artifact));
                }
                let digest = Self::digest_of(request);
                *self.evaluated.lock().unwrap().entry(digest).or_insert(0) += 1;
                Ok(mock_payload(request))
            })
            .collect()
    }

    fn describe(&self) -> Json {
        let mut o = Json::object();
        o.insert("kind", "mock");
        o
    }
}

/// Binds a TCP server on a free port and runs it on its own thread.
fn start_tcp(
    config: ServerConfig,
    engine: Arc<MockEngine>,
) -> (Endpoint, JoinHandle<Result<(), String>>) {
    let mut config = config;
    config.tcp = Some("127.0.0.1:0".to_string());
    let server = Server::bind(config, engine).unwrap();
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (Endpoint::Tcp(addr.to_string()), handle)
}

fn shutdown(endpoint: &Endpoint, handle: JoinHandle<Result<(), String>>) {
    let response = client::request(endpoint, &QueryRequest::shutdown(), None).unwrap();
    assert_eq!(response.status, "ok");
    handle.join().unwrap().unwrap();
}

fn ok_query(endpoint: &Endpoint, request: &QueryRequest) -> QueryResponse {
    let response = client::request(endpoint, request, None).unwrap();
    assert_eq!(response.status, "ok", "error: {:?}", response.error);
    response
}

#[test]
fn queries_compute_once_then_hit_the_store() {
    let dir = temp_dir("compute-then-hit");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), Arc::clone(&engine));

    let request = QueryRequest::query("fig6")
        .with_set("bw", "2x")
        .with_set("gpms", "8");
    let first = ok_query(&endpoint, &request);
    assert_eq!(first.source, Some(Source::Computed));
    assert_eq!(
        first.payload.as_deref(),
        Some(mock_payload(&request).as_str())
    );

    let second = ok_query(&endpoint, &request);
    assert_eq!(
        second.source,
        Some(Source::Store),
        "second query is a store hit"
    );
    assert_eq!(second.payload, first.payload, "hit is byte-identical");
    assert_eq!(second.digest, first.digest);
    assert_eq!(engine.evaluations(first.digest.as_deref().unwrap()), 1);

    // Set order does not matter: same digest, still a store hit.
    let reordered = QueryRequest::query("fig6")
        .with_set("gpms", "8")
        .with_set("bw", "2x");
    let third = ok_query(&endpoint, &reordered);
    assert_eq!(third.source, Some(Source::Store));

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_store_survives_a_daemon_restart() {
    let dir = temp_dir("restart");
    let request = QueryRequest::query("fig2");
    let first_payload;
    {
        let engine = Arc::new(MockEngine::default());
        let (endpoint, handle) =
            start_tcp(ServerConfig::new(dir.join("store")), Arc::clone(&engine));
        first_payload = ok_query(&endpoint, &request).payload;
        shutdown(&endpoint, handle);
    }
    // A brand-new daemon (and engine) over the same store directory
    // serves the persisted payload without re-evaluating anything.
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), Arc::clone(&engine));
    let served = ok_query(&endpoint, &request);
    assert_eq!(served.source, Some(Source::Store));
    assert_eq!(served.payload, first_payload);
    assert!(
        engine.evaluated.lock().unwrap().is_empty(),
        "nothing re-evaluated"
    );
    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unix_socket_round_trip() {
    let dir = temp_dir("unix");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("xpd.sock");
    let mut config = ServerConfig::new(dir.join("store"));
    config.socket = Some(socket.clone());
    let engine = Arc::new(MockEngine::default());
    let server = Server::bind(config, engine).unwrap();
    let handle = std::thread::spawn(move || server.run());
    let endpoint = Endpoint::Unix(socket.clone());

    let response = ok_query(&endpoint, &QueryRequest::query("fig7"));
    assert_eq!(response.source, Some(Source::Computed));
    shutdown(&endpoint, handle);
    assert!(!socket.exists(), "socket file removed on clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_failures_are_contained_per_request() {
    let dir = temp_dir("failures");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);

    // Digest-time rejection: fails fast, nothing enqueued.
    let bad = client::request(&endpoint, &QueryRequest::query("bad"), None).unwrap();
    assert_eq!(bad.status, "error");
    assert!(bad.error.unwrap().contains("no such artifact"));

    // Evaluation error: reported to the requester.
    let failed = client::request(&endpoint, &QueryRequest::query("fail-here"), None).unwrap();
    assert_eq!(failed.status, "error");
    assert!(failed.error.unwrap().contains("cannot evaluate"));

    // Engine panic: contained, reported, and the daemon keeps serving.
    let panicked = client::request(&endpoint, &QueryRequest::query("explode"), None).unwrap();
    assert_eq!(panicked.status, "error");
    assert!(panicked.error.unwrap().contains("engine panicked"));

    let after = ok_query(&endpoint, &QueryRequest::query("fig8"));
    assert_eq!(after.source, Some(Source::Computed));

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_lines_get_error_responses() {
    let dir = temp_dir("malformed");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);

    // Drive the raw protocol: garbage JSON, then a bad op, then a real
    // query on the same connection.
    use std::io::{BufRead, BufReader, Write};
    let Endpoint::Tcp(addr) = &endpoint else {
        unreachable!()
    };
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let reader = stream.try_clone().unwrap();
    let mut lines = BufReader::new(reader).lines();
    let mut exchange = |line: &str| -> QueryResponse {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let reply = lines.next().unwrap().unwrap();
        QueryResponse::from_json(&Json::parse(&reply).unwrap()).unwrap()
    };

    assert_eq!(exchange("{not json").status, "error");
    assert_eq!(exchange(r#"{"op":"frobnicate"}"#).status, "error");
    assert_eq!(exchange(r#"{"artifact":""}"#).status, "error");
    let good = exchange(r#"{"op":"query","artifact":"fig9"}"#);
    assert_eq!(good.status, "ok");
    assert_eq!(good.source, Some(Source::Computed));
    drop(stream);

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_reports_store_queue_and_engine_counters() {
    let dir = temp_dir("stats");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);

    let request = QueryRequest::query("headline");
    ok_query(&endpoint, &request);
    ok_query(&endpoint, &request); // store hit

    let response = client::request(&endpoint, &QueryRequest::stats(), None).unwrap();
    assert_eq!(response.status, "ok");
    let stats = response.stats.expect("stats payload");
    let num = |path: &[&str]| -> f64 {
        let mut j = &stats;
        for p in path {
            j = j.get(p).unwrap_or_else(|| panic!("stats missing {path:?}"));
        }
        j.as_f64()
            .unwrap_or_else(|| panic!("stats {path:?} not a number"))
    };
    assert_eq!(num(&["requests"]), 3.0, "two queries + this stats call");
    assert_eq!(num(&["store", "hits"]), 1.0);
    assert_eq!(num(&["store", "misses"]), 1.0);
    assert_eq!(num(&["store", "entries"]), 1.0);
    assert_eq!(num(&["queue", "enqueued"]), 1.0);
    assert_eq!(num(&["queue", "rejected"]), 0.0);
    assert!(num(&["batch", "batches"]) >= 1.0);
    assert_eq!(
        stats
            .get("engine")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("mock")
    );

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_full_queue_answers_busy_instead_of_blocking() {
    let dir = temp_dir("busy");
    let gate = Arc::new(Gate::default());
    let engine = Arc::new(MockEngine {
        evaluated: Mutex::new(HashMap::new()),
        gate: Some(Arc::clone(&gate)),
    });
    let mut config = ServerConfig::new(dir.join("store"));
    config.queue_cap = 1;
    config.batch_max = 1;
    config.batch_window = Duration::from_millis(1);
    let (endpoint, handle) = start_tcp(config, engine);

    // First query: popped by the scheduler, parked inside `evaluate`.
    let first = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || client::request(&endpoint, &QueryRequest::query("a"), None))
    };
    gate.wait_entered(1);

    // Second query: enqueued (the scheduler is busy), waits its turn.
    let second = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || client::request(&endpoint, &QueryRequest::query("b"), None))
    };
    // Wait until the second query occupies the queue's single slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client::request(&endpoint, &QueryRequest::stats(), None)
            .unwrap()
            .stats
            .unwrap();
        let depth = stats
            .get("queue")
            .and_then(|q| q.get("depth"))
            .and_then(Json::as_f64);
        if depth == Some(1.0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "second query never reached the queue"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Third query: the queue is full — busy, immediately.
    let third = client::request(&endpoint, &QueryRequest::query("c"), None).unwrap();
    assert_eq!(third.status, "busy");
    assert!(third.error.unwrap().contains("queue full"));

    // Release the engine: both parked queries complete normally.
    gate.open();
    for parked in [first, second] {
        let response = parked.join().unwrap().unwrap();
        assert_eq!(response.status, "ok", "error: {:?}", response.error);
        assert_eq!(response.source, Some(Source::Computed));
    }

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_reports_readiness_queue_and_store() {
    let dir = temp_dir("health");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);

    ok_query(&endpoint, &QueryRequest::query("fig6"));
    let response = client::request(&endpoint, &QueryRequest::health(), None).unwrap();
    assert_eq!(response.status, "ok");
    let health = response.stats.expect("health payload");
    assert_eq!(health.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        health.get("inflight").and_then(Json::as_f64),
        Some(0.0),
        "no queries in flight while health is being answered"
    );
    assert_eq!(
        health.get("store_entries").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        health.get("store_corrupt").and_then(Json::as_f64),
        Some(0.0)
    );
    assert!(
        health.get("uptime_secs").and_then(Json::as_f64).unwrap() >= 0.0,
        "uptime from the monotonic start instant"
    );
    assert_eq!(
        health.get("pid").and_then(Json::as_f64),
        Some(f64::from(std::process::id()))
    );
    assert!(
        health
            .get("started_unix_ms")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0,
        "wall-clock start timestamp present"
    );

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_deadline_is_answered_timeout_not_computed() {
    let dir = temp_dir("deadline");
    let gate = Arc::new(Gate::default());
    let engine = Arc::new(MockEngine {
        evaluated: Mutex::new(HashMap::new()),
        gate: Some(Arc::clone(&gate)),
    });
    let mut config = ServerConfig::new(dir.join("store"));
    config.batch_max = 1;
    config.batch_window = Duration::from_millis(1);
    let (endpoint, handle) = start_tcp(config, Arc::clone(&engine));

    // Park the scheduler inside `evaluate` on an unrelated query.
    let parked = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || client::request(&endpoint, &QueryRequest::query("a"), None))
    };
    gate.wait_entered(1);

    // A query with a short deadline queues up behind the parked batch
    // and expires there.
    let doomed = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            client::request(
                &endpoint,
                &QueryRequest::query("b").with_deadline_ms(50),
                None,
            )
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    gate.open();

    let response = doomed.join().unwrap().unwrap();
    assert_eq!(response.status, "timeout", "error: {:?}", response.error);
    assert!(response.error.unwrap().contains("deadline"));
    assert_eq!(
        engine.evaluations(&MockEngine::digest_of(&QueryRequest::query("b"))),
        0,
        "expired work must be shed, not silently computed"
    );
    // The parked query is unaffected.
    let ok = parked.join().unwrap().unwrap();
    assert_eq!(ok.status, "ok");

    // A generous deadline computes normally.
    let relaxed = ok_query(
        &endpoint,
        &QueryRequest::query("c").with_deadline_ms(60_000),
    );
    assert_eq!(relaxed.source, Some(Source::Computed));

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_retrying_client_rides_out_busy_backpressure() {
    let dir = temp_dir("busy-retry");
    let gate = Arc::new(Gate::default());
    let engine = Arc::new(MockEngine {
        evaluated: Mutex::new(HashMap::new()),
        gate: Some(Arc::clone(&gate)),
    });
    let mut config = ServerConfig::new(dir.join("store"));
    config.queue_cap = 1;
    config.batch_max = 1;
    config.batch_window = Duration::from_millis(1);
    let (endpoint, handle) = start_tcp(config, engine);

    // Fill the scheduler and the queue's single slot.
    let first = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || client::request(&endpoint, &QueryRequest::query("a"), None))
    };
    gate.wait_entered(1);
    let second = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || client::request(&endpoint, &QueryRequest::query("b"), None))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while client::request(&endpoint, &QueryRequest::stats(), None)
        .unwrap()
        .stats
        .unwrap()
        .get("queue")
        .and_then(|q| q.get("depth"))
        .and_then(Json::as_f64)
        != Some(1.0)
    {
        assert!(Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Open the gate shortly after the retrying client's first (busy)
    // attempt, so one of its backoff retries lands in free capacity.
    let opener = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            gate.open();
        })
    };
    let policy = client::RetryPolicy {
        retries: 30,
        backoff: Duration::from_millis(20),
        jitter_seed: 7,
    };
    let third =
        client::request_with_retries(&endpoint, &QueryRequest::query("c"), None, &policy).unwrap();
    assert_eq!(
        third.status, "ok",
        "retries absorbed the busy window: {:?}",
        third.error
    );

    opener.join().unwrap();
    for parked in [first, second] {
        assert_eq!(parked.join().unwrap().unwrap().status, "ok");
    }
    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_stop_handle_drains_and_exits_cleanly() {
    let dir = temp_dir("stop-handle");
    let engine = Arc::new(MockEngine::default());
    let mut config = ServerConfig::new(dir.join("store"));
    config.tcp = Some("127.0.0.1:0".to_string());
    let server = Server::bind(config, engine).unwrap();
    let addr = server.tcp_addr().unwrap();
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.run());

    let endpoint = Endpoint::Tcp(addr.to_string());
    ok_query(&endpoint, &QueryRequest::query("fig2"));

    // An out-of-band stop (the CLI's signal path) drains and returns.
    stop.stop();
    handle.join().unwrap().unwrap();

    // The store was flushed: a reopen replays the journal cleanly and
    // serves the answer warm.
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), Arc::clone(&engine));
    let served = ok_query(&endpoint, &QueryRequest::query("fig2"));
    assert_eq!(served.source, Some(Source::Store));
    assert!(engine.evaluated.lock().unwrap().is_empty());
    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_serves_json_and_prometheus_renderings() {
    let dir = temp_dir("metrics");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);

    let request = QueryRequest::query("metrics-art");
    ok_query(&endpoint, &request);
    ok_query(&endpoint, &request); // store hit

    let response = client::request(
        &endpoint,
        &QueryRequest::metrics(common::proto::MetricsFormat::Json),
        None,
    )
    .unwrap();
    assert_eq!(response.status, "ok");
    let doc = response.metrics.expect("metrics payload");
    assert!(doc.get("uptime_secs").and_then(Json::as_f64).unwrap() >= 0.0);
    assert_eq!(
        doc.get("pid").and_then(Json::as_f64),
        Some(f64::from(std::process::id()))
    );
    let gauges = doc.get("gauges").expect("gauges object");
    assert_eq!(gauges.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    assert!(gauges.get("store_entries").and_then(Json::as_f64).unwrap() >= 1.0);
    // The registry is process-cumulative and shared with every other
    // test in this binary, so only lower bounds are stable.
    let requests = doc
        .get("counters")
        .and_then(|c| c.get("xpd.request"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(requests >= 3.0, "saw {requests} cumulative requests");
    let window = doc.get("window_1m").expect("windowed rollup");
    assert!(window.get("elapsed_secs").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(
        window
            .get("latency")
            .and_then(|l| l.get("xpd.request_duration.query"))
            .and_then(|h| h.get("p99_ms"))
            .and_then(Json::as_f64)
            .is_some(),
        "recent per-op latency quantiles present"
    );

    let response = client::request(
        &endpoint,
        &QueryRequest::metrics(common::proto::MetricsFormat::Prometheus),
        None,
    )
    .unwrap();
    assert_eq!(response.status, "ok");
    let text = response
        .metrics
        .as_ref()
        .and_then(Json::as_str)
        .expect("prometheus text rides as one JSON string")
        .to_string();
    assert!(text.contains("# TYPE xpd_requests_total counter"), "{text}");
    assert!(text.contains("# TYPE xpd_queue_depth gauge"), "{text}");
    assert!(
        text.contains("# TYPE xpd_request_duration summary"),
        "{text}"
    );
    assert!(
        text.contains("xpd_request_duration{op=\"query\",quantile=\"0.99\"}"),
        "{text}"
    );
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2,
            "malformed exposition line: {line}"
        );
    }

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timing_is_opt_in_and_leaves_payloads_byte_identical() {
    let dir = temp_dir("timing");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);

    let plain = QueryRequest::query("fig-timing");
    let timed = QueryRequest::query("fig-timing").with_timing();

    let cold = ok_query(&endpoint, &timed);
    assert_eq!(cold.source, Some(Source::Computed));
    let timing = cold.timing.as_ref().expect("cold timing breakdown");
    for key in [
        "total_ms",
        "queue_wait_ms",
        "batch_linger_ms",
        "eval_ms",
        "store_write_ms",
    ] {
        assert!(
            timing.get(key).and_then(Json::as_f64).is_some(),
            "timing missing {key}: {}",
            timing.render()
        );
    }

    // The same artifact without `timing` is a store hit: the timing
    // flag never reached the digest, and the payload is byte-identical.
    let warm = ok_query(&endpoint, &plain);
    assert_eq!(warm.source, Some(Source::Store));
    assert!(warm.timing.is_none(), "timing is strictly opt-in");
    assert_eq!(warm.payload, cold.payload);
    assert_eq!(warm.digest, cold.digest);

    let warm_timed = ok_query(&endpoint, &timed);
    assert_eq!(warm_timed.source, Some(Source::Store));
    assert!(
        warm_timed.timing.is_some(),
        "store hits carry a breakdown too"
    );

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_http_bridge_serves_scrapers_on_the_same_port() {
    use std::io::{Read, Write};
    let dir = temp_dir("http");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(dir.join("store")), engine);
    let Endpoint::Tcp(addr) = endpoint.clone() else {
        panic!("tcp endpoint expected");
    };

    let fetch = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    };

    let metrics = fetch("/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    assert!(metrics.contains("xpd_queue_depth"), "{metrics}");

    let health = fetch("/health");
    assert!(health.starts_with("HTTP/1.0 200 OK\r\n"), "{health}");
    assert!(health.contains("application/json"), "{health}");
    assert!(health.contains("\"ready\""), "{health}");

    let missing = fetch("/frobnicate");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

    // The JSON protocol still works on the same port afterwards.
    ok_query(&endpoint, &QueryRequest::query("fig2"));

    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_requests_land_in_the_slow_query_log() {
    let dir = temp_dir("slow");
    let engine = Arc::new(MockEngine::default());
    let mut config = ServerConfig::new(dir.join("store"));
    config.slow_ms = Some(0); // every request counts as slow
    let (endpoint, handle) = start_tcp(config, engine);

    ok_query(&endpoint, &QueryRequest::query("tortoise"));
    shutdown(&endpoint, handle);

    let text = std::fs::read_to_string(dir.join("store").join("slow.jsonl")).unwrap();
    let records = Json::parse_jsonl(&text).unwrap();
    let slow_query = records
        .iter()
        .find(|r| {
            r.get("kind").and_then(Json::as_str) == Some("slow")
                && r.get("op").and_then(Json::as_str) == Some("query")
        })
        .expect("the artifact query was logged as slow");
    assert_eq!(slow_query.get("status").and_then(Json::as_str), Some("ok"));
    assert!(slow_query.get("total_ms").and_then(Json::as_f64).is_some());
    assert!(slow_query
        .get("queue_wait_ms")
        .and_then(Json::as_f64)
        .is_some());
    assert!(slow_query
        .get("at_unix_ms")
        .and_then(Json::as_f64)
        .is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_quarantined_payload_dumps_the_flight_recorder() {
    let dir = temp_dir("flight");
    let store_dir = dir.join("store");
    let engine = Arc::new(MockEngine::default());
    let (endpoint, handle) = start_tcp(ServerConfig::new(store_dir.clone()), Arc::clone(&engine));

    let request = QueryRequest::query("flighty");
    let first = ok_query(&endpoint, &request);
    let digest = first.digest.clone().unwrap();

    // Corrupt the stored payload behind the daemon's back: the next
    // read must quarantine it, re-evaluate, and dump the flight
    // recorder for forensics.
    let payload_path = store_dir.join(format!("{digest}.json"));
    let mut body = std::fs::read_to_string(&payload_path).unwrap();
    body.push_str("garbage\n");
    std::fs::write(&payload_path, body).unwrap();

    let healed = ok_query(&endpoint, &request);
    assert_eq!(healed.source, Some(Source::Computed), "re-evaluated");
    assert_eq!(healed.payload, first.payload);
    shutdown(&endpoint, handle);

    let dump = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("flightrec-"))
        .expect("quarantine produced a flight-recorder dump");
    let doc = Json::parse(&std::fs::read_to_string(dump.path()).unwrap()).unwrap();
    assert_eq!(doc.get("reason").and_then(Json::as_str), Some("quarantine"));
    let events = doc.get("events").unwrap().as_array().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("store")),
        "dump contains store events"
    );
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("request")),
        "dump contains request events"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Distinguishes proptest cases so each gets a fresh store directory.
static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The exactly-once guarantee: any concurrent schedule of clients
    /// querying overlapping artifacts evaluates each unique digest once
    /// — every later answer comes from the in-flight dedup point or the
    /// disk store.
    #[test]
    fn concurrent_clients_evaluate_each_digest_exactly_once(
        schedule in prop::collection::vec((0_usize..4, 0_usize..3), 1..24),
    ) {
        let dir = temp_dir(&format!("once-{}", CASE.fetch_add(1, Ordering::Relaxed)));
        let engine = Arc::new(MockEngine::default());
        let (endpoint, handle) =
            start_tcp(ServerConfig::new(dir.join("store")), Arc::clone(&engine));

        const ARTIFACTS: [&str; 3] = ["fig2", "fig6", "headline"];
        let mut lanes: Vec<Vec<&str>> = vec![Vec::new(); 4];
        for &(client, artifact) in &schedule {
            lanes[client].push(ARTIFACTS[artifact]);
        }

        let clients: Vec<_> = lanes
            .into_iter()
            .filter(|lane| !lane.is_empty())
            .map(|lane| {
                let endpoint = endpoint.clone();
                std::thread::spawn(move || {
                    let mut conn = Connection::connect(&endpoint, None).unwrap();
                    lane.into_iter()
                        .map(|artifact| {
                            let request = QueryRequest::query(artifact);
                            (request.clone(), conn.request(&request).unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        let mut queried = std::collections::HashSet::new();
        for client in clients {
            for (request, response) in client.join().unwrap() {
                prop_assert_eq!(response.status.as_str(), "ok");
                let expected = mock_payload(&request);
                prop_assert_eq!(
                    response.payload.as_deref(),
                    Some(expected.as_str()),
                    "every answer is the exact payload, whatever its source"
                );
                queried.insert(MockEngine::digest_of(&request));
            }
        }
        for digest in &queried {
            prop_assert_eq!(
                engine.evaluations(digest),
                1,
                "digest {} evaluated more than once",
                digest
            );
        }

        shutdown(&endpoint, handle);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
