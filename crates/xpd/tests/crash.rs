//! Crash-recovery properties for the serving path: seeded chaos tears
//! store writes and journal tails at every point a real crash could,
//! and after each "restart" (reopen on the same directory) the store
//! must have self-healed — warm answers byte-identical to what was
//! acknowledged, corrupted entries quarantined and re-evaluated, never
//! served.
//!
//! Two layers of kill-point simulation:
//!
//! * **In-process, exhaustive**: [`xpd::chaos::FaultInjector`] tears
//!   payload writes inside `ResultStore::put` (a crash mid-write, with
//!   and without the rename landing) and tests truncate the journal at
//!   seeded byte offsets (a crash mid-append). Deterministic per seed.
//! * **Out-of-process, end-to-end**: CI's crash-recovery smoke job
//!   `kill -9`s a live `xp serve` mid-batch and byte-compares the
//!   restarted daemon's warm answer against `xp run --out`.

use common::digest::Fnv1a;
use common::json::Json;
use common::proto::{QueryRequest, QueryResponse};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use xpd::chaos::{ChaosConfig, FaultInjector};
use xpd::client::{self, RetryPolicy};
use xpd::server::{Server, ServerConfig};
use xpd::store::{Durability, ResultStore};
use xpd::QueryEngine;

/// A fresh, empty temp directory unique to this process and test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xpd-crash-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic 16-hex digest for test entry `n`.
fn digest(n: usize) -> String {
    format!("{n:016x}")
}

/// The payload stored under [`digest`]`(n)` — long enough that a torn
/// write is visibly a prefix.
fn payload(n: usize) -> String {
    format!(
        "{{\n  \"entry\": {n},\n  \"body\": \"{}\"\n}}\n",
        "x".repeat(64)
    )
}

/// A chaos config that only tears store writes, at a high rate.
fn torn_writes_only(rate: f64) -> ChaosConfig {
    ChaosConfig {
        torn_write: rate,
        drop_response: 0.0,
        delay_accept: 0.0,
        close_read: 0.0,
        accept_delay: Duration::ZERO,
    }
}

/// Writes `count` entries through a chaos-armed store (some writes
/// tear), then reopens clean and asserts the core recovery invariant:
/// every surviving answer is byte-identical, every torn write is a
/// quarantine or a miss — never served bytes. Returns the digests that
/// had to heal.
fn write_crash_recover(dir: &Path, seed: u64, count: usize) -> Vec<String> {
    let injector = Arc::new(FaultInjector::with_config(seed, &torn_writes_only(0.5)));
    let mut acknowledged = Vec::new();
    {
        let store =
            ResultStore::open_with(dir, 1 << 20, Durability::Flush, Some(injector)).unwrap();
        for n in 0..count {
            // A put that returns Ok was acknowledged; a torn one failed
            // loudly and left either a stray tmp file or a torn rename.
            if store.put(&digest(n), &payload(n)).is_ok() {
                acknowledged.push(n);
            }
        }
    } // dropped without flush: an abrupt exit, not a graceful one

    // "Restart": reopen the same directory with chaos disarmed.
    let store = ResultStore::open(dir, 1 << 20).unwrap();
    let mut healed = Vec::new();
    for n in 0..count {
        match store.get(&digest(n)) {
            Some(served) => assert_eq!(
                served,
                payload(n),
                "seed {seed}: digest {n} served bytes that were never acknowledged"
            ),
            None => healed.push(digest(n)),
        }
    }
    for n in &acknowledged {
        assert!(
            store.get(&digest(*n)).is_some(),
            "seed {seed}: acknowledged digest {n} lost without a crash in its write"
        );
    }
    // Self-heal is complete: re-putting every healed digest serves the
    // exact bytes, and nothing remains quarantined in the index.
    for d in &healed {
        let n = usize::from_str_radix(d, 16).unwrap();
        store.put(d, &payload(n)).unwrap();
        assert_eq!(store.get(d).as_deref(), Some(payload(n).as_str()));
    }
    healed
}

#[test]
fn torn_store_writes_recover_under_fixed_seeds() {
    // Pinned seeds, exhaustively re-run every time: the acceptance
    // criterion is that recovery is deterministic per kill schedule.
    for seed in [0_u64, 1, 7, 42, 0xdead_beef, u64::MAX] {
        let dir = temp_dir(&format!("fixed-seed-{seed:x}"));
        let healed = write_crash_recover(&dir, seed, 24);
        // The same seed must heal the same set on a second identical run.
        let dir2 = temp_dir(&format!("fixed-seed-{seed:x}-replay"));
        let healed_again = write_crash_recover(&dir2, seed, 24);
        assert_eq!(
            healed, healed_again,
            "seed {seed}: schedule not deterministic"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}

#[test]
fn a_journal_torn_at_any_byte_still_recovers_every_payload() {
    // Build a clean store, then simulate kill -9 mid-journal-append by
    // truncating the journal at a sweep of byte offsets. Whatever the
    // cut point, reopen must serve every payload byte-identical (order
    // may rebuild from files).
    let master = temp_dir("journal-cut-master");
    {
        let store = ResultStore::open(&master, 1 << 20).unwrap();
        for n in 0..6 {
            store.put(&digest(n), &payload(n)).unwrap();
        }
        store.get(&digest(2));
        store.get(&digest(0));
    }
    let journal_bytes = std::fs::read(master.join("journal.jsonl")).unwrap();
    // Every 37th offset keeps the sweep fast while still hitting cuts
    // inside headers, digests, checksums, and record boundaries.
    for cut in (0..journal_bytes.len()).step_by(37) {
        let dir = temp_dir(&format!("journal-cut-{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        for entry in std::fs::read_dir(&master).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        std::fs::write(dir.join("journal.jsonl"), &journal_bytes[..cut]).unwrap();

        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        for n in 0..6 {
            assert_eq!(
                store.get(&digest(n)).as_deref(),
                Some(payload(n).as_str()),
                "journal cut at byte {cut}: digest {n} not byte-identical"
            );
        }
        assert_eq!(store.stats().corrupt, 0, "payload files were intact");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&master);
}

/// Distinguishes proptest cases so each gets a fresh store directory.
static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any chaos seed and write count: reopening after torn writes
    /// self-heals, serves only acknowledged bytes, and re-evaluation
    /// restores every healed digest byte-identically.
    #[test]
    fn any_seeded_kill_schedule_self_heals(seed in any::<u64>(), count in 4_usize..32) {
        let dir = temp_dir(&format!(
            "prop-{}-{seed:x}",
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        write_crash_recover(&dir, seed, count);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Quarantined entries are re-evaluated, never served: after a
    /// recovery pass, a second reopen sees a consistent, fully
    /// verified store (no corrupt entries left in the index).
    #[test]
    fn recovery_converges_in_one_pass(seed in any::<u64>()) {
        let dir = temp_dir(&format!(
            "converge-{}-{seed:x}",
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        write_crash_recover(&dir, seed, 16);
        let store = ResultStore::open(&dir, 1 << 20).unwrap();
        prop_assert_eq!(store.stats().corrupt, 0_u64, "second open found new corruption");
        for n in 0..16 {
            let served = store.get(&digest(n));
            let expected = payload(n);
            prop_assert_eq!(served.as_deref(), Some(expected.as_str()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A minimal deterministic engine for the end-to-end chaos test.
#[derive(Default)]
struct CountingEngine {
    evaluated: Mutex<HashMap<String, usize>>,
}

impl CountingEngine {
    fn digest_of(request: &QueryRequest) -> String {
        Fnv1a::of("crash|").update(&request.artifact).hex()
    }
}

impl QueryEngine for CountingEngine {
    fn digest(&self, request: &QueryRequest) -> Result<String, String> {
        Ok(Self::digest_of(request))
    }

    fn evaluate(&self, requests: &[QueryRequest]) -> Vec<Result<String, String>> {
        requests
            .iter()
            .map(|request| {
                let digest = Self::digest_of(request);
                *self.evaluated.lock().unwrap().entry(digest).or_insert(0) += 1;
                Ok(format!(
                    "{{\n  \"artifact\": \"{}\"\n}}\n",
                    request.artifact
                ))
            })
            .collect()
    }

    fn describe(&self) -> Json {
        let mut o = Json::object();
        o.insert("kind", "crash-test");
        o
    }
}

/// End to end through real sockets: a chaos-armed daemon (torn store
/// writes, dropped responses, closed reads) against a retrying client.
/// Every query converges to the exact payload because retries are safe
/// (idempotent, content-addressed) and torn store state is quarantined,
/// not served.
#[test]
fn a_retrying_client_converges_against_a_chaotic_daemon() {
    let dir = temp_dir("chaotic-daemon");
    let engine: Arc<dyn QueryEngine> = Arc::new(CountingEngine::default());
    let mut config = ServerConfig::new(dir.join("store"));
    config.tcp = Some("127.0.0.1:0".to_string());
    config.chaos_seed = Some(1234);
    let server = Server::bind(config, Arc::clone(&engine)).unwrap();
    let addr = server.tcp_addr().unwrap();
    let endpoint = client::Endpoint::Tcp(addr.to_string());
    let handle = std::thread::spawn(move || server.run());

    let policy = RetryPolicy {
        retries: 40,
        backoff: Duration::from_millis(2),
        jitter_seed: 99,
    };
    let artifacts = ["fig2", "fig6", "headline", "fig2", "fig6", "headline"];
    for (i, artifact) in artifacts.iter().enumerate() {
        let request = QueryRequest::query(*artifact);
        let response: QueryResponse = client::request_with_retries(
            &endpoint,
            &request,
            Some(Duration::from_secs(5)),
            &policy,
        )
        .unwrap_or_else(|e| panic!("query {i} ({artifact}) never converged: {e}"));
        assert_eq!(response.status, "ok", "query {i}: {:?}", response.error);
        assert_eq!(
            response.payload.as_deref(),
            Some(format!("{{\n  \"artifact\": \"{artifact}\"\n}}\n").as_str()),
            "query {i} ({artifact}): payload not byte-identical under chaos"
        );
    }

    // Shutdown may also need retries: chaos can tear the ack, or close
    // the connection before the request is even read. Once any attempt
    // lands, later connects are refused because the daemon is already
    // draining — `is_finished` distinguishes that from a hang.
    let mut stopped = false;
    for _ in 0..50 {
        match client::request(
            &endpoint,
            &QueryRequest::shutdown(),
            Some(Duration::from_secs(2)),
        ) {
            Ok(r) if r.status == "ok" => {
                stopped = true;
                break;
            }
            _ if handle.is_finished() => {
                stopped = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    assert!(stopped, "daemon never acknowledged shutdown");
    handle.join().unwrap().unwrap();

    // Post-mortem: a clean store open serves only verified bytes.
    let store = ResultStore::open(&dir.join("store"), 1 << 20).unwrap();
    for artifact in ["fig2", "fig6", "headline"] {
        let d = Fnv1a::of("crash|").update(artifact).hex();
        if let Some(served) = store.get(&d) {
            assert_eq!(served, format!("{{\n  \"artifact\": \"{artifact}\"\n}}\n"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
