#![warn(missing_docs)]

//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`], benchmark groups, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a warm-up period, the
//! timing loop auto-scales its iteration count to fill the configured
//! measurement time, then reports the mean wall-clock time per
//! iteration. There are no statistical analyses, plots, or baselines —
//! the numbers are honest but unadorned. A positional CLI argument
//! filters benchmarks by substring, mirroring `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-group measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (a positional substring filter;
    /// flags from `cargo bench` such as `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            if arg == "--bench" || arg == "--test" {
                continue;
            }
            if arg.starts_with("--") {
                // Flags with values we don't implement, e.g. --save-baseline x.
                skip_value = !arg.contains('=');
                continue;
            }
            self.filter = Some(arg);
            break;
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Benchmarks one function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.filter.as_deref(), &Settings::default(), id, f);
        self
    }

    /// Prints the closing line (criterion API parity; a no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Accepts a nominal sample count for API parity; the timing loop
    /// here is time-budgeted, not sample-budgeted, so the value is
    /// advisory only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(self.criterion.filter.as_deref(), &self.settings, &full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(filter: Option<&str>, settings: &Settings, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        mode: Mode::WarmUp,
        budget: settings.warm_up,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.mode = Mode::Measure;
    b.budget = settings.measurement;
    b.iters = 0;
    b.elapsed = Duration::ZERO;
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_secs_f64() / b.iters as f64
    } else {
        f64::NAN
    };
    println!(
        "{id:<50} time: [{}]   ({} iterations)",
        format_time(per_iter),
        b.iters
    );
}

fn format_time(secs: f64) -> String {
    if secs.is_nan() {
        "n/a".to_string()
    } else if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// One programmatic measurement, as produced by [`measure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations executed during the measurement phase.
    pub iters: u64,
    /// Total wall-clock time of the measurement phase, in seconds.
    pub total_secs: f64,
    /// Mean wall-clock time per iteration, in seconds.
    pub mean_secs: f64,
}

/// Times a closure programmatically and returns the [`Measurement`]
/// instead of printing it — the API `xp bench` builds on.
///
/// The closure runs through the same two-phase loop as a regular
/// benchmark: a warm-up pass of at least `warm_up`, then a measurement
/// pass of at least `measurement`, with geometrically growing batches so
/// per-batch timer overhead vanishes.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// let m = criterion::measure(Duration::from_millis(1), Duration::from_millis(5), || {
///     criterion::black_box((0..1000u64).sum::<u64>())
/// });
/// assert!(m.iters > 0);
/// assert!(m.mean_secs > 0.0);
/// ```
pub fn measure<O, F: FnMut() -> O>(
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) -> Measurement {
    let mut b = Bencher {
        mode: Mode::WarmUp,
        budget: warm_up,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    b.iter(&mut f);
    b.mode = Mode::Measure;
    b.budget = measurement;
    b.iters = 0;
    b.elapsed = Duration::ZERO;
    b.iter(&mut f);
    let total_secs = b.elapsed.as_secs_f64();
    Measurement {
        iters: b.iters,
        total_secs,
        mean_secs: if b.iters > 0 {
            total_secs / b.iters as f64
        } else {
            f64::NAN
        },
    }
}

#[derive(Debug, PartialEq)]
enum Mode {
    WarmUp,
    Measure,
}

/// The timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, repeating it in growing batches until the time budget
    /// is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut batch: u64 = 1;
        let start = Instant::now();
        loop {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.elapsed += batch_start.elapsed();
            self.iters += batch;
            if start.elapsed() >= self.budget {
                break;
            }
            // Grow geometrically so per-batch overhead vanishes.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

/// Collects benchmark functions into one runner (criterion API parity).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
