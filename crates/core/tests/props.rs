//! Property tests for the GPUJoule energy model and the EDPSE metric
//! family: Eq. 4 must be linear and non-negative, Eq. 2 must behave like
//! the algebra it claims to be.

use common::units::{Bytes, Energy, Time};
use gpujoule::{EdipScalingEfficiency, EdpScalingEfficiency, EnergyDelay, EnergyModel};
use isa::{EventCounts, Opcode, Transaction};
use proptest::prelude::*;

fn event_counts() -> impl Strategy<Value = EventCounts> {
    (
        prop::collection::vec((0..Opcode::COUNT, 0_u64..1 << 28), 0..8),
        prop::collection::vec((0..Transaction::COUNT, 0_u64..1 << 26), 0..8),
        0_u64..1 << 32,
        0_u64..1 << 28,
        1_f64..1e7,
    )
        .prop_map(|(instrs, txns, bytes, stalls, micros)| {
            let mut ev = EventCounts::new();
            for (i, n) in instrs {
                ev.instrs.add(Opcode::from_index(i).unwrap(), n);
            }
            for (t, n) in txns {
                ev.txns.add(Transaction::from_index(t).unwrap(), n);
            }
            ev.inter_gpm_bytes = Bytes::new(bytes);
            ev.switch_bytes = Bytes::new(bytes / 3);
            ev.stall_cycles = stalls;
            ev.elapsed = Time::from_micros(micros);
            ev
        })
}

fn energy_delay() -> impl Strategy<Value = EnergyDelay> {
    (1e-6_f64..1e6, 1e-9_f64..1e3)
        .prop_map(|(e, t)| EnergyDelay::new(Energy::from_joules(e), Time::from_secs(t)))
}

proptest! {
    #[test]
    fn estimates_are_non_negative(ev in event_counts()) {
        let model = EnergyModel::k40();
        let b = model.estimate(&ev);
        prop_assert!(b.total().joules() >= 0.0);
        for (_, e) in b.iter() {
            prop_assert!(e.joules() >= 0.0);
        }
    }

    #[test]
    fn estimate_is_additive_over_runs(a in event_counts(), b in event_counts()) {
        // Eq. 4 is a sum over events, so sequential composition must add.
        let model = EnergyModel::k40();
        let mut merged = a.clone();
        merged.merge_sequential(&b);
        let sum = model.estimate_total(&a) + model.estimate_total(&b);
        let whole = model.estimate_total(&merged);
        prop_assert!((sum.joules() - whole.joules()).abs()
            <= 1e-9 * whole.joules().max(1e-30));
    }

    #[test]
    fn breakdown_total_is_component_sum(ev in event_counts()) {
        let model = EnergyModel::k40();
        let b = model.estimate(&ev);
        let sum: f64 = b.iter().map(|(_, e)| e.joules()).sum();
        prop_assert!((b.total().joules() - sum).abs() <= 1e-9 * sum.max(1e-30));
    }

    #[test]
    fn edpse_is_100_for_identity(ed in energy_delay()) {
        let se = EdpScalingEfficiency::compute(ed, ed, 1).unwrap();
        prop_assert!((se.percent() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn edpse_is_unit_invariant(base in energy_delay(), scaled in energy_delay(), n in 1_usize..64) {
        // Rescaling time and energy on both design points together must
        // not change the score (Eq. 2 is dimensionless).
        let k_e = 1e3;
        let k_t = 1e-2;
        let rescale = |ed: EnergyDelay| EnergyDelay::new(ed.energy() * k_e, ed.delay() * k_t);
        let a = EdpScalingEfficiency::compute(base, scaled, n).unwrap();
        let b = EdpScalingEfficiency::compute(rescale(base), rescale(scaled), n).unwrap();
        prop_assert!((a.percent() - b.percent()).abs() <= 1e-6 * a.percent().abs().max(1.0));
    }

    #[test]
    fn edpse_decreases_with_scaled_energy(base in energy_delay(), scaled in energy_delay(), n in 1_usize..64) {
        let worse = EnergyDelay::new(scaled.energy() * 2.0, scaled.delay());
        let a = EdpScalingEfficiency::compute(base, scaled, n).unwrap();
        let b = EdpScalingEfficiency::compute(base, worse, n).unwrap();
        prop_assert!((a.percent() / b.percent() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn edipse_exponent_one_matches_edpse(base in energy_delay(), scaled in energy_delay(), n in 1_usize..64) {
        let a = EdpScalingEfficiency::compute(base, scaled, n).unwrap();
        let b = EdipScalingEfficiency::compute(base, scaled, n, 1).unwrap();
        prop_assert!((a.percent() - b.percent()).abs() <= 1e-9 * a.percent().abs().max(1.0));
    }

    #[test]
    fn perfect_strong_scaling_scores_100(base in energy_delay(), n in 1_usize..64) {
        let scaled = EnergyDelay::new(base.energy(), base.delay() / n as f64);
        let se = EdpScalingEfficiency::compute(base, scaled, n).unwrap();
        prop_assert!((se.percent() - 100.0).abs() < 1e-6);
    }
}
