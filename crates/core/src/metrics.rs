//! Scaling-efficiency metrics: parallel efficiency, EDP, ED²P, and the
//! paper's EDPSE / EDⁱPSE family (§III, Eqs. 1–3).
//!
//! EDPSE measures the fraction of *linear EDP scaling* a design realizes:
//! a design that gets an N× speedup at constant energy scores 100%;
//! sub-linear speedup or energy growth both reduce it. Super-linear
//! speedups can push it above 100% (footnote 1 of the paper).

use common::units::{Energy, Time};
use std::error::Error;
use std::fmt;

/// Errors from metric computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// The scaled-resource count `N` must be at least 1.
    ZeroResources,
    /// A delay was zero or negative, making EDP degenerate.
    NonPositiveDelay,
    /// An energy was negative.
    NegativeEnergy,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::ZeroResources => write!(f, "resource count must be at least 1"),
            MetricError::NonPositiveDelay => write!(f, "delay must be positive"),
            MetricError::NegativeEnergy => write!(f, "energy must be non-negative"),
        }
    }
}

impl Error for MetricError {}

/// An (energy, delay) pair for one design point, from which all combined
/// metrics derive.
///
/// # Examples
///
/// ```
/// use gpujoule::EnergyDelay;
/// use common::units::{Energy, Time};
///
/// let ed = EnergyDelay::new(Energy::from_joules(100.0), Time::from_secs(2.0));
/// assert_eq!(ed.edp(), 200.0);
/// assert_eq!(ed.edip(2), 400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelay {
    energy: Energy,
    delay: Time,
}

impl EnergyDelay {
    /// Creates a design point.
    ///
    /// # Panics
    ///
    /// Panics if the energy is negative or the delay non-positive; use
    /// [`EnergyDelay::try_new`] for fallible construction.
    pub fn new(energy: Energy, delay: Time) -> Self {
        Self::try_new(energy, delay).expect("invalid EnergyDelay")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::NegativeEnergy`] or
    /// [`MetricError::NonPositiveDelay`] for out-of-domain values.
    pub fn try_new(energy: Energy, delay: Time) -> Result<Self, MetricError> {
        if energy.joules() < 0.0 {
            return Err(MetricError::NegativeEnergy);
        }
        if !delay.is_positive() {
            return Err(MetricError::NonPositiveDelay);
        }
        Ok(EnergyDelay { energy, delay })
    }

    /// The energy of this design point.
    pub fn energy(self) -> Energy {
        self.energy
    }

    /// The delay (time to solution) of this design point.
    pub fn delay(self) -> Time {
        self.delay
    }

    /// Energy-delay product, in joule-seconds.
    pub fn edp(self) -> f64 {
        self.energy.joules() * self.delay.secs()
    }

    /// Generalized EDⁱP: energy × delayⁱ (i = 1 is EDP, i = 2 is ED²P).
    pub fn edip(self, i: u32) -> f64 {
        self.energy.joules() * self.delay.secs().powi(i as i32)
    }

    /// Speedup of this point relative to `baseline` (baseline delay over
    /// this delay).
    pub fn speedup_over(self, baseline: EnergyDelay) -> f64 {
        baseline.delay.secs() / self.delay.secs()
    }

    /// Energy of this point normalized to `baseline`.
    pub fn energy_ratio_over(self, baseline: EnergyDelay) -> f64 {
        self.energy.joules() / baseline.energy.joules()
    }

    /// Average power over the run.
    pub fn average_power(self) -> common::units::Power {
        self.energy / self.delay
    }

    /// Performance-per-watt of this point relative to `baseline` — the
    /// other industry metric §V-D mentions. For a fixed problem size this
    /// reduces to the inverse energy ratio: perf/W = (work/delay) /
    /// (energy/delay) = work/energy.
    pub fn perf_per_watt_over(self, baseline: EnergyDelay) -> f64 {
        baseline.energy.joules() / self.energy.joules()
    }
}

impl fmt::Display for EnergyDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}", self.energy, self.delay)
    }
}

/// Parallel efficiency (Eq. 1): `t1 × 100 / (N × tN)`, in percent.
///
/// # Errors
///
/// Returns an error if `n` is zero or either time is non-positive.
///
/// # Examples
///
/// ```
/// use gpujoule::parallel_efficiency;
/// use common::units::Time;
///
/// let pe = parallel_efficiency(Time::from_secs(10.0), Time::from_secs(2.5), 4).unwrap();
/// assert!((pe - 100.0).abs() < 1e-12);
/// ```
pub fn parallel_efficiency(t1: Time, tn: Time, n: usize) -> Result<f64, MetricError> {
    if n == 0 {
        return Err(MetricError::ZeroResources);
    }
    if !t1.is_positive() || !tn.is_positive() {
        return Err(MetricError::NonPositiveDelay);
    }
    Ok(t1.secs() * 100.0 / (n as f64 * tn.secs()))
}

/// EDP Scaling Efficiency (Eq. 2): the fraction of linear EDP scaling
/// realized by a design with `n` replicated resources, in percent.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct EdpScalingEfficiency(f64);

impl EdpScalingEfficiency {
    /// Computes `EDP1 × 100 / (N × EDPN)`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::ZeroResources`] if `n` is zero.
    pub fn compute(
        baseline: EnergyDelay,
        scaled: EnergyDelay,
        n: usize,
    ) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::ZeroResources);
        }
        Ok(EdpScalingEfficiency(
            baseline.edp() * 100.0 / (n as f64 * scaled.edp()),
        ))
    }

    /// The efficiency in percent (100 = perfect linear scaling).
    pub fn percent(self) -> f64 {
        self.0
    }

    /// `true` if the design clears the paper's suggested 50% production
    /// threshold.
    pub fn meets_threshold(self) -> bool {
        self.0 >= 50.0
    }
}

impl fmt::Display for EdpScalingEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0)
    }
}

/// Generalized EDⁱP Scaling Efficiency (Eq. 3):
/// `EDiP1 × 100 / (Nⁱ × EDiPN)`.
///
/// `i = 1` reduces to [`EdpScalingEfficiency`]; `i = 2` weighs delay
/// quadratically (ED²P), for designs where performance matters more.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct EdipScalingEfficiency {
    percent: f64,
    exponent: u32,
}

impl EdipScalingEfficiency {
    /// Computes the EDⁱPSE for delay exponent `i`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::ZeroResources`] if `n` is zero.
    pub fn compute(
        baseline: EnergyDelay,
        scaled: EnergyDelay,
        n: usize,
        i: u32,
    ) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::ZeroResources);
        }
        let percent = baseline.edip(i) * 100.0 / ((n as f64).powi(i as i32) * scaled.edip(i));
        Ok(EdipScalingEfficiency {
            percent,
            exponent: i,
        })
    }

    /// The efficiency in percent.
    pub fn percent(self) -> f64 {
        self.percent
    }

    /// The delay exponent `i`.
    pub fn exponent(self) -> u32 {
        self.exponent
    }
}

impl fmt::Display for EdipScalingEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ED{}PSE {:.1}%", self.exponent, self.percent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ed(e: f64, t: f64) -> EnergyDelay {
        EnergyDelay::new(Energy::from_joules(e), Time::from_secs(t))
    }

    #[test]
    fn edp_and_edip() {
        let p = ed(10.0, 3.0);
        assert_eq!(p.edp(), 30.0);
        assert_eq!(p.edip(1), 30.0);
        assert_eq!(p.edip(2), 90.0);
        assert_eq!(p.edip(0), 10.0);
    }

    #[test]
    fn ideal_strong_scaling_scores_100() {
        // N=8: delay /8, energy constant.
        let base = ed(100.0, 8.0);
        let scaled = ed(100.0, 1.0);
        let se = EdpScalingEfficiency::compute(base, scaled, 8).unwrap();
        assert!((se.percent() - 100.0).abs() < 1e-9);
        assert!(se.meets_threshold());
    }

    #[test]
    fn n_equals_one_identity() {
        let base = ed(42.0, 7.0);
        let se = EdpScalingEfficiency::compute(base, base, 1).unwrap();
        assert!((se.percent() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn energy_growth_reduces_edpse() {
        let base = ed(100.0, 8.0);
        // Perfect speedup but 2x the energy -> 50%.
        let scaled = ed(200.0, 1.0);
        let se = EdpScalingEfficiency::compute(base, scaled, 8).unwrap();
        assert!((se.percent() - 50.0).abs() < 1e-9);
        assert!(se.meets_threshold());
    }

    #[test]
    fn sublinear_speedup_reduces_edpse() {
        let base = ed(100.0, 8.0);
        // Only 4x speedup at constant energy on 8 resources -> 50%.
        let scaled = ed(100.0, 2.0);
        let se = EdpScalingEfficiency::compute(base, scaled, 8).unwrap();
        assert!((se.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn superlinear_speedup_can_exceed_100() {
        let base = ed(100.0, 8.0);
        // 10x speedup on 8 resources at constant energy.
        let scaled = ed(100.0, 0.8);
        let se = EdpScalingEfficiency::compute(base, scaled, 8).unwrap();
        assert!(se.percent() > 100.0);
    }

    #[test]
    fn edipse_reduces_to_edpse_at_i1() {
        let base = ed(100.0, 8.0);
        let scaled = ed(130.0, 1.3);
        let se1 = EdpScalingEfficiency::compute(base, scaled, 8).unwrap();
        let sei = EdipScalingEfficiency::compute(base, scaled, 8, 1).unwrap();
        assert!((se1.percent() - sei.percent()).abs() < 1e-12);
        assert_eq!(sei.exponent(), 1);
    }

    #[test]
    fn ed2pse_weighs_delay_quadratically() {
        let base = ed(100.0, 8.0);
        // Perfect speedup, 2x energy: EDPSE 50%, ED2PSE also 50%
        let scaled = ed(200.0, 1.0);
        let se2 = EdipScalingEfficiency::compute(base, scaled, 8, 2).unwrap();
        assert!((se2.percent() - 50.0).abs() < 1e-9);
        // Half speedup, constant energy: EDPSE 50%, ED2PSE 25%.
        let slow = ed(100.0, 2.0);
        let se2 = EdipScalingEfficiency::compute(base, slow, 8, 2).unwrap();
        assert!((se2.percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_efficiency_matches_eq1() {
        let pe = parallel_efficiency(Time::from_secs(16.0), Time::from_secs(2.0), 8).unwrap();
        assert!((pe - 100.0).abs() < 1e-12);
        let pe = parallel_efficiency(Time::from_secs(16.0), Time::from_secs(4.0), 8).unwrap();
        assert!((pe - 50.0).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            parallel_efficiency(Time::from_secs(1.0), Time::from_secs(1.0), 0),
            Err(MetricError::ZeroResources)
        );
        assert_eq!(
            parallel_efficiency(Time::ZERO, Time::from_secs(1.0), 2),
            Err(MetricError::NonPositiveDelay)
        );
        assert_eq!(
            EnergyDelay::try_new(Energy::from_joules(-1.0), Time::from_secs(1.0)),
            Err(MetricError::NegativeEnergy)
        );
        assert_eq!(
            EnergyDelay::try_new(Energy::ZERO, Time::ZERO),
            Err(MetricError::NonPositiveDelay)
        );
        assert_eq!(
            EdpScalingEfficiency::compute(ed(1.0, 1.0), ed(1.0, 1.0), 0),
            Err(MetricError::ZeroResources)
        );
        // Errors format.
        assert!(MetricError::ZeroResources
            .to_string()
            .contains("at least 1"));
    }

    #[test]
    fn speedup_and_energy_ratio() {
        let base = ed(100.0, 10.0);
        let scaled = ed(150.0, 2.0);
        assert!((scaled.speedup_over(base) - 5.0).abs() < 1e-12);
        assert!((scaled.energy_ratio_over(base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn perf_per_watt_is_inverse_energy_for_fixed_work() {
        let base = ed(100.0, 10.0);
        let scaled = ed(150.0, 2.0);
        assert!((scaled.perf_per_watt_over(base) - 100.0 / 150.0).abs() < 1e-12);
        // Better perf/W exactly when energy shrinks, regardless of delay.
        let cheap = ed(50.0, 9.0);
        assert!(cheap.perf_per_watt_over(base) > 1.0);
        assert!((base.average_power().watts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let se = EdpScalingEfficiency::compute(ed(100.0, 8.0), ed(100.0, 1.0), 8).unwrap();
        assert_eq!(se.to_string(), "100.0%");
        let se2 = EdipScalingEfficiency::compute(ed(100.0, 8.0), ed(100.0, 1.0), 8, 2).unwrap();
        assert!(se2.to_string().starts_with("ED2PSE"));
    }
}
