//! Multi-GPM energy-model configuration (§V-A2 of the paper).
//!
//! Scaling a K40-class GPM to an N-module GPU changes three things in the
//! energy model:
//!
//! 1. **DRAM technology** — future GPMs pair with HBM at 21.1 pJ/bit
//!    (DRAM → L2) instead of the K40's GDDR5 at 30.55 pJ/bit.
//! 2. **Inter-GPM links** — on-package signaling costs 0.54 pJ/bit, on-board
//!    links 10 pJ/bit, and an optional on-board switch adds another
//!    10 pJ/bit per traversal.
//! 3. **Constant power** — each GPM brings its own regulators/fans/I-O. On
//!    board, this replicates linearly; on package, a fraction can be shared
//!    (*constant energy amortization*, 50% in the paper's baseline).

use crate::epi::{EpiTable, EptTable};
use crate::model::{EnergyModel, EnergyModelBuilder, K40_CONST_POWER_WATTS};
use common::units::{EnergyPerBit, Power};
use std::fmt;

/// Published per-bit cost of on-package signaling (Poulton et al., 28 nm
/// ground-referenced single-ended link).
pub const ON_PACKAGE_PJ_PER_BIT: f64 = 0.54;

/// Estimated per-bit cost of on-board links (NVLink-class).
pub const ON_BOARD_PJ_PER_BIT: f64 = 10.0;

/// Additional per-bit cost of traversing an on-board high-radix switch.
pub const SWITCH_PJ_PER_BIT: f64 = 10.0;

/// Where the GPMs of a multi-module GPU are integrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntegrationDomain {
    /// Discrete GPMs on a PCB: cheap to build large, expensive links
    /// (10 pJ/bit), no constant-energy sharing.
    OnBoard,
    /// GPMs on a single package: 0.54 pJ/bit links and shared
    /// power-delivery/cooling overheads.
    OnPackage,
}

impl IntegrationDomain {
    /// Default link energy for this domain.
    pub fn default_link_energy(self) -> EnergyPerBit {
        match self {
            IntegrationDomain::OnBoard => EnergyPerBit::from_pj_per_bit(ON_BOARD_PJ_PER_BIT),
            IntegrationDomain::OnPackage => EnergyPerBit::from_pj_per_bit(ON_PACKAGE_PJ_PER_BIT),
        }
    }

    /// Default constant-energy amortization for this domain (the paper
    /// assumes 50% sharing on package, none on board).
    pub fn default_amortization(self) -> ConstantEnergyAmortization {
        match self {
            IntegrationDomain::OnBoard => ConstantEnergyAmortization::none(),
            IntegrationDomain::OnPackage => ConstantEnergyAmortization::new(0.5),
        }
    }
}

impl fmt::Display for IntegrationDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationDomain::OnBoard => write!(f, "on-board"),
            IntegrationDomain::OnPackage => write!(f, "on-package"),
        }
    }
}

/// The fraction of per-GPM constant energy that is *shared* across GPMs
/// rather than replicated.
///
/// With sharing fraction `a` and `N` GPMs, effective constant power is
/// `P0 × ((1 − a)·N + a)`: the replicated part grows linearly, the shared
/// part is paid once. `a = 0` is on-board replication; the paper's
/// on-package baseline is `a = 0.5`, with a 25% sensitivity point (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ConstantEnergyAmortization(f64);

impl ConstantEnergyAmortization {
    /// No sharing: constant power replicates linearly with GPM count.
    pub fn none() -> Self {
        ConstantEnergyAmortization(0.0)
    }

    /// A sharing fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "amortization fraction must be within [0, 1], got {fraction}"
        );
        ConstantEnergyAmortization(fraction)
    }

    /// The shared fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Effective constant-power multiplier for `n` GPMs.
    pub fn multiplier(self, n: usize) -> f64 {
        (1.0 - self.0) * n as f64 + self.0
    }
}

impl Default for ConstantEnergyAmortization {
    fn default() -> Self {
        Self::none()
    }
}

impl fmt::Display for ConstantEnergyAmortization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}% shared", self.0 * 100.0)
    }
}

/// Everything needed to instantiate the energy model for an N-GPM GPU.
///
/// # Examples
///
/// ```
/// use gpujoule::{IntegrationDomain, MultiGpmEnergyConfig};
///
/// // The paper's baseline 2x-BW on-package configuration at 8 GPMs:
/// let cfg = MultiGpmEnergyConfig::new(8, IntegrationDomain::OnPackage);
/// let model = cfg.build_model();
/// // 50% amortization: 8 GPMs cost 4.5x one GPM's constant power.
/// let expected = 62.0 * 4.5;
/// assert!((model.const_power().watts() - expected).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiGpmEnergyConfig {
    /// Number of GPU modules.
    pub num_gpms: usize,
    /// Integration domain (sets link-cost and amortization defaults).
    pub domain: IntegrationDomain,
    /// Inter-GPM link cost per bit per hop.
    pub link_energy: EnergyPerBit,
    /// Switch traversal cost per bit (zero when no switch is present).
    pub switch_energy: EnergyPerBit,
    /// Constant-energy sharing across GPMs.
    pub amortization: ConstantEnergyAmortization,
    /// Per-GPM constant power before replication.
    pub const_power_per_gpm: Power,
}

impl MultiGpmEnergyConfig {
    /// A configuration with the paper's defaults for `domain`: HBM DRAM,
    /// the domain's link energy and amortization, no switch.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpms` is zero.
    pub fn new(num_gpms: usize, domain: IntegrationDomain) -> Self {
        assert!(num_gpms > 0, "a GPU needs at least one GPM");
        MultiGpmEnergyConfig {
            num_gpms,
            domain,
            link_energy: domain.default_link_energy(),
            switch_energy: EnergyPerBit::ZERO,
            amortization: domain.default_amortization(),
            const_power_per_gpm: Power::from_watts(K40_CONST_POWER_WATTS),
        }
    }

    /// Overrides the link energy (the §V-C interconnect-energy point study
    /// multiplies it by 2× and 4×).
    pub fn with_link_energy(mut self, e: EnergyPerBit) -> Self {
        self.link_energy = e;
        self
    }

    /// Adds an on-board switch at the default 10 pJ/bit traversal cost.
    pub fn with_switch(mut self) -> Self {
        self.switch_energy = EnergyPerBit::from_pj_per_bit(SWITCH_PJ_PER_BIT);
        self
    }

    /// Overrides the amortization (the §V-C sensitivity study uses 0%,
    /// 25%, and 50%).
    pub fn with_amortization(mut self, a: ConstantEnergyAmortization) -> Self {
        self.amortization = a;
        self
    }

    /// Overrides per-GPM constant power.
    pub fn with_const_power_per_gpm(mut self, p: Power) -> Self {
        self.const_power_per_gpm = p;
        self
    }

    /// Effective constant power of the whole GPU.
    pub fn total_const_power(&self) -> Power {
        self.const_power_per_gpm * self.amortization.multiplier(self.num_gpms)
    }

    /// Builds the energy model for this configuration using the K40 EPI
    /// table and the HBM-adjusted EPT table.
    pub fn build_model(&self) -> EnergyModel {
        self.build_model_with_tables(EpiTable::k40(), EptTable::k40_with_hbm())
    }

    /// Builds the energy model with custom fitted tables (e.g. tables
    /// re-derived by the `microbench` pipeline).
    pub fn build_model_with_tables(&self, epi: EpiTable, ept: EptTable) -> EnergyModel {
        EnergyModelBuilder::new()
            .epi_table(epi)
            .ept_table(ept)
            .const_power(self.total_const_power())
            .link_per_bit(self.link_energy)
            .switch_per_bit(self.switch_energy)
            .build()
    }
}

impl fmt::Display for MultiGpmEnergyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-GPM {} ({}, {})",
            self.num_gpms, self.domain, self.link_energy, self.amortization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_defaults_match_paper() {
        assert!(
            (IntegrationDomain::OnBoard
                .default_link_energy()
                .pj_per_bit()
                - 10.0)
                .abs()
                < 1e-12
        );
        assert!(
            (IntegrationDomain::OnPackage
                .default_link_energy()
                .pj_per_bit()
                - 0.54)
                .abs()
                < 1e-12
        );
        assert_eq!(
            IntegrationDomain::OnBoard.default_amortization().fraction(),
            0.0
        );
        assert_eq!(
            IntegrationDomain::OnPackage
                .default_amortization()
                .fraction(),
            0.5
        );
    }

    #[test]
    fn amortization_multiplier() {
        let none = ConstantEnergyAmortization::none();
        assert_eq!(none.multiplier(32), 32.0);
        let half = ConstantEnergyAmortization::new(0.5);
        assert_eq!(half.multiplier(32), 16.5);
        assert_eq!(half.multiplier(1), 1.0);
        let full = ConstantEnergyAmortization::new(1.0);
        assert_eq!(full.multiplier(32), 1.0);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn amortization_rejects_out_of_range() {
        let _ = ConstantEnergyAmortization::new(1.5);
    }

    #[test]
    fn amortization_saves_energy_at_scale() {
        // Paper §V-C: at 32 GPMs, 50% amortization vs none should cut
        // constant power roughly in half.
        let board = MultiGpmEnergyConfig::new(32, IntegrationDomain::OnBoard);
        let pkg = MultiGpmEnergyConfig::new(32, IntegrationDomain::OnPackage);
        let ratio = pkg.total_const_power().watts() / board.total_const_power().watts();
        assert!((ratio - 16.5 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn build_model_uses_hbm_and_domain_link() {
        let cfg = MultiGpmEnergyConfig::new(4, IntegrationDomain::OnPackage);
        let model = cfg.build_model();
        assert!((model.link_per_bit().pj_per_bit() - 0.54).abs() < 1e-12);
        assert_eq!(model.switch_per_bit(), EnergyPerBit::ZERO);
        assert!(
            (model
                .ept_table()
                .per_bit(isa::Transaction::DramToL2)
                .pj_per_bit()
                - 21.1)
                .abs()
                < 0.01
        );
    }

    #[test]
    fn switch_adds_traversal_cost() {
        let cfg = MultiGpmEnergyConfig::new(8, IntegrationDomain::OnBoard).with_switch();
        let model = cfg.build_model();
        assert!((model.switch_per_bit().pj_per_bit() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn link_energy_override() {
        // 4x the on-board baseline, as in the §V-C point study.
        let cfg = MultiGpmEnergyConfig::new(32, IntegrationDomain::OnBoard)
            .with_link_energy(EnergyPerBit::from_pj_per_bit(40.0));
        assert!((cfg.build_model().link_per_bit().pj_per_bit() - 40.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one GPM")]
    fn zero_gpms_panics() {
        let _ = MultiGpmEnergyConfig::new(0, IntegrationDomain::OnBoard);
    }

    #[test]
    fn display_is_informative() {
        let cfg = MultiGpmEnergyConfig::new(16, IntegrationDomain::OnPackage);
        let s = cfg.to_string();
        assert!(s.contains("16-GPM"));
        assert!(s.contains("on-package"));
        assert!(s.contains("50% shared"));
    }
}
