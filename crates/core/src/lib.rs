#![warn(missing_docs)]

//! **GPUJoule** — a top-down, instruction-based GPU energy-estimation
//! framework, plus the **EDPSE** scaling-efficiency metric.
//!
//! This crate is the primary contribution of *"Understanding the Future of
//! Energy Efficiency in Multi-Module GPUs"* (HPCA 2019). The model rests on
//! one insight: total GPU energy is the sum of the energy of every
//! instruction executed, plus the data movement needed to feed those
//! instructions, plus constant overheads (Eq. 4):
//!
//! ```text
//! E_GPU = Σc EPI_c·IC_c  +  Σm EPT_m·TC_m  +  EPStall·stalls  +  ConstPower·T
//! ```
//!
//! Being decoupled from microarchitectural detail, the same model scales
//! from a single Tesla K40 (on which it is fitted and validated to ~10%)
//! to hypothetical 32-module NUMA GPUs, where per-bit link and DRAM costs
//! and constant-energy amortization are layered on top (§V-A2).
//!
//! # Quickstart
//!
//! ```
//! use gpujoule::EnergyModel;
//! use isa::{EventCounts, Opcode, Transaction};
//! use common::units::Time;
//!
//! let model = EnergyModel::k40();
//! let mut ev = EventCounts::new();
//! ev.instrs.add(Opcode::FFma32, 1_000_000);
//! ev.txns.add(Transaction::DramToL2, 10_000);
//! ev.elapsed = Time::from_micros(50.0);
//! let breakdown = model.estimate(&ev);
//! assert!(breakdown.total().joules() > 0.0);
//! ```

pub mod breakdown;
pub mod epi;
pub mod gating;
pub mod metrics;
pub mod model;
pub mod multigpm;
pub mod validation;

pub use breakdown::{EnergyBreakdown, EnergyComponent};
pub use epi::{EpiTable, EptTable};
pub use gating::PowerGating;
pub use metrics::{
    parallel_efficiency, EdipScalingEfficiency, EdpScalingEfficiency, EnergyDelay, MetricError,
};
pub use model::{EnergyModel, EnergyModelBuilder};
pub use multigpm::{ConstantEnergyAmortization, IntegrationDomain, MultiGpmEnergyConfig};
pub use validation::{ValidationItem, ValidationReport};
