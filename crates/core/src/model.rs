//! The GPUJoule energy model — Eq. 4 of the paper.
//!
//! [`EnergyModel`] turns an [`EventCounts`] record (produced by the
//! performance simulator or the virtual silicon backend) into an
//! [`EnergyBreakdown`]:
//!
//! ```text
//! E = Σc EPI_c·IC_c + Σm EPT_m·TC_m + EPStall·stalls + ConstPower·T
//! ```
//!
//! Multi-GPM designs extend this with per-bit inter-module link and switch
//! costs and replicated (possibly amortized) constant power; use
//! [`EnergyModelBuilder`] or [`crate::MultiGpmEnergyConfig::build_model`].

use crate::breakdown::{EnergyBreakdown, EnergyComponent};
use crate::epi::{EpiTable, EptTable};
use common::units::{Energy, EnergyPerBit, Power};
use isa::{EventCounts, Transaction};

/// Default constant (idle) power of the modeled Tesla K40 class GPM:
/// voltage regulators, power delivery, host I/O, leakage (Eq. 4's
/// `Const_Power` term).
pub const K40_CONST_POWER_WATTS: f64 = 62.0;

/// Default energy per lane-stall: the dynamic energy an SM burns in an
/// issue slot that stalls waiting on memory.
pub const K40_EP_STALL_NANOJOULES: f64 = 0.30;

/// A fitted, ready-to-evaluate instance of the GPUJoule model.
///
/// # Examples
///
/// ```
/// use gpujoule::EnergyModel;
/// use isa::{EventCounts, Opcode};
/// use common::units::Time;
///
/// let model = EnergyModel::k40();
/// let mut ev = EventCounts::new();
/// ev.instrs.add(Opcode::FAdd32, 32_000);
/// ev.elapsed = Time::from_micros(10.0);
/// let b = model.estimate(&ev);
/// // 32k thread-instructions at 0.06 nJ plus 10 us of constant power.
/// let expected = 32_000.0 * 0.06e-9 + 62.0 * 10e-6;
/// assert!((b.total().joules() - expected).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    epi: EpiTable,
    ept: EptTable,
    ep_stall: Energy,
    const_power: Power,
    link_per_bit: EnergyPerBit,
    switch_per_bit: EnergyPerBit,
}

impl EnergyModel {
    /// The model fitted to the Tesla K40 (Table Ib values, GDDR5 DRAM
    /// cost), as validated against silicon in §IV-B.
    pub fn k40() -> Self {
        EnergyModelBuilder::new()
            .epi_table(EpiTable::k40())
            .ept_table(EptTable::k40())
            .build()
    }

    /// Starts configuring a model.
    pub fn builder() -> EnergyModelBuilder {
        EnergyModelBuilder::new()
    }

    /// The fitted per-instruction table.
    pub fn epi_table(&self) -> &EpiTable {
        &self.epi
    }

    /// The fitted per-transaction table.
    pub fn ept_table(&self) -> &EptTable {
        &self.ept
    }

    /// The constant-power term.
    pub fn const_power(&self) -> Power {
        self.const_power
    }

    /// The per-lane-stall energy term.
    pub fn ep_stall(&self) -> Energy {
        self.ep_stall
    }

    /// The inter-GPM link cost per bit.
    pub fn link_per_bit(&self) -> EnergyPerBit {
        self.link_per_bit
    }

    /// The switch traversal cost per bit.
    pub fn switch_per_bit(&self) -> EnergyPerBit {
        self.switch_per_bit
    }

    /// Evaluates Eq. 4 on one run's event counts, returning the
    /// per-component breakdown.
    pub fn estimate(&self, ev: &EventCounts) -> EnergyBreakdown {
        let mut out = EnergyBreakdown::new();

        // Σ EPI_c × IC_c — "SM Pipeline (Busy)".
        let mut busy = Energy::ZERO;
        for (op, n) in ev.instrs.iter() {
            busy += self.epi.get(op) * n as f64;
        }
        out.add(EnergyComponent::PipelineBusy, busy);

        // EPStall × stalls — "SM Pipeline (Idle)".
        out.add(
            EnergyComponent::PipelineIdle,
            self.ep_stall * ev.stall_cycles as f64,
        );

        // Σ EPT_m × TC_m per hierarchy level.
        let txn = |t: Transaction| self.ept.get(t) * ev.txns.get(t) as f64;
        out.add(EnergyComponent::SharedToReg, txn(Transaction::SharedToReg));
        out.add(EnergyComponent::L1ToReg, txn(Transaction::L1ToReg));
        out.add(EnergyComponent::L2ToL1, txn(Transaction::L2ToL1));
        out.add(EnergyComponent::DramToL2, txn(Transaction::DramToL2));

        // Inter-module traffic is charged per bit end-to-end, plus the
        // switch traversal premium when a switch is present. The paper's
        // §V-C sensitivity result (4x link energy moves EDPSE by <1%)
        // implies this per-transfer accounting rather than per-hop.
        let inter = self.link_per_bit.energy_for(ev.inter_gpm_bytes)
            + self.switch_per_bit.energy_for(ev.switch_bytes);
        out.add(EnergyComponent::InterModule, inter);

        // ConstPower × Execution_Time.
        out.add(
            EnergyComponent::ConstantOverhead,
            self.const_power * ev.elapsed,
        );

        out
    }

    /// Convenience: the total of [`EnergyModel::estimate`].
    pub fn estimate_total(&self, ev: &EventCounts) -> Energy {
        self.estimate(ev).total()
    }

    /// Average power over the run (total energy over elapsed time).
    ///
    /// Returns `None` for a zero-length run.
    pub fn estimate_power(&self, ev: &EventCounts) -> Option<Power> {
        if ev.elapsed.is_positive() {
            Some(self.estimate_total(ev) / ev.elapsed)
        } else {
            None
        }
    }
}

/// Builder for [`EnergyModel`].
///
/// Starts from the K40 defaults; every term can be overridden. The
/// multi-GPM experiments override constant power (replication and
/// amortization), DRAM cost (HBM), and the link/switch per-bit costs.
#[derive(Debug, Clone)]
pub struct EnergyModelBuilder {
    epi: EpiTable,
    ept: EptTable,
    ep_stall: Energy,
    const_power: Power,
    link_per_bit: EnergyPerBit,
    switch_per_bit: EnergyPerBit,
}

impl Default for EnergyModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyModelBuilder {
    /// A builder primed with the K40 defaults.
    pub fn new() -> Self {
        EnergyModelBuilder {
            epi: EpiTable::k40(),
            ept: EptTable::k40(),
            ep_stall: Energy::from_nanojoules(K40_EP_STALL_NANOJOULES),
            const_power: Power::from_watts(K40_CONST_POWER_WATTS),
            link_per_bit: EnergyPerBit::ZERO,
            switch_per_bit: EnergyPerBit::ZERO,
        }
    }

    /// Sets the per-instruction table.
    pub fn epi_table(mut self, t: EpiTable) -> Self {
        self.epi = t;
        self
    }

    /// Sets the per-transaction table.
    pub fn ept_table(mut self, t: EptTable) -> Self {
        self.ept = t;
        self
    }

    /// Sets the per-lane-stall energy.
    pub fn ep_stall(mut self, e: Energy) -> Self {
        self.ep_stall = e;
        self
    }

    /// Sets the constant-power term.
    pub fn const_power(mut self, p: Power) -> Self {
        self.const_power = p;
        self
    }

    /// Sets the inter-GPM link cost per bit (per traversed hop).
    pub fn link_per_bit(mut self, e: EnergyPerBit) -> Self {
        self.link_per_bit = e;
        self
    }

    /// Sets the switch traversal cost per bit.
    pub fn switch_per_bit(mut self, e: EnergyPerBit) -> Self {
        self.switch_per_bit = e;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> EnergyModel {
        EnergyModel {
            epi: self.epi,
            ept: self.ept,
            ep_stall: self.ep_stall,
            const_power: self.const_power,
            link_per_bit: self.link_per_bit,
            switch_per_bit: self.switch_per_bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::units::{Bytes, Time};
    use isa::Opcode;

    fn sample_events() -> EventCounts {
        let mut ev = EventCounts::new();
        ev.instrs.add(Opcode::FFma32, 1_000);
        ev.instrs.add(Opcode::IAdd32, 500);
        ev.txns.add(Transaction::L1ToReg, 100);
        ev.txns.add(Transaction::L2ToL1, 40);
        ev.txns.add(Transaction::DramToL2, 10);
        ev.stall_cycles = 200;
        ev.elapsed = Time::from_micros(3.0);
        ev
    }

    #[test]
    fn eq4_terms_add_up() {
        let model = EnergyModel::k40();
        let ev = sample_events();
        let b = model.estimate(&ev);

        let busy = 1_000.0 * 0.05e-9 + 500.0 * 0.07e-9;
        let idle = 200.0 * K40_EP_STALL_NANOJOULES * 1e-9;
        let l1 = 100.0 * 5.99e-9;
        let l2 = 40.0 * 3.96e-9;
        let dram = 10.0 * 7.82e-9;
        let constant = K40_CONST_POWER_WATTS * 3e-6;

        assert!((b.get(EnergyComponent::PipelineBusy).joules() - busy).abs() < 1e-15);
        assert!((b.get(EnergyComponent::PipelineIdle).joules() - idle).abs() < 1e-15);
        assert!((b.get(EnergyComponent::L1ToReg).joules() - l1).abs() < 1e-15);
        assert!((b.get(EnergyComponent::L2ToL1).joules() - l2).abs() < 1e-15);
        assert!((b.get(EnergyComponent::DramToL2).joules() - dram).abs() < 1e-15);
        assert!((b.get(EnergyComponent::ConstantOverhead).joules() - constant).abs() < 1e-12);
        assert!((b.total().joules() - (busy + idle + l1 + l2 + dram + constant)).abs() < 1e-12);
    }

    #[test]
    fn inter_module_charges_per_bit_per_hop() {
        let model = EnergyModel::builder()
            .link_per_bit(EnergyPerBit::from_pj_per_bit(10.0))
            .switch_per_bit(EnergyPerBit::from_pj_per_bit(10.0))
            .const_power(Power::ZERO)
            .build();
        let mut ev = EventCounts::new();
        ev.inter_gpm_bytes = Bytes::new(1000);
        ev.switch_bytes = Bytes::new(500);
        let b = model.estimate(&ev);
        let expected = 10.0e-12 * 8.0 * 1500.0;
        assert!((b.get(EnergyComponent::InterModule).joules() - expected).abs() < 1e-15);
        assert_eq!(b.total(), b.get(EnergyComponent::InterModule));
    }

    #[test]
    fn zero_events_cost_nothing() {
        let model = EnergyModel::k40();
        let b = model.estimate(&EventCounts::new());
        assert_eq!(b.total(), Energy::ZERO);
    }

    #[test]
    fn estimate_is_linear_in_counts() {
        let model = EnergyModel::k40();
        let ev = sample_events();
        let mut doubled = ev.clone();
        doubled.merge_sequential(&ev);
        let e1 = model.estimate_total(&ev);
        let e2 = model.estimate_total(&doubled);
        assert!((e2.joules() - 2.0 * e1.joules()).abs() < 1e-15);
    }

    #[test]
    fn estimate_power_requires_positive_time() {
        let model = EnergyModel::k40();
        let mut ev = EventCounts::new();
        assert_eq!(model.estimate_power(&ev), None);
        ev.elapsed = Time::from_micros(1.0);
        let p = model.estimate_power(&ev).unwrap();
        // Only constant power contributes here.
        assert!((p.watts() - K40_CONST_POWER_WATTS).abs() < 1e-9);
    }

    #[test]
    fn builder_overrides_take_effect() {
        let model = EnergyModel::builder()
            .const_power(Power::from_watts(10.0))
            .ep_stall(Energy::from_nanojoules(1.0))
            .build();
        assert_eq!(model.const_power(), Power::from_watts(10.0));
        assert_eq!(model.ep_stall(), Energy::from_nanojoules(1.0));
        let mut ev = EventCounts::new();
        ev.stall_cycles = 5;
        ev.elapsed = Time::from_secs(1.0);
        let b = model.estimate(&ev);
        assert!((b.get(EnergyComponent::ConstantOverhead).joules() - 10.0).abs() < 1e-12);
        assert!((b.get(EnergyComponent::PipelineIdle).nanojoules() - 5.0).abs() < 1e-9);
    }
}
