//! Energy-Per-Instruction and Energy-Per-Transaction tables.
//!
//! These are GPUJoule's fitted parameters: one energy value per PTX opcode
//! and one per memory-hierarchy transaction class. [`EpiTable::k40`] and
//! [`EptTable::k40`] carry the values the paper measured on a Tesla K40
//! (Table Ib); the `microbench` crate re-derives equivalent tables from the
//! virtual silicon, which is the paper's actual workflow.

use common::units::{Energy, EnergyPerBit};
use isa::{Opcode, Transaction};
use std::fmt;

/// Energy-per-instruction table: one [`Energy`] per [`Opcode`].
///
/// Instruction counts are *thread-level* (a fully active warp instruction
/// contributes 32), matching how Eq. 5 divides measured energy by the
/// number of executed instructions.
///
/// # Examples
///
/// ```
/// use gpujoule::EpiTable;
/// use isa::Opcode;
///
/// let t = EpiTable::k40();
/// // Table Ib: a 32-bit FMA costs 0.05 nJ on the K40.
/// assert!((t.get(Opcode::FFma32).nanojoules() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EpiTable {
    values: [Energy; Opcode::COUNT],
}

impl Default for EpiTable {
    fn default() -> Self {
        EpiTable {
            values: [Energy::ZERO; Opcode::COUNT],
        }
    }
}

impl EpiTable {
    /// An all-zero table (useful as a fitting starting point).
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// The table the paper measured on the NVIDIA Tesla K40 (Table Ib),
    /// with small derived defaults for the control-path opcodes the table
    /// does not list (below the measurement floor).
    pub fn k40() -> Self {
        let mut t = Self::zeroed();
        let nj = Energy::from_nanojoules;
        t.set(Opcode::FAdd32, nj(0.06));
        t.set(Opcode::FMul32, nj(0.05));
        t.set(Opcode::FFma32, nj(0.05));
        t.set(Opcode::IAdd32, nj(0.07));
        t.set(Opcode::ISub32, nj(0.07));
        t.set(Opcode::And32, nj(0.06));
        t.set(Opcode::Or32, nj(0.06));
        t.set(Opcode::Xor32, nj(0.06));
        t.set(Opcode::FSin32, nj(0.10));
        t.set(Opcode::FCos32, nj(0.10));
        t.set(Opcode::IMul32, nj(0.13));
        t.set(Opcode::IMad32, nj(0.15));
        t.set(Opcode::FAdd64, nj(0.15));
        t.set(Opcode::FMul64, nj(0.13));
        t.set(Opcode::FFma64, nj(0.16));
        t.set(Opcode::FSqrt32, nj(0.02));
        t.set(Opcode::FLog232, nj(0.03));
        t.set(Opcode::FExp232, nj(0.08));
        t.set(Opcode::FRcp32, nj(0.31));
        // Control path: below the K40 sensor's measurement floor; modeled
        // with a small derived default.
        t.set(Opcode::Mov32, nj(0.02));
        t.set(Opcode::Setp, nj(0.02));
        t.set(Opcode::Bra, nj(0.02));
        t
    }

    /// EPI for an opcode.
    #[inline]
    pub fn get(&self, op: Opcode) -> Energy {
        self.values[op.index()]
    }

    /// Sets the EPI for an opcode.
    #[inline]
    pub fn set(&mut self, op: Opcode, epi: Energy) {
        self.values[op.index()] = epi;
    }

    /// Iterates over all `(opcode, EPI)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, Energy)> + '_ {
        Opcode::ALL.iter().map(move |&op| (op, self.get(op)))
    }

    /// Largest relative difference against another table, over opcodes
    /// whose reference value is non-zero. Used by fitting tests to check
    /// recovery of planted parameters.
    pub fn max_relative_error(&self, reference: &EpiTable) -> f64 {
        Opcode::ALL
            .iter()
            .filter_map(|&op| {
                let r = reference.get(op).joules();
                if r == 0.0 {
                    None
                } else {
                    Some(((self.get(op).joules() - r) / r).abs())
                }
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for EpiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (op, e) in self.iter() {
            writeln!(f, "{:<18} {:>8.3} nJ", op.mnemonic(), e.nanojoules())?;
        }
        Ok(())
    }
}

/// Energy-per-transaction table: one [`Energy`] per [`Transaction`] class.
///
/// Intra-GPM classes carry measured per-transaction energies (Table Ib);
/// the inter-GPM classes are normally charged per bit by the
/// [`crate::EnergyModel`] instead and default to zero here.
#[derive(Debug, Clone, PartialEq)]
pub struct EptTable {
    values: [Energy; Transaction::COUNT],
}

impl Default for EptTable {
    fn default() -> Self {
        EptTable {
            values: [Energy::ZERO; Transaction::COUNT],
        }
    }
}

impl EptTable {
    /// An all-zero table.
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// The table the paper measured on the Tesla K40 (Table Ib): 128-byte
    /// transactions at the L1 level, 32-byte sectors at the L2/DRAM level
    /// (which is why 3.96 nJ over 32 B is a *higher* per-bit cost than
    /// 5.99 nJ over 128 B).
    pub fn k40() -> Self {
        let mut t = Self::zeroed();
        let nj = Energy::from_nanojoules;
        t.set(Transaction::SharedToReg, nj(5.45));
        t.set(Transaction::L1ToReg, nj(5.99));
        t.set(Transaction::L2ToL1, nj(3.96));
        t.set(Transaction::DramToL2, nj(7.82));
        t
    }

    /// Like [`EptTable::k40`] but with the DRAM-to-L2 cost replaced by the
    /// published HBM figure of 21.1 pJ/bit over a 32-byte sector (§V-A2):
    /// the table used for all future multi-GPM projections.
    pub fn k40_with_hbm() -> Self {
        let mut t = Self::k40();
        let hbm = EnergyPerBit::from_pj_per_bit(21.1);
        t.set(
            Transaction::DramToL2,
            hbm.energy_for(common::units::Bytes::new(
                Transaction::DramToL2.bytes_per_txn(),
            )),
        );
        t
    }

    /// EPT for a transaction class.
    #[inline]
    pub fn get(&self, t: Transaction) -> Energy {
        self.values[t.index()]
    }

    /// Sets the EPT for a transaction class.
    #[inline]
    pub fn set(&mut self, t: Transaction, ept: Energy) {
        self.values[t.index()] = ept;
    }

    /// Iterates over all `(transaction, EPT)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Transaction, Energy)> + '_ {
        Transaction::ALL.iter().map(move |&t| (t, self.get(t)))
    }

    /// Per-bit cost of a transaction class, derived from its EPT and the
    /// class transaction size (the paper's second column in Table Ib).
    pub fn per_bit(&self, t: Transaction) -> EnergyPerBit {
        let bits = t.bytes_per_txn() * 8;
        if bits == 0 {
            EnergyPerBit::ZERO
        } else {
            EnergyPerBit::from_pj_per_bit(self.get(t).picojoules() / bits as f64)
        }
    }

    /// Largest relative difference against another table over the intra-GPM
    /// classes with non-zero reference values.
    pub fn max_relative_error(&self, reference: &EptTable) -> f64 {
        Transaction::ALL
            .iter()
            .filter(|t| t.is_intra_gpm())
            .filter_map(|&t| {
                let r = reference.get(t).joules();
                if r == 0.0 {
                    None
                } else {
                    Some(((self.get(t).joules() - r) / r).abs())
                }
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for EptTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in self.iter() {
            writeln!(
                f,
                "{:<18} {:>8.3} nJ ({:>6.2} pJ/bit)",
                t.label(),
                e.nanojoules(),
                self.per_bit(t).pj_per_bit()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_epi_matches_table_1b() {
        let t = EpiTable::k40();
        assert!((t.get(Opcode::FAdd32).nanojoules() - 0.06).abs() < 1e-12);
        assert!((t.get(Opcode::FRcp32).nanojoules() - 0.31).abs() < 1e-12);
        assert!((t.get(Opcode::FFma64).nanojoules() - 0.16).abs() < 1e-12);
        // Every opcode has a positive EPI (control defaults included).
        for (_, e) in t.iter() {
            assert!(e.joules() > 0.0);
        }
    }

    #[test]
    fn k40_ept_matches_table_1b_per_bit_column() {
        let t = EptTable::k40();
        // Table Ib quotes both nJ and pJ/bit; the implied sector sizes are
        // 128 B at the L1 level and 32 B below it.
        assert!((t.per_bit(Transaction::SharedToReg).pj_per_bit() - 5.32).abs() < 0.01);
        assert!((t.per_bit(Transaction::L1ToReg).pj_per_bit() - 5.85).abs() < 0.01);
        assert!((t.per_bit(Transaction::L2ToL1).pj_per_bit() - 15.48).abs() < 0.02);
        assert!((t.per_bit(Transaction::DramToL2).pj_per_bit() - 30.55).abs() < 0.02);
    }

    #[test]
    fn hbm_variant_lowers_dram_cost() {
        let gddr5 = EptTable::k40();
        let hbm = EptTable::k40_with_hbm();
        assert!(hbm.get(Transaction::DramToL2) < gddr5.get(Transaction::DramToL2));
        assert!((hbm.per_bit(Transaction::DramToL2).pj_per_bit() - 21.1).abs() < 0.01);
        // Other classes untouched.
        assert_eq!(
            hbm.get(Transaction::L1ToReg),
            gddr5.get(Transaction::L1ToReg)
        );
    }

    #[test]
    fn dram_per_bit_exceeds_l1_per_bit_by_large_factor() {
        // Paper §IV-B1: data from DRAM costs ~an order of magnitude more
        // than from L1/shared, and ~80x the FMA compute energy per word.
        let t = EptTable::k40();
        let l1 = t.per_bit(Transaction::L1ToReg).pj_per_bit();
        let dram = t.per_bit(Transaction::DramToL2).pj_per_bit();
        assert!(dram / l1 > 4.0);
    }

    #[test]
    fn max_relative_error_detects_perturbation() {
        let reference = EpiTable::k40();
        let mut fitted = reference.clone();
        assert_eq!(fitted.max_relative_error(&reference), 0.0);
        fitted.set(Opcode::FAdd32, Energy::from_nanojoules(0.066));
        let err = fitted.max_relative_error(&reference);
        assert!((err - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ept_error_ignores_inter_gpm_classes() {
        let reference = EptTable::k40();
        let mut fitted = reference.clone();
        fitted.set(Transaction::InterGpmHop, Energy::from_nanojoules(100.0));
        assert_eq!(fitted.max_relative_error(&reference), 0.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = EpiTable::k40().to_string();
        assert_eq!(s.lines().count(), Opcode::COUNT);
        let s = EptTable::k40().to_string();
        assert_eq!(s.lines().count(), Transaction::COUNT);
        assert!(s.contains("DRAM -> L2"));
    }
}
