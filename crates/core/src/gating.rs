//! Idle-aware power gating — the §V-E extension quantified.
//!
//! The paper closes by noting that "system-level techniques that reduce
//! the impact of constant power in the presence of large numbers of GPU
//! modules are going to be crucial", naming clock- and power-gating. This
//! module implements the first-order version: a fraction of the
//! constant-power rail can be gated off while an SM sits idle, so the
//! constant-energy exposure that dominates the 32-GPM configurations
//! (Fig. 7) shrinks with gating effectiveness.

use crate::breakdown::{EnergyBreakdown, EnergyComponent};
use crate::model::EnergyModel;
use isa::EventCounts;
use std::fmt;

/// A power-gating capability.
///
/// With gateable fraction `g` and effectiveness `e`, an idle SM-cycle
/// burns `(1 − g·e)` of its share of constant power. Only the SM-side
/// portion of the constant rail is gateable — regulators, fans and host
/// I/O stay on — which `gateable_fraction` captures.
///
/// # Examples
///
/// ```
/// use gpujoule::{EnergyModel, PowerGating};
/// use isa::EventCounts;
/// use common::units::Time;
///
/// let model = EnergyModel::k40();
/// let mut ev = EventCounts::new();
/// ev.busy_sm_cycles = 25;
/// ev.idle_sm_cycles = 75;
/// ev.elapsed = Time::from_millis(10.0);
///
/// let none = model.estimate(&ev).total();
/// let gated = model.estimate_gated(&ev, &PowerGating::new(1.0)).total();
/// assert!(gated < none);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGating {
    effectiveness: f64,
    gateable_fraction: f64,
}

impl PowerGating {
    /// Default gateable share of the constant rail (SM arrays and their
    /// local distribution; PDN/fans/host-I/O are not gateable).
    pub const DEFAULT_GATEABLE_FRACTION: f64 = 0.6;

    /// Gating with the given effectiveness in `[0, 1]` and the default
    /// gateable fraction.
    ///
    /// # Panics
    ///
    /// Panics if `effectiveness` is outside `[0, 1]`.
    pub fn new(effectiveness: f64) -> Self {
        Self::with_gateable_fraction(effectiveness, Self::DEFAULT_GATEABLE_FRACTION)
    }

    /// Gating with explicit effectiveness and gateable fraction, both in
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside `[0, 1]`.
    pub fn with_gateable_fraction(effectiveness: f64, gateable_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&effectiveness) && effectiveness.is_finite(),
            "effectiveness must be within [0, 1], got {effectiveness}"
        );
        assert!(
            (0.0..=1.0).contains(&gateable_fraction) && gateable_fraction.is_finite(),
            "gateable fraction must be within [0, 1], got {gateable_fraction}"
        );
        PowerGating {
            effectiveness,
            gateable_fraction,
        }
    }

    /// No gating (the paper's baseline).
    pub fn off() -> Self {
        Self::new(0.0)
    }

    /// The gating effectiveness.
    pub fn effectiveness(self) -> f64 {
        self.effectiveness
    }

    /// Multiplier applied to constant energy for a run with the given
    /// idle fraction.
    pub fn constant_multiplier(self, idle_fraction: f64) -> f64 {
        1.0 - self.effectiveness * self.gateable_fraction * idle_fraction.clamp(0.0, 1.0)
    }
}

impl Default for PowerGating {
    fn default() -> Self {
        Self::off()
    }
}

impl fmt::Display for PowerGating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gating {:.0}% effective over {:.0}% of constant power",
            self.effectiveness * 100.0,
            self.gateable_fraction * 100.0
        )
    }
}

impl EnergyModel {
    /// Like [`EnergyModel::estimate`], with idle-aware power gating
    /// applied to the constant-overhead component.
    pub fn estimate_gated(&self, ev: &EventCounts, gating: &PowerGating) -> EnergyBreakdown {
        let mut b = self.estimate(ev);
        let constant = b.get(EnergyComponent::ConstantOverhead);
        let gated = constant * gating.constant_multiplier(ev.idle_fraction());
        // Rebuild the component (EnergyBreakdown only accumulates).
        let mut out = EnergyBreakdown::new();
        for (c, e) in b.iter() {
            if c == EnergyComponent::ConstantOverhead {
                out.add(c, gated);
            } else {
                out.add(c, e);
            }
        }
        b = out;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::units::Time;

    fn idle_heavy() -> EventCounts {
        let mut ev = EventCounts::new();
        ev.busy_sm_cycles = 20;
        ev.idle_sm_cycles = 80;
        ev.elapsed = Time::from_millis(5.0);
        ev
    }

    #[test]
    fn multiplier_scales_with_idle_and_effectiveness() {
        let g = PowerGating::with_gateable_fraction(1.0, 1.0);
        assert_eq!(g.constant_multiplier(0.0), 1.0);
        assert!((g.constant_multiplier(1.0) - 0.0).abs() < 1e-12);
        assert!((g.constant_multiplier(0.5) - 0.5).abs() < 1e-12);
        let half = PowerGating::with_gateable_fraction(0.5, 1.0);
        assert!((half.constant_multiplier(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn off_is_identity() {
        let model = EnergyModel::k40();
        let ev = idle_heavy();
        let plain = model.estimate(&ev);
        let gated = model.estimate_gated(&ev, &PowerGating::off());
        assert_eq!(plain, gated);
    }

    #[test]
    fn gating_reduces_only_constant_overhead() {
        let model = EnergyModel::k40();
        let mut ev = idle_heavy();
        ev.instrs.add(isa::Opcode::FAdd32, 1000);
        let plain = model.estimate(&ev);
        let gated = model.estimate_gated(&ev, &PowerGating::new(1.0));
        assert!(
            gated.get(EnergyComponent::ConstantOverhead)
                < plain.get(EnergyComponent::ConstantOverhead)
        );
        assert_eq!(
            gated.get(EnergyComponent::PipelineBusy),
            plain.get(EnergyComponent::PipelineBusy)
        );
        // 80% idle, 60% gateable, 100% effective: 48% of constant saved.
        let expected = plain.get(EnergyComponent::ConstantOverhead).joules() * (1.0 - 0.48);
        assert!((gated.get(EnergyComponent::ConstantOverhead).joules() - expected).abs() < 1e-12);
    }

    #[test]
    fn more_effectiveness_saves_more() {
        let model = EnergyModel::k40();
        let ev = idle_heavy();
        let e25 = model.estimate_gated(&ev, &PowerGating::new(0.25)).total();
        let e75 = model.estimate_gated(&ev, &PowerGating::new(0.75)).total();
        assert!(e75 < e25);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_out_of_range() {
        let _ = PowerGating::new(1.5);
    }

    #[test]
    fn display_is_informative() {
        let s = PowerGating::new(0.5).to_string();
        assert!(s.contains("50%"));
        assert!(s.contains("60%"));
    }
}
