//! Per-component energy breakdown (the stacked components of Fig. 7).
//!
//! The paper decomposes GPU energy into the pipeline-busy, pipeline-idle
//! (stall), constant-overhead, and per-hierarchy-level data-movement
//! contributions; this module carries that decomposition so experiments can
//! report exactly the same stacks.

use common::units::Energy;
use std::fmt;
use std::ops::AddAssign;

/// A named component of the total energy estimate.
///
/// Matches the legend of the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EnergyComponent {
    /// Dynamic energy of executed instructions (`Σ EPI·IC` — "SM Pipeline
    /// (Busy)").
    PipelineBusy,
    /// Lane-stall energy (`EPStall·stalls` — "SM Pipeline (Idle)").
    PipelineIdle,
    /// Constant power × execution time ("Constant Energy Overhead").
    ConstantOverhead,
    /// Shared memory → register file transactions.
    SharedToReg,
    /// L1 cache → register file transactions ("L1 -> Reg").
    L1ToReg,
    /// L2 cache → L1 transactions ("L2 -> L1").
    L2ToL1,
    /// Inter-GPM link and switch traffic ("Inter-Module").
    InterModule,
    /// DRAM → L2 transactions ("DRAM -> L2").
    DramToL2,
}

impl EnergyComponent {
    /// Number of components.
    pub const COUNT: usize = 8;

    /// All components in display order (matching the Fig. 7 legend order,
    /// with SharedToReg folded in next to L1).
    pub const ALL: [EnergyComponent; EnergyComponent::COUNT] = [
        EnergyComponent::PipelineBusy,
        EnergyComponent::PipelineIdle,
        EnergyComponent::ConstantOverhead,
        EnergyComponent::SharedToReg,
        EnergyComponent::L1ToReg,
        EnergyComponent::L2ToL1,
        EnergyComponent::InterModule,
        EnergyComponent::DramToL2,
    ];

    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Label used in experiment output (Fig. 7 legend wording).
    pub fn label(self) -> &'static str {
        match self {
            EnergyComponent::PipelineBusy => "SM Pipeline (Busy)",
            EnergyComponent::PipelineIdle => "SM Pipeline (Idle)",
            EnergyComponent::ConstantOverhead => "Constant Energy Overhead",
            EnergyComponent::SharedToReg => "Shared -> Reg",
            EnergyComponent::L1ToReg => "L1 -> Reg",
            EnergyComponent::L2ToL1 => "L2 -> L1",
            EnergyComponent::InterModule => "Inter-Module",
            EnergyComponent::DramToL2 => "DRAM -> L2",
        }
    }
}

impl fmt::Display for EnergyComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An energy estimate decomposed by [`EnergyComponent`].
///
/// # Examples
///
/// ```
/// use gpujoule::{EnergyBreakdown, EnergyComponent};
/// use common::units::Energy;
///
/// let mut b = EnergyBreakdown::new();
/// b.add(EnergyComponent::PipelineBusy, Energy::from_joules(3.0));
/// b.add(EnergyComponent::DramToL2, Energy::from_joules(1.0));
/// assert_eq!(b.total(), Energy::from_joules(4.0));
/// assert!((b.fraction(EnergyComponent::DramToL2) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    values: [Energy; EnergyComponent::COUNT],
}

impl Default for EnergyBreakdown {
    fn default() -> Self {
        EnergyBreakdown {
            values: [Energy::ZERO; EnergyComponent::COUNT],
        }
    }
}

impl EnergyBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds energy to one component.
    #[inline]
    pub fn add(&mut self, c: EnergyComponent, e: Energy) {
        self.values[c.index()] += e;
    }

    /// Energy of one component.
    #[inline]
    pub fn get(&self, c: EnergyComponent) -> Energy {
        self.values[c.index()]
    }

    /// Total energy across components (the Eq. 4 sum).
    pub fn total(&self) -> Energy {
        self.values.iter().copied().sum()
    }

    /// Fraction of the total contributed by one component; `0.0` when the
    /// total is zero.
    pub fn fraction(&self, c: EnergyComponent) -> f64 {
        let total = self.total().joules();
        if total == 0.0 {
            0.0
        } else {
            self.get(c).joules() / total
        }
    }

    /// Sum of all data-movement components (everything but pipeline and
    /// constant overhead).
    pub fn data_movement(&self) -> Energy {
        self.get(EnergyComponent::SharedToReg)
            + self.get(EnergyComponent::L1ToReg)
            + self.get(EnergyComponent::L2ToL1)
            + self.get(EnergyComponent::InterModule)
            + self.get(EnergyComponent::DramToL2)
    }

    /// Iterates over `(component, energy)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyComponent, Energy)> + '_ {
        EnergyComponent::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Component-wise difference `self − other`, clamped at zero: the
    /// *increase* over a preceding configuration, as plotted in Fig. 7.
    pub fn increase_over(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        let mut out = EnergyBreakdown::new();
        for c in EnergyComponent::ALL {
            out.values[c.index()] = (self.get(c) - other.get(c)).max_zero();
        }
        out
    }
}

impl AddAssign<&EnergyBreakdown> for EnergyBreakdown {
    fn add_assign(&mut self, rhs: &EnergyBreakdown) {
        for i in 0..EnergyComponent::COUNT {
            self.values[i] += rhs.values[i];
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        writeln!(f, "total: {total}")?;
        for (c, e) in self.iter() {
            writeln!(
                f,
                "  {:<26} {:>12}  ({:>5.1}%)",
                c.label(),
                e.to_string(),
                self.fraction(c) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::PipelineBusy, Energy::from_joules(6.0));
        b.add(EnergyComponent::ConstantOverhead, Energy::from_joules(2.0));
        b.add(EnergyComponent::ConstantOverhead, Energy::from_joules(2.0));
        assert_eq!(b.total(), Energy::from_joules(10.0));
        assert!((b.fraction(EnergyComponent::ConstantOverhead) - 0.4).abs() < 1e-12);
        assert_eq!(b.fraction(EnergyComponent::DramToL2), 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_total_and_fractions() {
        let b = EnergyBreakdown::new();
        assert_eq!(b.total(), Energy::ZERO);
        assert_eq!(b.fraction(EnergyComponent::PipelineBusy), 0.0);
    }

    #[test]
    fn data_movement_excludes_pipeline_and_constant() {
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::PipelineBusy, Energy::from_joules(5.0));
        b.add(EnergyComponent::ConstantOverhead, Energy::from_joules(5.0));
        b.add(EnergyComponent::L2ToL1, Energy::from_joules(1.0));
        b.add(EnergyComponent::InterModule, Energy::from_joules(2.0));
        assert_eq!(b.data_movement(), Energy::from_joules(3.0));
    }

    #[test]
    fn increase_over_clamps_negative_deltas() {
        let mut a = EnergyBreakdown::new();
        a.add(EnergyComponent::DramToL2, Energy::from_joules(3.0));
        a.add(EnergyComponent::PipelineBusy, Energy::from_joules(1.0));
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::DramToL2, Energy::from_joules(1.0));
        b.add(EnergyComponent::PipelineBusy, Energy::from_joules(2.0));
        let inc = a.increase_over(&b);
        assert_eq!(inc.get(EnergyComponent::DramToL2), Energy::from_joules(2.0));
        assert_eq!(inc.get(EnergyComponent::PipelineBusy), Energy::ZERO);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = EnergyBreakdown::new();
        a.add(EnergyComponent::L1ToReg, Energy::from_joules(1.0));
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::L1ToReg, Energy::from_joules(2.0));
        a += &b;
        assert_eq!(a.get(EnergyComponent::L1ToReg), Energy::from_joules(3.0));
    }

    #[test]
    fn display_lists_all_components() {
        let b = EnergyBreakdown::new();
        let s = b.to_string();
        for c in EnergyComponent::ALL {
            assert!(s.contains(c.label()), "missing {c}");
        }
    }
}
