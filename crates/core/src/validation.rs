//! Model-vs-measurement validation reports (Figs. 4a/4b of the paper).
//!
//! The GPUJoule methodology validates its fitted model twice: against
//! mixed-instruction microbenchmarks, then against full applications,
//! reporting signed relative error per item and the mean absolute /
//! geometric-mean error across the suite.

use common::stats;
use common::units::Energy;
use std::fmt;

/// One validated item: a benchmark name with modeled and measured energy.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationItem {
    /// Benchmark or application name.
    pub name: String,
    /// Energy predicted by the fitted GPUJoule model.
    pub modeled: Energy,
    /// Energy measured on (virtual) silicon through the power sensor.
    pub measured: Energy,
}

impl ValidationItem {
    /// Creates a validation item.
    pub fn new(name: impl Into<String>, modeled: Energy, measured: Energy) -> Self {
        ValidationItem {
            name: name.into(),
            modeled,
            measured,
        }
    }

    /// Signed relative error `(modeled − measured) / measured`, or `None`
    /// when the measured energy is zero.
    pub fn relative_error(&self) -> Option<f64> {
        stats::relative_error(self.modeled.joules(), self.measured.joules())
    }

    /// Signed relative error in percent (0 when undefined).
    pub fn error_percent(&self) -> f64 {
        self.relative_error().unwrap_or(0.0) * 100.0
    }
}

impl fmt::Display for ValidationItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} modeled {} measured {} ({:+.1}%)",
            self.name,
            self.modeled,
            self.measured,
            self.error_percent()
        )
    }
}

/// A suite-level validation report.
///
/// # Examples
///
/// ```
/// use gpujoule::{ValidationItem, ValidationReport};
/// use common::units::Energy;
///
/// let report: ValidationReport = [
///     ValidationItem::new("a", Energy::from_joules(1.1), Energy::from_joules(1.0)),
///     ValidationItem::new("b", Energy::from_joules(0.9), Energy::from_joules(1.0)),
/// ].into_iter().collect();
/// assert!((report.mean_abs_error_percent() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValidationReport {
    items: Vec<ValidationItem>,
}

impl ValidationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    pub fn push(&mut self, item: ValidationItem) {
        self.items.push(item);
    }

    /// The validated items, in insertion order.
    pub fn items(&self) -> &[ValidationItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the report has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Signed relative errors (fractions), one per item with a defined
    /// error.
    pub fn errors(&self) -> Vec<f64> {
        self.items
            .iter()
            .filter_map(|i| i.relative_error())
            .collect()
    }

    /// Mean absolute relative error in percent (the paper reports 9.4%
    /// across the 18-application suite).
    pub fn mean_abs_error_percent(&self) -> f64 {
        stats::mean_abs(&self.errors()).unwrap_or(0.0) * 100.0
    }

    /// Geometric mean of absolute relative errors in percent (the
    /// "GeoMean Error" bar of Fig. 4b).
    pub fn geomean_abs_error_percent(&self) -> f64 {
        stats::geomean_abs(&self.errors()).unwrap_or(0.0) * 100.0
    }

    /// Largest absolute relative error in percent.
    pub fn max_abs_error_percent(&self) -> f64 {
        self.errors().iter().map(|e| e.abs()).fold(0.0, f64::max) * 100.0
    }

    /// Items whose absolute error exceeds `threshold_percent` (the paper
    /// singles out the four apps beyond 30%).
    pub fn outliers(&self, threshold_percent: f64) -> Vec<&ValidationItem> {
        self.items
            .iter()
            .filter(|i| i.error_percent().abs() > threshold_percent)
            .collect()
    }
}

impl FromIterator<ValidationItem> for ValidationReport {
    fn from_iter<I: IntoIterator<Item = ValidationItem>>(iter: I) -> Self {
        ValidationReport {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<ValidationItem> for ValidationReport {
    fn extend<I: IntoIterator<Item = ValidationItem>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            writeln!(f, "{item}")?;
        }
        writeln!(
            f,
            "mean |err| {:.1}%  geomean |err| {:.1}%  max |err| {:.1}%",
            self.mean_abs_error_percent(),
            self.geomean_abs_error_percent(),
            self.max_abs_error_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str, modeled: f64, measured: f64) -> ValidationItem {
        ValidationItem::new(
            name,
            Energy::from_joules(modeled),
            Energy::from_joules(measured),
        )
    }

    #[test]
    fn item_error_signs() {
        assert!((item("x", 1.1, 1.0).error_percent() - 10.0).abs() < 1e-9);
        assert!((item("x", 0.7, 1.0).error_percent() + 30.0).abs() < 1e-9);
        assert_eq!(item("x", 1.0, 0.0).error_percent(), 0.0);
    }

    #[test]
    fn report_statistics() {
        let report: ValidationReport = [
            item("a", 1.2, 1.0),
            item("b", 0.9, 1.0),
            item("c", 1.0, 1.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(report.len(), 3);
        assert!((report.mean_abs_error_percent() - 10.0).abs() < 1e-9);
        assert!((report.max_abs_error_percent() - 20.0).abs() < 1e-9);
        // Geomean skips the zero-error item.
        assert!((report.geomean_abs_error_percent() - (0.2f64 * 0.1).sqrt() * 100.0).abs() < 1e-9);
    }

    #[test]
    fn outliers_filtering() {
        let report: ValidationReport = [item("ok", 1.05, 1.0), item("bad", 1.5, 1.0)]
            .into_iter()
            .collect();
        let out = report.outliers(30.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "bad");
    }

    #[test]
    fn empty_report_is_all_zeros() {
        let r = ValidationReport::new();
        assert!(r.is_empty());
        assert_eq!(r.mean_abs_error_percent(), 0.0);
        assert_eq!(r.geomean_abs_error_percent(), 0.0);
        assert_eq!(r.max_abs_error_percent(), 0.0);
    }

    #[test]
    fn extend_appends() {
        let mut r = ValidationReport::new();
        r.extend([item("a", 1.0, 1.0)]);
        r.push(item("b", 2.0, 1.0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.items()[1].name, "b");
    }

    #[test]
    fn display_includes_summary() {
        let r: ValidationReport = [item("a", 1.1, 1.0)].into_iter().collect();
        let s = r.to_string();
        assert!(s.contains("mean |err|"));
        assert!(s.contains('a'));
    }
}
