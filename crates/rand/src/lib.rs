#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few entry points it actually uses: [`rngs::SmallRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool`, and `gen_range`.
//!
//! `SmallRng` is xoshiro256++ with splitmix64 seed expansion — the same
//! generator family real `rand` 0.8 uses on 64-bit targets, so the
//! statistical quality assumptions of downstream tests (frequency checks
//! over tens of thousands of draws) hold. Streams are deterministic per
//! seed but are **not** bit-identical to the real crate's; everything in
//! this workspace derives its traces from seeds it controls, so only
//! self-consistency matters.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from the full value domain
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Types `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// A uniform draw from `[lo, hi)`. `hi` must exceed `lo`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo draw: the bias over u64 output is < 2^-63 for the
                // span sizes this workspace uses (all far below 2^32).
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from the type's full domain (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// A uniform draw from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from small seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10_u64..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(-2.0_f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
