//! Property tests for the runtime: parallel/serial result equivalence,
//! cache identity under duplicate keys, clean pool drain across worker
//! counts, and panic containment in the executor.

use proptest::prelude::*;
use runtime::{FaultPlan, RetryPolicy, ShardedCache, SweepExecutor, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// A deterministic stand-in for a simulation: expensive enough to overlap
/// across workers, pure in its key.
fn fake_simulate(key: u64) -> u64 {
    let mut x = key.wrapping_mul(0x9e3779b97f4a7c15);
    for _ in 0..50 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
    }
    x
}

proptest! {
    #[test]
    fn parallel_sweep_matches_serial(
        keys in prop::collection::vec(0_u64..32, 1..80),
        threads in 2_usize..9,
    ) {
        let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();

        let serial = SweepExecutor::new(1);
        let serial_cache = Arc::new(ShardedCache::for_threads(1));
        let expected = serial
            .run_keyed(&serial_cache, items.clone(), |&k, _| fake_simulate(k))
            .try_into_values()
            .unwrap();

        let parallel = SweepExecutor::new(threads);
        let parallel_cache = Arc::new(ShardedCache::for_threads(threads));
        let got = parallel
            .run_keyed(&parallel_cache, items, |&k, _| fake_simulate(k))
            .try_into_values()
            .unwrap();

        prop_assert_eq!(expected, got);
    }

    #[test]
    fn duplicate_keys_share_one_computation(
        keys in prop::collection::vec(0_u64..8, 2..60),
        threads in 1_usize..9,
    ) {
        let executor = SweepExecutor::new(threads);
        let cache: Arc<ShardedCache<u64, Arc<u64>>> =
            Arc::new(ShardedCache::for_threads(threads));
        let computed = Arc::new(AtomicUsize::new(0));
        let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
        let counter = Arc::clone(&computed);
        let values = executor
            .run_keyed(&cache, items, move |&k, _| {
                counter.fetch_add(1, Ordering::Relaxed);
                Arc::new(fake_simulate(k))
            })
            .try_into_values()
            .unwrap();

        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        // One computation per distinct key, no matter the thread count.
        prop_assert_eq!(computed.load(Ordering::Relaxed), unique.len());
        prop_assert_eq!(cache.len(), unique.len());
        // Every submission of the same key receives the *same* Arc, not a
        // recomputed equal value.
        for (i, &ki) in keys.iter().enumerate() {
            for (j, &kj) in keys.iter().enumerate().skip(i + 1) {
                if ki == kj {
                    prop_assert!(Arc::ptr_eq(&values[i], &values[j]));
                }
            }
        }
    }

    #[test]
    fn pool_drains_cleanly_at_any_width(
        threads in 1_usize..=16,
        jobs in 0_usize..200,
    ) {
        let pool = ThreadPool::new(threads);
        prop_assert_eq!(pool.threads(), threads.max(1));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..jobs {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // must join without deadlock and run every job
        prop_assert_eq!(done.load(Ordering::Relaxed), jobs);
    }

    #[test]
    fn panicking_point_is_isolated(
        keys in prop::collection::vec(0_u64..16, 2..40),
        poison in 0_u64..16,
        threads in 1_usize..9,
    ) {
        let executor = SweepExecutor::new(threads);
        let cache: Arc<ShardedCache<u64, u64>> =
            Arc::new(ShardedCache::for_threads(threads));
        let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
        let report = executor.run_keyed(&cache, items, move |&k, _| {
            if k == poison {
                panic!("injected failure for key {k}");
            }
            fake_simulate(k)
        });

        for (i, outcome) in report.outcomes.iter().enumerate() {
            if keys[i] == poison {
                let err = outcome.as_ref().expect_err("poisoned key must fail");
                prop_assert!(err.message.contains("injected failure"));
            } else {
                prop_assert_eq!(*outcome.as_ref().unwrap(), fake_simulate(keys[i]));
            }
        }
        let poisoned = keys.iter().filter(|&&k| k == poison).count();
        prop_assert_eq!(report.failures(), poisoned);
        prop_assert_eq!(
            report.metrics.errors.load(Ordering::Relaxed),
            poisoned
        );

        // The cache is not poisoned: the failed key can be computed again.
        prop_assert_eq!(cache.get(&poison), None);
        prop_assert_eq!(
            cache.get_or_compute(&poison, || fake_simulate(poison)).unwrap(),
            fake_simulate(poison)
        );
    }

    /// A panicked in-flight cache entry never deadlocks its waiters: every
    /// concurrent requester of the panicking key gets an `Err` (or a value
    /// from a clean recompute), and the slot is recomputable afterwards.
    #[test]
    fn panicked_inflight_entry_never_deadlocks_waiters(
        waiters in 2_usize..8,
        key in 0_u64..16,
    ) {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(4));
        let barrier = Arc::new(Barrier::new(waiters + 1));

        // The owner claims the in-flight slot, releases the waiters while
        // still computing, then panics.
        let owner = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute(&key, || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    panic!("injected in-flight failure");
                });
            })
        };
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compute(&key, || fake_simulate(key))
                })
            })
            .collect();
        owner.join().unwrap();
        for h in handles {
            // Each waiter either joined the doomed flight (Err) or arrived
            // after the slot was cleared and recomputed cleanly (Ok) —
            // but must never hang.
            match h.join().unwrap() {
                Err(e) => prop_assert!(e.message.contains("injected in-flight failure")),
                Ok(v) => prop_assert_eq!(v, fake_simulate(key)),
            }
        }

        // The slot is recomputable: a retried point repopulates it.
        prop_assert_eq!(
            cache.get_or_compute(&key, || fake_simulate(key)).unwrap(),
            fake_simulate(key)
        );
        prop_assert_eq!(cache.get(&key), Some(fake_simulate(key)));
    }

    /// Injected transient faults plus retries reproduce the fault-free
    /// sweep exactly: same values, repopulated cache, retries recorded.
    #[test]
    fn injected_faults_with_retries_match_fault_free(
        keys in prop::collection::vec(0_u64..24, 1..60),
        threads in 1_usize..9,
        seed in 0_u64..1000,
    ) {
        let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();

        let clean_cache = Arc::new(ShardedCache::for_threads(1));
        let expected = SweepExecutor::new(1)
            .run_keyed(&clean_cache, items.clone(), |&k, _| fake_simulate(k))
            .try_into_values()
            .unwrap();

        let plan = FaultPlan::new(seed)
            .with_panic_rate(0.25)
            .with_poison_rate(0.25);
        let faulted = SweepExecutor::new(threads)
            .with_retry_policy(RetryPolicy::retries(2))
            .with_faults(plan);
        let cache = Arc::new(ShardedCache::for_threads(threads));
        let report = faulted.run_keyed(&cache, items, |&k, _| fake_simulate(k));
        let retries = report.metrics.retries.load(Ordering::Relaxed);
        let gave_up = report.metrics.gave_up.load(Ordering::Relaxed);
        let got = report.try_into_values().unwrap();

        prop_assert_eq!(got, expected);
        prop_assert_eq!(gave_up, 0);
        // Every faulted point was retried at least once.
        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        prop_assert!(retries <= 2 * unique.len());
    }
}
