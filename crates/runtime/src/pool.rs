//! A hand-rolled, std-only work-stealing thread pool.
//!
//! The dependency policy keeps this workspace free of rayon/crossbeam,
//! so the pool is built from `Mutex<VecDeque>` per-worker queues plus a
//! shared injector:
//!
//! * External submissions land in the **injector** queue.
//! * A worker executing a job pushes follow-up work onto the **back of
//!   its own deque** (LIFO — keeps the working set hot in cache).
//! * An idle worker pops its own deque from the back, then drains the
//!   injector, then **steals from the front** of a sibling's deque
//!   (FIFO — takes the oldest, coarsest work, the classic Blumofe–
//!   Leiserson discipline).
//!
//! Jobs are wrapped in `catch_unwind`, so a panicking job can never
//! take a worker thread down with it; job-level panic *reporting* is
//! the executor's responsibility (see [`crate::executor`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    /// Identity of the pool worker running on this thread, if any:
    /// (pool instance id, worker index).
    static CURRENT_WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

/// Index of the pool worker running the current thread, if the current
/// thread is a pool worker (used for per-worker utilization metrics).
pub fn current_worker_index() -> Option<usize> {
    CURRENT_WORKER.with(|c| c.get()).map(|(_, index)| index)
}

struct Shared {
    pool_id: usize,
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker. Owner pushes/pops at the back; thieves
    /// steal from the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Wakes idle workers when work arrives, and `shutdown` watchers.
    work_signal: Condvar,
    /// Paired with `work_signal`; counts queued-but-unclaimed jobs.
    pending: Mutex<usize>,
    shutting_down: AtomicBool,
}

impl Shared {
    fn push_injector(&self, job: Job) {
        self.injector.lock().unwrap().push_back(job);
        *self.pending.lock().unwrap() += 1;
        self.work_signal.notify_one();
    }

    fn push_local(&self, worker: usize, job: Job) {
        self.deques[worker].lock().unwrap().push_back(job);
        *self.pending.lock().unwrap() += 1;
        self.work_signal.notify_one();
    }

    /// Claims one job: own deque (back), injector, then steal (front).
    fn find_job(&self, worker: usize) -> Option<Job> {
        if let Some(job) = self.deques[worker].lock().unwrap().pop_back() {
            trace::count("pool.pop_local", 1);
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            trace::count("pool.pop_injector", 1);
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                trace::count("pool.steal", 1);
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((shared.pool_id, index))));
    loop {
        let job = {
            let mut pending = shared.pending.lock().unwrap();
            loop {
                if *pending > 0 {
                    // A job is queued somewhere; claim it outside the
                    // pending lock would race the count, so decrement
                    // first and search after.
                    *pending -= 1;
                    break;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                pending = shared.work_signal.wait(pending).unwrap();
            }
            drop(pending);
            // The decremented count is a claim ticket: pushes enqueue
            // before incrementing and claimants dequeue at most one job
            // each, so `queued >= outstanding claims` always holds and
            // the scan below is guaranteed to find a job eventually.
            // (It can transiently miss one when a concurrent push lands
            // in a deque this scan already passed — hence the retry.)
            loop {
                if let Some(job) = shared.find_job(index) {
                    break job;
                }
                std::thread::yield_now();
            }
        };
        // The job is responsible for reporting its own outcome; the
        // catch here only shields the worker thread.
        let _span = trace::span("pool.job");
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            work_signal: Condvar::new(),
            pending: Mutex::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mmgpu-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. From a worker thread of this pool the job goes to
    /// that worker's own deque; otherwise to the shared injector.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        let local = CURRENT_WORKER
            .with(|c| c.get())
            .and_then(|(pool, worker)| (pool == self.shared.pool_id).then_some(worker));
        match local {
            Some(worker) => self.shared.push_local(worker, job),
            None => self.shared.push_injector(job),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Wake everyone so blocked workers observe the flag. Queued jobs
        // are still drained: workers only exit once `pending` is zero.
        self.shared.work_signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Tracks the jobs spawned inside one [`ThreadPool::scope`] call.
struct ScopeState {
    /// Jobs spawned but not yet finished.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload captured from a scoped job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]; jobs
/// spawned through it may borrow from the enclosing stack frame
/// (`'env`) because the scope joins them all before it returns.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant in `'env`, like `std::thread::Scope`.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Submits a job that may borrow data living at least as long as the
    /// scope. The scope blocks until every spawned job has finished.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.remaining.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: `scope` joins every spawned job (even on panic) before
        // returning, so the job cannot outlive the `'env` borrows it
        // captures. The transmute only erases that lifetime to fit the
        // pool's `'static` job type.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut remaining = state.remaining.lock().unwrap();
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_all();
            }
        });
    }
}

impl ThreadPool {
    /// Runs `f` with a scope handle whose spawned jobs may borrow local
    /// state, then blocks until every job has finished — including when
    /// `f` itself panics, so borrows can never dangle. The first panic
    /// from a scoped job is re-raised on the calling thread after the
    /// join (mirroring `std::thread::scope`).
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> T,
    {
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState {
                remaining: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join all scoped jobs before touching the result: the borrows
        // they hold must outlive them no matter how `f` exited.
        {
            let mut remaining = scope.state.remaining.lock().unwrap();
            while *remaining > 0 {
                remaining = scope.state.done.wait(remaining).unwrap();
            }
        }
        match result {
            Ok(value) => {
                if let Some(payload) = scope.state.panic.lock().unwrap().take() {
                    std::panic::resume_unwind(payload);
                }
                value
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    #[test]
    fn runs_every_job_once() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers after the queues drain
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                if i % 3 == 0 {
                    panic!("injected");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 66);
    }

    #[test]
    fn scope_jobs_borrow_the_stack() {
        let pool = ThreadPool::new(3);
        let mut results = vec![0u64; 8];
        pool.scope(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.spawn(move || {
                    *slot = i as u64 * 10;
                });
            }
        });
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn scope_propagates_job_panics_after_joining() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                let finished = Arc::clone(&finished);
                scope.spawn(move || {
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                scope.spawn(|| panic!("scoped boom"));
            });
        }));
        assert!(result.is_err(), "scope must re-raise a job panic");
        assert_eq!(finished.load(Ordering::SeqCst), 1, "siblings still ran");
    }

    #[test]
    fn all_workers_participate() {
        let threads = 4;
        let pool = ThreadPool::new(threads);
        let barrier = Arc::new(Barrier::new(threads));
        // Each job blocks until all `threads` workers are inside one —
        // only possible if every worker picks up a job.
        for _ in 0..threads {
            let barrier = Arc::clone(&barrier);
            pool.spawn(move || {
                barrier.wait();
            });
        }
        drop(pool);
    }
}
