//! Live sweep metrics: counters the executor updates as points move
//! through the pipeline, a periodic progress line, and a final summary
//! table.

use common::json::Json;
use common::table::TextTable;
use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the progress line is emitted to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// Rewrite one line in place (`\r` + erase). Only when stderr is an
    /// interactive terminal.
    Ansi,
    /// Append plain full lines: non-tty stderr (logs, CI), `NO_COLOR`
    /// set, or `TERM=dumb`.
    Plain,
}

impl ProgressMode {
    /// Picks the mode from the environment, honoring the `NO_COLOR`
    /// convention (any non-empty value disables escapes) and `TERM=dumb`
    /// alongside the basic is-a-tty check.
    pub fn detect() -> ProgressMode {
        let no_color = std::env::var_os("NO_COLOR").is_some_and(|v| !v.is_empty());
        let dumb = std::env::var_os("TERM").is_some_and(|v| v == *"dumb");
        if no_color || dumb || !std::io::stderr().is_terminal() {
            ProgressMode::Plain
        } else {
            ProgressMode::Ansi
        }
    }
}

/// Shared counters for one sweep (all methods are lock-free except the
/// per-point wall-time record, which appends under a short mutex).
#[derive(Debug)]
pub struct SweepMetrics {
    /// Points submitted to the executor.
    pub submitted: AtomicUsize,
    /// Points fully finished (simulated or served from cache).
    pub completed: AtomicUsize,
    /// Points whose simulation was served from the cache.
    pub cache_hits: AtomicUsize,
    /// Points currently being simulated.
    pub in_flight: AtomicUsize,
    /// Points that failed (panicked) instead of completing.
    pub errors: AtomicUsize,
    /// Failed attempts that were retried under the executor's
    /// [`crate::RetryPolicy`].
    pub retries: AtomicUsize,
    /// Attempts that finished after the per-point deadline.
    pub timeouts: AtomicUsize,
    /// Unique points that exhausted every allowed attempt.
    pub gave_up: AtomicUsize,
    /// Sum of per-point simulation wall times, nanoseconds.
    sim_nanos: AtomicU64,
    /// Longest single point, nanoseconds.
    max_point_nanos: AtomicU64,
    /// Per-worker busy time, nanoseconds (indexed by worker slot).
    busy_nanos: Vec<AtomicU64>,
    start: Instant,
    /// Last progress-line emission, for rate limiting.
    last_progress: Mutex<Instant>,
    /// How progress lines are rendered (in-place ANSI vs. plain).
    progress_mode: ProgressMode,
    /// Whether an in-place ANSI progress line is open (no trailing
    /// newline yet).
    progress_line_open: AtomicBool,
}

impl SweepMetrics {
    /// Fresh metrics for a sweep executed by `workers` threads, with the
    /// progress style detected from the environment.
    pub fn new(workers: usize) -> Self {
        Self::with_progress_mode(workers, ProgressMode::detect())
    }

    /// Fresh metrics with an explicit progress style (tests force
    /// [`ProgressMode::Plain`] to stay deterministic).
    pub fn with_progress_mode(workers: usize, progress_mode: ProgressMode) -> Self {
        let now = Instant::now();
        SweepMetrics {
            submitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
            gave_up: AtomicUsize::new(0),
            sim_nanos: AtomicU64::new(0),
            max_point_nanos: AtomicU64::new(0),
            busy_nanos: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            start: now,
            last_progress: Mutex::new(now),
            progress_mode,
            progress_line_open: AtomicBool::new(false),
        }
    }

    /// Records one simulated point's wall time against a worker slot.
    pub fn record_point(&self, worker: usize, wall: Duration) {
        let nanos = wall.as_nanos() as u64;
        self.sim_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_point_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.busy_nanos[worker % self.busy_nanos.len()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Elapsed wall time since the metrics were created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Mean simulated-point wall time, if any point finished.
    pub fn mean_point_time(&self) -> Option<Duration> {
        let simulated = self
            .completed
            .load(Ordering::Relaxed)
            .saturating_sub(self.cache_hits.load(Ordering::Relaxed));
        if simulated == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            self.sim_nanos.load(Ordering::Relaxed) / simulated as u64,
        ))
    }

    /// Aggregate worker utilization in `[0, 1]`: busy time over
    /// `workers x elapsed`.
    pub fn worker_utilization(&self) -> f64 {
        let wall = self.elapsed().as_nanos() as f64;
        if wall <= 0.0 {
            return 0.0;
        }
        let busy: u64 = self
            .busy_nanos
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        (busy as f64 / (wall * self.busy_nanos.len() as f64)).min(1.0)
    }

    /// Emits a progress line to stderr, rate-limited to one per
    /// `interval`. Stdout stays clean for table output. On an
    /// interactive terminal ([`ProgressMode::Ansi`]) the line is
    /// rewritten in place; otherwise ([`ProgressMode::Plain`] — non-tty,
    /// `NO_COLOR`, `TERM=dumb`) plain full lines are appended with no
    /// escape sequences.
    pub fn maybe_print_progress(&self, interval: Duration) {
        let mut last = self.last_progress.lock().unwrap();
        if last.elapsed() < interval {
            return;
        }
        *last = Instant::now();
        drop(last);
        let line = format!(
            "[sweep {:6.1}s] {}/{} points done ({} cached, {} in flight, {} failed), workers {:.0}% busy",
            self.elapsed().as_secs_f64(),
            self.completed.load(Ordering::Relaxed),
            self.submitted.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.in_flight.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.worker_utilization() * 100.0,
        );
        match self.progress_mode {
            ProgressMode::Ansi => {
                // Carriage return + erase-line: rewrite in place.
                eprint!("\r\x1b[2K{line}");
                self.progress_line_open.store(true, Ordering::Relaxed);
            }
            ProgressMode::Plain => eprintln!("{line}"),
        }
    }

    /// Closes an open in-place progress line with a newline so the next
    /// write (summary table, shell prompt) starts on a fresh line. Safe
    /// to call unconditionally; a no-op unless a line is open.
    pub fn finish_progress(&self) {
        if self.progress_line_open.swap(false, Ordering::Relaxed) {
            eprintln!();
        }
    }

    /// The stable serialized form of the sweep counters, used by the
    /// `xp` driver's `manifest.json`. Schema (all keys always present):
    /// `submitted`, `completed`, `cache_hits`, `simulated`, `failed`,
    /// `retries`, `timeouts`, `gave_up`, `workers`,
    /// `worker_busy_secs` (per-worker busy time, indexed by worker
    /// slot), `worker_utilization` (0–1), `wall_time_secs`,
    /// `sim_time_secs` (sum of per-point wall times), and
    /// `mean_point_secs` / `max_point_secs` (`null` until a point has
    /// been simulated).
    pub fn to_json(&self) -> Json {
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let mut o = Json::object();
        o.insert("submitted", self.submitted.load(Ordering::Relaxed));
        o.insert("completed", completed);
        o.insert("cache_hits", hits);
        o.insert("simulated", completed.saturating_sub(hits));
        o.insert("failed", self.errors.load(Ordering::Relaxed));
        o.insert("retries", self.retries.load(Ordering::Relaxed));
        o.insert("timeouts", self.timeouts.load(Ordering::Relaxed));
        o.insert("gave_up", self.gave_up.load(Ordering::Relaxed));
        o.insert("workers", self.busy_nanos.len());
        let mut busy = Json::array();
        for b in &self.busy_nanos {
            busy.push(b.load(Ordering::Relaxed) as f64 / 1e9);
        }
        o.insert("worker_busy_secs", busy);
        o.insert("worker_utilization", self.worker_utilization());
        o.insert("wall_time_secs", self.elapsed().as_secs_f64());
        o.insert(
            "sim_time_secs",
            self.sim_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        );
        o.insert(
            "mean_point_secs",
            match self.mean_point_time() {
                Some(d) => Json::Number(d.as_secs_f64()),
                None => Json::Null,
            },
        );
        o.insert(
            "max_point_secs",
            match self.max_point_nanos.load(Ordering::Relaxed) {
                0 => Json::Null,
                nanos => Json::Number(nanos as f64 / 1e9),
            },
        );
        o
    }

    /// Renders the final summary as a `common` text table.
    pub fn summary_table(&self) -> TextTable {
        let mut t = TextTable::new(["sweep metric", "value"]);
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        t.row(["points completed".to_string(), completed.to_string()]);
        t.row(["served from cache".to_string(), hits.to_string()]);
        t.row([
            "simulated".to_string(),
            completed.saturating_sub(hits).to_string(),
        ]);
        t.row([
            "failed".to_string(),
            self.errors.load(Ordering::Relaxed).to_string(),
        ]);
        // Resilience rows appear only when something actually fired, so
        // fault-free summaries render exactly as they always have.
        let retries = self.retries.load(Ordering::Relaxed);
        if retries > 0 {
            t.row(["retried attempts".to_string(), retries.to_string()]);
        }
        let timeouts = self.timeouts.load(Ordering::Relaxed);
        if timeouts > 0 {
            t.row(["timed-out attempts".to_string(), timeouts.to_string()]);
        }
        let gave_up = self.gave_up.load(Ordering::Relaxed);
        if gave_up > 0 {
            t.row(["gave up".to_string(), gave_up.to_string()]);
        }
        t.row([
            "wall time".to_string(),
            format!("{:.2}s", self.elapsed().as_secs_f64()),
        ]);
        if let Some(mean) = self.mean_point_time() {
            t.row([
                "mean point time".to_string(),
                format!("{:.1}ms", mean.as_secs_f64() * 1e3),
            ]);
            t.row([
                "max point time".to_string(),
                format!(
                    "{:.1}ms",
                    self.max_point_nanos.load(Ordering::Relaxed) as f64 / 1e6
                ),
            ]);
        }
        t.row([
            "worker utilization".to_string(),
            format!("{:.0}%", self.worker_utilization() * 100.0),
        ]);
        let wall = self.elapsed().as_nanos() as f64;
        if wall > 0.0 && self.busy_nanos.len() > 1 {
            let per_worker: Vec<String> = self
                .busy_nanos
                .iter()
                .map(|b| format!("{:.0}%", b.load(Ordering::Relaxed) as f64 / wall * 100.0))
                .collect();
            t.row(["per-worker busy".to_string(), per_worker.join(" ")]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let m = SweepMetrics::new(2);
        m.submitted.store(3, Ordering::Relaxed);
        m.completed.store(3, Ordering::Relaxed);
        m.cache_hits.store(1, Ordering::Relaxed);
        m.record_point(0, Duration::from_millis(10));
        m.record_point(1, Duration::from_millis(30));
        let mean = m.mean_point_time().unwrap();
        assert_eq!(mean, Duration::from_millis(20));
        let rendered = m.summary_table().render();
        assert!(rendered.contains("served from cache"));
        assert!(rendered.contains("simulated"));
    }

    #[test]
    fn json_form_is_schema_stable() {
        let m = SweepMetrics::new(2);
        m.submitted.store(3, Ordering::Relaxed);
        m.completed.store(3, Ordering::Relaxed);
        m.cache_hits.store(1, Ordering::Relaxed);
        m.record_point(0, Duration::from_millis(10));
        let j = m.to_json();
        assert_eq!(
            j.keys(),
            vec![
                "submitted",
                "completed",
                "cache_hits",
                "simulated",
                "failed",
                "retries",
                "timeouts",
                "gave_up",
                "workers",
                "worker_busy_secs",
                "worker_utilization",
                "wall_time_secs",
                "sim_time_secs",
                "mean_point_secs",
                "max_point_secs",
            ]
        );
        assert_eq!(j.get("simulated").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("cache_hits").unwrap().as_f64(), Some(1.0));
        // Round-trips through the strict parser.
        let back = common::json::Json::parse(&j.render_pretty()).unwrap();
        assert_eq!(back.get("submitted").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn json_form_before_any_point_has_null_timings() {
        let m = SweepMetrics::new(1);
        let j = m.to_json();
        assert!(j.get("mean_point_secs").unwrap().is_null());
        assert!(j.get("max_point_secs").unwrap().is_null());
    }

    #[test]
    fn utilization_is_bounded() {
        let m = SweepMetrics::new(4);
        m.record_point(0, Duration::from_secs(1000));
        assert!(m.worker_utilization() <= 1.0);
        assert!(m.worker_utilization() >= 0.0);
    }

    #[test]
    fn json_exports_per_worker_busy_time() {
        let m = SweepMetrics::new(2);
        m.record_point(0, Duration::from_secs(1));
        m.record_point(1, Duration::from_secs(3));
        let j = m.to_json();
        let busy = j.get("worker_busy_secs").unwrap().as_array().unwrap();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].as_f64(), Some(1.0));
        assert_eq!(busy[1].as_f64(), Some(3.0));
        assert!(j.get("wall_time_secs").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn per_worker_busy_row_appears_in_summary() {
        let m = SweepMetrics::with_progress_mode(2, ProgressMode::Plain);
        m.completed.store(2, Ordering::Relaxed);
        m.record_point(0, Duration::from_millis(5));
        m.record_point(1, Duration::from_millis(5));
        let rendered = m.summary_table().render();
        assert!(rendered.contains("per-worker busy"), "{rendered}");
    }

    #[test]
    fn finish_progress_is_noop_without_open_line() {
        // Plain mode never opens an in-place line, so finish_progress
        // must not emit anything (the flag stays false).
        let m = SweepMetrics::with_progress_mode(1, ProgressMode::Plain);
        m.maybe_print_progress(Duration::ZERO);
        assert!(!m.progress_line_open.load(Ordering::Relaxed));
        m.finish_progress();
        assert!(!m.progress_line_open.load(Ordering::Relaxed));
    }
}
