//! Live sweep metrics: counters the executor updates as points move
//! through the pipeline, a periodic progress line, and a final summary
//! table.

use common::json::Json;
use common::table::TextTable;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared counters for one sweep (all methods are lock-free except the
/// per-point wall-time record, which appends under a short mutex).
#[derive(Debug)]
pub struct SweepMetrics {
    /// Points submitted to the executor.
    pub submitted: AtomicUsize,
    /// Points fully finished (simulated or served from cache).
    pub completed: AtomicUsize,
    /// Points whose simulation was served from the cache.
    pub cache_hits: AtomicUsize,
    /// Points currently being simulated.
    pub in_flight: AtomicUsize,
    /// Points that failed (panicked) instead of completing.
    pub errors: AtomicUsize,
    /// Failed attempts that were retried under the executor's
    /// [`crate::RetryPolicy`].
    pub retries: AtomicUsize,
    /// Attempts that finished after the per-point deadline.
    pub timeouts: AtomicUsize,
    /// Unique points that exhausted every allowed attempt.
    pub gave_up: AtomicUsize,
    /// Sum of per-point simulation wall times, nanoseconds.
    sim_nanos: AtomicU64,
    /// Longest single point, nanoseconds.
    max_point_nanos: AtomicU64,
    /// Per-worker busy time, nanoseconds (indexed by worker slot).
    busy_nanos: Vec<AtomicU64>,
    start: Instant,
    /// Last progress-line emission, for rate limiting.
    last_progress: Mutex<Instant>,
}

impl SweepMetrics {
    /// Fresh metrics for a sweep executed by `workers` threads.
    pub fn new(workers: usize) -> Self {
        let now = Instant::now();
        SweepMetrics {
            submitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
            gave_up: AtomicUsize::new(0),
            sim_nanos: AtomicU64::new(0),
            max_point_nanos: AtomicU64::new(0),
            busy_nanos: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            start: now,
            last_progress: Mutex::new(now),
        }
    }

    /// Records one simulated point's wall time against a worker slot.
    pub fn record_point(&self, worker: usize, wall: Duration) {
        let nanos = wall.as_nanos() as u64;
        self.sim_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_point_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.busy_nanos[worker % self.busy_nanos.len()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Elapsed wall time since the metrics were created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Mean simulated-point wall time, if any point finished.
    pub fn mean_point_time(&self) -> Option<Duration> {
        let simulated = self
            .completed
            .load(Ordering::Relaxed)
            .saturating_sub(self.cache_hits.load(Ordering::Relaxed));
        if simulated == 0 {
            return None;
        }
        Some(Duration::from_nanos(
            self.sim_nanos.load(Ordering::Relaxed) / simulated as u64,
        ))
    }

    /// Aggregate worker utilization in `[0, 1]`: busy time over
    /// `workers x elapsed`.
    pub fn worker_utilization(&self) -> f64 {
        let wall = self.elapsed().as_nanos() as f64;
        if wall <= 0.0 {
            return 0.0;
        }
        let busy: u64 = self
            .busy_nanos
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        (busy as f64 / (wall * self.busy_nanos.len() as f64)).min(1.0)
    }

    /// Emits a progress line to stderr, rate-limited to one per
    /// `interval`. Stdout stays clean for table output.
    pub fn maybe_print_progress(&self, interval: Duration) {
        let mut last = self.last_progress.lock().unwrap();
        if last.elapsed() < interval {
            return;
        }
        *last = Instant::now();
        drop(last);
        eprintln!(
            "[sweep {:6.1}s] {}/{} points done ({} cached, {} in flight, {} failed), workers {:.0}% busy",
            self.elapsed().as_secs_f64(),
            self.completed.load(Ordering::Relaxed),
            self.submitted.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.in_flight.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.worker_utilization() * 100.0,
        );
    }

    /// The stable serialized form of the sweep counters, used by the
    /// `xp` driver's `manifest.json`. Schema (all keys always present):
    /// `submitted`, `completed`, `cache_hits`, `simulated`, `failed`,
    /// `retries`, `timeouts`, `gave_up`, `workers`,
    /// `worker_utilization` (0–1), `wall_time_secs`,
    /// `sim_time_secs` (sum of per-point wall times), and
    /// `mean_point_secs` / `max_point_secs` (`null` until a point has
    /// been simulated).
    pub fn to_json(&self) -> Json {
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let mut o = Json::object();
        o.insert("submitted", self.submitted.load(Ordering::Relaxed));
        o.insert("completed", completed);
        o.insert("cache_hits", hits);
        o.insert("simulated", completed.saturating_sub(hits));
        o.insert("failed", self.errors.load(Ordering::Relaxed));
        o.insert("retries", self.retries.load(Ordering::Relaxed));
        o.insert("timeouts", self.timeouts.load(Ordering::Relaxed));
        o.insert("gave_up", self.gave_up.load(Ordering::Relaxed));
        o.insert("workers", self.busy_nanos.len());
        o.insert("worker_utilization", self.worker_utilization());
        o.insert("wall_time_secs", self.elapsed().as_secs_f64());
        o.insert(
            "sim_time_secs",
            self.sim_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        );
        o.insert(
            "mean_point_secs",
            match self.mean_point_time() {
                Some(d) => Json::Number(d.as_secs_f64()),
                None => Json::Null,
            },
        );
        o.insert(
            "max_point_secs",
            match self.max_point_nanos.load(Ordering::Relaxed) {
                0 => Json::Null,
                nanos => Json::Number(nanos as f64 / 1e9),
            },
        );
        o
    }

    /// Renders the final summary as a `common` text table.
    pub fn summary_table(&self) -> TextTable {
        let mut t = TextTable::new(["sweep metric", "value"]);
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        t.row(["points completed".to_string(), completed.to_string()]);
        t.row(["served from cache".to_string(), hits.to_string()]);
        t.row([
            "simulated".to_string(),
            completed.saturating_sub(hits).to_string(),
        ]);
        t.row([
            "failed".to_string(),
            self.errors.load(Ordering::Relaxed).to_string(),
        ]);
        // Resilience rows appear only when something actually fired, so
        // fault-free summaries render exactly as they always have.
        let retries = self.retries.load(Ordering::Relaxed);
        if retries > 0 {
            t.row(["retried attempts".to_string(), retries.to_string()]);
        }
        let timeouts = self.timeouts.load(Ordering::Relaxed);
        if timeouts > 0 {
            t.row(["timed-out attempts".to_string(), timeouts.to_string()]);
        }
        let gave_up = self.gave_up.load(Ordering::Relaxed);
        if gave_up > 0 {
            t.row(["gave up".to_string(), gave_up.to_string()]);
        }
        t.row([
            "wall time".to_string(),
            format!("{:.2}s", self.elapsed().as_secs_f64()),
        ]);
        if let Some(mean) = self.mean_point_time() {
            t.row([
                "mean point time".to_string(),
                format!("{:.1}ms", mean.as_secs_f64() * 1e3),
            ]);
            t.row([
                "max point time".to_string(),
                format!(
                    "{:.1}ms",
                    self.max_point_nanos.load(Ordering::Relaxed) as f64 / 1e6
                ),
            ]);
        }
        t.row([
            "worker utilization".to_string(),
            format!("{:.0}%", self.worker_utilization() * 100.0),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let m = SweepMetrics::new(2);
        m.submitted.store(3, Ordering::Relaxed);
        m.completed.store(3, Ordering::Relaxed);
        m.cache_hits.store(1, Ordering::Relaxed);
        m.record_point(0, Duration::from_millis(10));
        m.record_point(1, Duration::from_millis(30));
        let mean = m.mean_point_time().unwrap();
        assert_eq!(mean, Duration::from_millis(20));
        let rendered = m.summary_table().render();
        assert!(rendered.contains("served from cache"));
        assert!(rendered.contains("simulated"));
    }

    #[test]
    fn json_form_is_schema_stable() {
        let m = SweepMetrics::new(2);
        m.submitted.store(3, Ordering::Relaxed);
        m.completed.store(3, Ordering::Relaxed);
        m.cache_hits.store(1, Ordering::Relaxed);
        m.record_point(0, Duration::from_millis(10));
        let j = m.to_json();
        assert_eq!(
            j.keys(),
            vec![
                "submitted",
                "completed",
                "cache_hits",
                "simulated",
                "failed",
                "retries",
                "timeouts",
                "gave_up",
                "workers",
                "worker_utilization",
                "wall_time_secs",
                "sim_time_secs",
                "mean_point_secs",
                "max_point_secs",
            ]
        );
        assert_eq!(j.get("simulated").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("cache_hits").unwrap().as_f64(), Some(1.0));
        // Round-trips through the strict parser.
        let back = common::json::Json::parse(&j.render_pretty()).unwrap();
        assert_eq!(back.get("submitted").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn json_form_before_any_point_has_null_timings() {
        let m = SweepMetrics::new(1);
        let j = m.to_json();
        assert!(j.get("mean_point_secs").unwrap().is_null());
        assert!(j.get("max_point_secs").unwrap().is_null());
    }

    #[test]
    fn utilization_is_bounded() {
        let m = SweepMetrics::new(4);
        m.record_point(0, Duration::from_secs(1000));
        assert!(m.worker_utilization() <= 1.0);
        assert!(m.worker_utilization() >= 0.0);
    }
}
