//! Deterministic fault injection for the sweep runtime.
//!
//! A [`FaultPlan`] is a seeded, pure function from `(point, attempt)` to
//! an optional [`FaultKind`]. The executor consults it before every
//! attempt of every unique point, so an injected fault fires at exactly
//! the same place no matter how many worker threads run the sweep — the
//! recovery paths (retry, cache repopulation, waiter wakeup) become
//! testable in CI without real flakiness.
//!
//! Faults are **transient by default**: they fire only on a point's
//! first attempt (`faulted_attempts == 1`), so an executor with retries
//! enabled recovers the true value and the sweep output stays
//! byte-identical to a fault-free run. Raising `faulted_attempts` makes
//! faults sticky, which is how the give-up path is exercised.
//!
//! [`FaultKind::PoisonCache`] is delivered through a thread-local armed
//! by the executor and consumed inside [`crate::ShardedCache`]'s compute
//! path — the panic happens *after* the in-flight marker is installed,
//! which is the only way to exercise the waiter-sees-panic protocol
//! from outside the cache.

use std::cell::Cell;
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the point's computation (before the real work).
    Panic,
    /// Sleep for the given duration inside the timed attempt, so a
    /// per-point deadline can trip on it.
    Delay(Duration),
    /// Panic inside the cache's compute path, after the in-flight
    /// marker is installed (exercises waiter wakeup + slot removal).
    PoisonCache,
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    panic_permille: u32,
    delay_permille: u32,
    poison_permille: u32,
    delay: Duration,
    /// Attempts `< faulted_attempts` are eligible for injection.
    faulted_attempts: u32,
    /// Point indices that always panic (subject to `faulted_attempts`),
    /// regardless of the rate roll.
    forced_panics: Vec<usize>,
}

impl FaultPlan {
    /// An empty plan: no faults, any seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_permille: 0,
            delay_permille: 0,
            poison_permille: 0,
            delay: Duration::from_millis(50),
            faulted_attempts: 1,
            forced_panics: Vec::new(),
        }
    }

    /// Fraction of points (0.0–1.0) whose computation panics.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_permille = permille(rate);
        self
    }

    /// Fraction of points delayed by `delay` inside the timed attempt.
    pub fn with_delay_rate(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_permille = permille(rate);
        self.delay = delay;
        self
    }

    /// Fraction of points whose cache entry is poisoned mid-flight.
    pub fn with_poison_rate(mut self, rate: f64) -> Self {
        self.poison_permille = permille(rate);
        self
    }

    /// Specific point indices that always panic (for targeted tests).
    pub fn with_forced_panics(mut self, points: &[usize]) -> Self {
        self.forced_panics = points.to_vec();
        self
    }

    /// How many attempts of a faulted point are injected. The default 1
    /// makes every fault transient (the first retry succeeds);
    /// `u32::MAX` makes faults permanent (exercises the give-up path).
    pub fn with_faulted_attempts(mut self, attempts: u32) -> Self {
        self.faulted_attempts = attempts;
        self
    }

    /// Whether this plan can ever inject anything.
    pub fn is_noop(&self) -> bool {
        self.panic_permille == 0
            && self.delay_permille == 0
            && self.poison_permille == 0
            && self.forced_panics.is_empty()
    }

    /// The fault (if any) to inject into `point`'s attempt number
    /// `attempt`. Pure: depends only on the plan and the arguments.
    pub fn decide(&self, point: usize, attempt: u32) -> Option<FaultKind> {
        if attempt >= self.faulted_attempts {
            return None;
        }
        if self.forced_panics.contains(&point) {
            return Some(FaultKind::Panic);
        }
        let roll = (mix(self.seed, point as u64) % 1000) as u32;
        if roll < self.panic_permille {
            Some(FaultKind::Panic)
        } else if roll < self.panic_permille + self.delay_permille {
            Some(FaultKind::Delay(self.delay))
        } else if roll < self.panic_permille + self.delay_permille + self.poison_permille {
            Some(FaultKind::PoisonCache)
        } else {
            None
        }
    }
}

fn permille(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 1000.0).round() as u32
}

/// SplitMix64-style avalanche over `(seed, point)`.
fn mix(seed: u64, point: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(point.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

std::thread_local! {
    /// Set by the executor before an attempt whose fault is
    /// [`FaultKind::PoisonCache`]; consumed (and fired) by the cache.
    static CACHE_POISON_ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Arms a cache-poison fault for the current thread's next computation.
pub fn arm_cache_poison() {
    CACHE_POISON_ARMED.with(|c| c.set(true));
}

/// Clears any armed cache-poison fault (the executor calls this after
/// every attempt so a fault never leaks onto an unrelated point that
/// happens to run on the same worker).
pub fn disarm_cache_poison() {
    CACHE_POISON_ARMED.with(|c| c.set(false));
}

/// Panics if a cache-poison fault is armed, consuming it. Called by
/// [`crate::ShardedCache::get_or_compute`] after the in-flight marker
/// is installed.
pub fn fire_armed_cache_poison() {
    if CACHE_POISON_ARMED.with(|c| c.replace(false)) {
        panic!("fault injection: poisoned cache entry");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_transient() {
        let plan = FaultPlan::new(7).with_panic_rate(0.3);
        for point in 0..100 {
            assert_eq!(plan.decide(point, 0), plan.decide(point, 0));
            // Transient: nothing fires from the first retry onward.
            assert_eq!(plan.decide(point, 1), None);
        }
    }

    #[test]
    fn rates_roughly_match_over_many_points() {
        let plan = FaultPlan::new(42).with_panic_rate(0.25);
        let fired = (0..2000)
            .filter(|&p| plan.decide(p, 0) == Some(FaultKind::Panic))
            .count();
        assert!((350..650).contains(&fired), "fired {fired}/2000");
    }

    #[test]
    fn kinds_partition_the_roll_space() {
        let plan = FaultPlan::new(3)
            .with_panic_rate(0.2)
            .with_delay_rate(0.2, Duration::from_millis(5))
            .with_poison_rate(0.2);
        let mut counts = [0usize; 4];
        for p in 0..3000 {
            match plan.decide(p, 0) {
                Some(FaultKind::Panic) => counts[0] += 1,
                Some(FaultKind::Delay(_)) => counts[1] += 1,
                Some(FaultKind::PoisonCache) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "kind {i} never chosen");
        }
    }

    #[test]
    fn forced_and_sticky_faults() {
        let plan = FaultPlan::new(0)
            .with_forced_panics(&[5])
            .with_faulted_attempts(u32::MAX);
        assert_eq!(plan.decide(5, 0), Some(FaultKind::Panic));
        assert_eq!(plan.decide(5, 99), Some(FaultKind::Panic));
        assert_eq!(plan.decide(6, 0), None);
        assert!(!plan.is_noop());
        assert!(FaultPlan::new(9).is_noop());
    }

    #[test]
    fn armed_poison_fires_once_then_clears() {
        disarm_cache_poison();
        arm_cache_poison();
        let r = std::panic::catch_unwind(fire_armed_cache_poison);
        assert!(r.is_err());
        // Consumed: a second fire is a no-op.
        fire_armed_cache_poison();
    }
}
