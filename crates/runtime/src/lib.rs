#![deny(missing_docs)]

//! Parallel sweep-execution engine for the multi-module GPU study.
//!
//! Cycle-level simulation points cost seconds each and the full
//! reproduction sweep is a few hundred of them — this crate is the
//! layer that runs that sweep as fast as the hardware allows while
//! keeping the output bit-identical to the historical serial runner:
//!
//! * [`ThreadPool`] — a hand-rolled, std-only work-stealing pool
//!   (per-worker deques, injector queue, panic-isolated jobs).
//! * [`ShardedCache`] — a lock-sharded memoization cache with in-flight
//!   deduplication: one computation per key no matter how many threads
//!   ask, and no poisoning when a computation panics.
//! * [`SweepExecutor`] — schedules keyed points onto the pool, fans a
//!   shared simulation out to every submission that depends on it, and
//!   collects results by submission index so parallel order never leaks
//!   into output.
//! * [`SweepMetrics`] — live counters (completed / cached / in-flight /
//!   failed / retried / timed-out / gave-up), per-point wall times,
//!   worker utilization, a periodic stderr progress line, and a final
//!   summary table.
//! * [`RetryPolicy`] — per-point retries with bounded exponential
//!   backoff and a cooperative deadline; panicked or timed-out points
//!   recompute on a fresh cache slot instead of poisoning the report.
//! * [`FaultPlan`] — deterministic, seeded fault injection (forced
//!   panics, artificial latency, poisoned cache entries) so every
//!   recovery path above is testable in CI without real flakiness.
//!
//! # Examples
//!
//! ```
//! use runtime::{ShardedCache, SweepExecutor};
//! use std::sync::Arc;
//!
//! let executor = SweepExecutor::new(4);
//! let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::for_threads(4));
//! // Nine points over three unique keys: each key simulates once.
//! let items: Vec<(u64, u64)> = (0..9).map(|i| (i % 3, i)).collect();
//! let report = executor.run_keyed(&cache, items, |key, _item| key * 100);
//! let values = report.try_into_values().expect("no point failed");
//! assert_eq!(values[0], 0);
//! assert_eq!(values[4], 100);
//! assert_eq!(values[8], 200);
//! assert_eq!(cache.len(), 3);
//! ```

pub mod cache;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod pool;

pub use cache::{ComputePanicked, ShardedCache};
pub use executor::{
    PointOutcome, RetryPolicy, SweepError, SweepErrorKind, SweepExecutor, SweepReport,
};
pub use faults::{FaultKind, FaultPlan};
pub use metrics::SweepMetrics;
pub use pool::{PoolScope, ThreadPool};

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "MMGPU_THREADS";

/// Resolves the worker-thread count for a sweep.
///
/// Priority: an explicit request (e.g. a `--threads N` flag), then the
/// `MMGPU_THREADS` environment variable, then the machine's available
/// parallelism. The result is always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
        eprintln!("warning: ignoring unparsable {THREADS_ENV}={v:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
    }
}
