//! A lock-sharded concurrent memoization cache with in-flight
//! deduplication.
//!
//! The sweep executor runs many `(workload, config)` points in
//! parallel, and distinct experiment points frequently share a
//! simulation (energy-model knobs don't affect the performance run).
//! This cache gives every requester of the same key the **same**
//! computed value while guaranteeing the computation runs **once**,
//! even when several threads ask concurrently:
//!
//! * The key space is split across `shards` independent `Mutex<HashMap>`
//!   shards, so unrelated keys never contend on one lock.
//! * The first requester of a key installs an *in-flight* marker and
//!   computes outside the shard lock; concurrent requesters of the same
//!   key block on that marker's condvar instead of recomputing.
//! * If the computation panics, the marker is removed — the cache is
//!   **not poisoned**: waiters see the failure as an [`Err`] they can
//!   surface per-point, and a later request simply recomputes.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned to waiters whose computation panicked in the owning
/// thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputePanicked {
    /// Panic message of the owning computation, as best recoverable.
    pub message: String,
}

impl std::fmt::Display for ComputePanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cached computation panicked: {}", self.message)
    }
}

impl std::error::Error for ComputePanicked {}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

enum Slot<V> {
    /// Computation owned by some thread; waiters block on the handle.
    InFlight(Arc<Flight<V>>),
    /// Finished value.
    Ready(V),
}

struct Flight<V> {
    outcome: Mutex<Option<Result<V, ComputePanicked>>>,
    done: Condvar,
}

impl<V: Clone> Flight<V> {
    fn wait(&self) -> Result<V, ComputePanicked> {
        let mut outcome = self.outcome.lock().unwrap();
        while outcome.is_none() {
            outcome = self.done.wait(outcome).unwrap();
        }
        outcome.as_ref().unwrap().clone()
    }
}

/// Deterministic shard router (the per-process `RandomState` seeds of
/// `HashMap` would still be *correct*, but a fixed hasher keeps shard
/// assignment reproducible run to run, which makes contention profiles
/// stable and debuggable).
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.state
    }
    fn write(&mut self, bytes: &[u8]) {
        // FxHash-style multiply-rotate mix.
        for &b in bytes {
            self.state =
                (self.state.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }
}

/// A concurrent memoization map sharded over independent locks.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Slot<V>>>>,
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache with `shards` lock shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// A cache sized for `threads` concurrent requesters.
    pub fn for_threads(threads: usize) -> Self {
        // 4x the thread count keeps the collision probability of two
        // active threads on one shard lock low without bloating memory.
        Self::new(threads.saturating_mul(4).clamp(1, 256))
    }

    fn shard_of(&self, key: &K) -> &Mutex<HashMap<K, Slot<V>>> {
        let hash = BuildHasherDefault::<FxHasher>::default().hash_one(key);
        let i = (hash as usize) & (self.shards.len() - 1);
        &self.shards[i]
    }

    /// Number of finished entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no finished entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached value for `key`, if finished.
    pub fn get(&self, key: &K) -> Option<V> {
        match self.shard_of(key).lock().unwrap().get(key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// The value for `key`, computing it with `compute` on a miss.
    ///
    /// Exactly one thread computes each key; concurrent requesters block
    /// until the owner publishes. If the owner panics, this call returns
    /// `Err` for the owner *and* all waiters, the in-flight marker is
    /// removed (no poisoning), and a subsequent call recomputes.
    pub fn get_or_compute(
        &self,
        key: &K,
        compute: impl FnOnce() -> V,
    ) -> Result<V, ComputePanicked> {
        // Fast path / claim.
        let flight = {
            let mut shard = self.shard_of(key).lock().unwrap();
            match shard.get(key) {
                Some(Slot::Ready(v)) => {
                    trace::count("cache.hit", 1);
                    return Ok(v.clone());
                }
                Some(Slot::InFlight(flight)) => {
                    let flight = Arc::clone(flight);
                    drop(shard);
                    trace::count("cache.in_flight_wait", 1);
                    let _span = trace::span("cache.wait");
                    return flight.wait();
                }
                None => {
                    trace::count("cache.miss", 1);
                    let flight = Arc::new(Flight {
                        outcome: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    shard.insert(key.clone(), Slot::InFlight(Arc::clone(&flight)));
                    flight
                }
            }
        };

        // Own the computation, outside any shard lock. An armed
        // cache-poison fault (see [`crate::faults`]) fires here — after
        // the in-flight claim — so injected failures exercise the same
        // waiter-wakeup path as a real panicking computation.
        let result = {
            let _span = trace::span("cache.compute");
            catch_unwind(AssertUnwindSafe(|| {
                crate::faults::fire_armed_cache_poison();
                compute()
            }))
        };
        let outcome = match result {
            Ok(v) => {
                let mut shard = self.shard_of(key).lock().unwrap();
                shard.insert(key.clone(), Slot::Ready(v.clone()));
                Ok(v)
            }
            Err(payload) => {
                let mut shard = self.shard_of(key).lock().unwrap();
                shard.remove(key);
                Err(ComputePanicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        let mut slot = flight.outcome.lock().unwrap();
        *slot = Some(outcome.clone());
        drop(slot);
        flight.done.notify_all();
        outcome
    }

    /// Like [`Self::get_or_compute`], but re-raises the owner's panic in
    /// the calling thread instead of returning it as a value. Waiters on
    /// a panicked owner also panic.
    pub fn get_or_compute_unwrap(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        match self.get_or_compute(key, compute) {
            Ok(v) => v,
            Err(e) => resume_unwind(Box::new(e.message)),
        }
    }

    /// Removes the finished entry for `key`, returning whether one was
    /// present. In-flight computations are left alone: their owner
    /// still publishes to waiters and installs the result when done.
    ///
    /// External batching layers (the `xpd` daemon) use this to keep the
    /// cache as a pure in-flight dedup point — once a result has been
    /// persisted to the disk store, the memory copy is dropped so the
    /// store's LRU size cap remains the only capacity policy.
    pub fn remove(&self, key: &K) -> bool {
        let mut shard = self.shard_of(key).lock().unwrap();
        match shard.get(key) {
            Some(Slot::Ready(_)) => {
                shard.remove(key);
                true
            }
            _ => false,
        }
    }

    /// Removes every entry (finished and failed alike). In-flight
    /// owners still publish to their waiters through the detached
    /// flight handle; they just no longer populate the cache.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn computes_once_per_key() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(8);
        let calls = AtomicU64::new(0);
        for i in 0..100 {
            let v = cache
                .get_or_compute(&(i % 10), || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    (i % 10) * 2
                })
                .unwrap();
            assert_eq!(v, (i % 10) * 2);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert_eq!(cache.len(), 10);
    }

    #[test]
    fn concurrent_requesters_share_one_computation() {
        let cache: Arc<ShardedCache<u32, Arc<Vec<u8>>>> = Arc::new(ShardedCache::new(4));
        let calls = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache
                        .get_or_compute(&7, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Arc::new(vec![1, 2, 3])
                        })
                        .unwrap()
                })
            })
            .collect();
        let values: Vec<Arc<Vec<u8>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // Everyone got the same allocation, not equal copies.
        for v in &values {
            assert!(Arc::ptr_eq(v, &values[0]));
        }
    }

    #[test]
    fn panicking_computation_does_not_poison() {
        let cache: ShardedCache<u8, u8> = ShardedCache::new(2);
        let r = cache.get_or_compute(&1, || panic!("boom"));
        assert!(r.is_err());
        assert!(r.unwrap_err().message.contains("boom"));
        // Same key recomputes cleanly afterwards.
        assert_eq!(cache.get_or_compute(&1, || 42).unwrap(), 42);
        assert_eq!(cache.get(&1), Some(42));
    }
}
