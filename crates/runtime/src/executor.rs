//! The sweep executor: schedules simulation points onto the pool,
//! deduplicates shared work through the sharded cache, and collects
//! results in submission order so parallel output is bit-identical to
//! serial output.

use crate::cache::{panic_message, ShardedCache};
use crate::metrics::SweepMetrics;
use crate::pool::{current_worker_index, ThreadPool};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A point that failed instead of producing a value (its job panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Panic message of the failed point.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point failed: {}", self.message)
    }
}

impl std::error::Error for SweepError {}

/// Per-point outcome: the computed value or the panic that replaced it.
pub type PointOutcome<O> = Result<O, SweepError>;

/// Result of one sweep: submission-ordered outcomes plus the metrics
/// gathered while running.
#[derive(Debug)]
pub struct SweepReport<O> {
    /// One outcome per submitted point, in submission order.
    pub outcomes: Vec<PointOutcome<O>>,
    /// Counters and timings for the sweep.
    pub metrics: Arc<SweepMetrics>,
}

impl<O> SweepReport<O> {
    /// Unwraps every outcome, panicking with the first error message if
    /// any point failed.
    pub fn into_values(self) -> Vec<O> {
        self.outcomes
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(e) => panic!("{e}"),
            })
            .collect()
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|r| r.is_err()).count()
    }

    /// The stable serialized form of the report: point/failure counts,
    /// the distinct failure messages (deduplicated, submission order),
    /// and the sweep's [`SweepMetrics`] under `"metrics"`.
    pub fn to_json(&self) -> common::json::Json {
        use common::json::Json;
        let mut errors = Json::array();
        let mut seen: Vec<&str> = Vec::new();
        for outcome in &self.outcomes {
            if let Err(e) = outcome {
                if !seen.contains(&e.message.as_str()) {
                    seen.push(&e.message);
                    errors.push(e.message.as_str());
                }
            }
        }
        let mut o = Json::object();
        o.insert("points", self.outcomes.len());
        o.insert("failures", self.failures());
        o.insert("errors", errors);
        o.insert("metrics", self.metrics.to_json());
        o
    }
}

/// Submission-indexed result collector: jobs write into their slot and
/// the submitting thread blocks until every slot is filled.
struct Collector<O> {
    slots: Mutex<CollectorState<O>>,
    done: Condvar,
}

struct CollectorState<O> {
    results: Vec<Option<PointOutcome<O>>>,
    remaining: usize,
}

impl<O> Collector<O> {
    fn new(n: usize) -> Self {
        Collector {
            slots: Mutex::new(CollectorState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        }
    }

    fn fill(&self, indices: &[usize], outcome: &PointOutcome<O>)
    where
        O: Clone,
    {
        let mut state = self.slots.lock().unwrap();
        for &i in indices {
            debug_assert!(state.results[i].is_none(), "slot {i} filled twice");
            state.results[i] = Some(outcome.clone());
            state.remaining -= 1;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until all slots are filled, invoking `tick` periodically
    /// (progress reporting).
    fn wait(&self, mut tick: impl FnMut()) -> Vec<PointOutcome<O>> {
        let mut state = self.slots.lock().unwrap();
        while state.remaining > 0 {
            let (next, _timeout) = self
                .done
                .wait_timeout(state, Duration::from_millis(100))
                .unwrap();
            state = next;
            tick();
        }
        state
            .results
            .drain(..)
            .map(|r| r.expect("slot filled"))
            .collect()
    }
}

/// Schedules `(key, item)` simulation points over a work-stealing pool
/// with cache-backed deduplication and deterministic collection.
///
/// With one thread the executor runs points inline on the calling
/// thread in submission order — the exact serial semantics the `xp`
/// harness had before this crate existed. With more threads, points run
/// concurrently, but results are still collected by submission index,
/// so downstream output is identical.
#[derive(Debug)]
pub struct SweepExecutor {
    pool: Option<ThreadPool>,
    threads: usize,
    progress: bool,
}

impl SweepExecutor {
    /// An executor with `threads` workers (1 = serial, no pool).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        SweepExecutor {
            pool: (threads > 1).then(|| ThreadPool::new(threads)),
            threads,
            progress: false,
        }
    }

    /// Enables or disables the periodic stderr progress line.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Number of worker threads (1 means serial execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one closure per item, collecting outcomes in submission
    /// order. Panics in `f` become per-point [`SweepError`]s.
    pub fn run<I, O, F>(&self, items: Vec<I>, f: F) -> SweepReport<O>
    where
        I: Send + 'static,
        O: Clone + Send + 'static,
        F: Fn(&I) -> O + Send + Sync + 'static,
    {
        // Uncached run: every item is its own unique "key" by index.
        let total = items.len();
        let unique = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| (i, vec![i], item))
            .collect();
        self.execute(unique, total, move |_key: &usize, item: &I| f(item))
    }

    /// Runs keyed points with deduplication: items sharing a key are
    /// simulated once (first submission wins; the cache also serves
    /// hits from earlier sweeps) and every submission index receives the
    /// shared value. Outcomes are in submission order.
    pub fn run_keyed<K, I, O, F>(
        &self,
        cache: &Arc<ShardedCache<K, O>>,
        items: Vec<(K, I)>,
        f: F,
    ) -> SweepReport<O>
    where
        K: Hash + Eq + Clone + Send + Sync + 'static,
        I: Send + 'static,
        O: Clone + Send + Sync + 'static,
        F: Fn(&K, &I) -> O + Send + Sync + 'static,
    {
        let total = items.len();
        let cache = Arc::clone(cache);
        let f = Arc::new(f);

        // Group submission indices by key, keeping the first item as the
        // representative input and preserving first-submission order of
        // the unique keys (scheduling order matters for determinism of
        // *side effects* like cache fill order in serial mode, and for
        // giving long-pole jobs an early start in parallel mode).
        let mut unique: Vec<(K, Vec<usize>, I)> = Vec::new();
        let mut by_key: std::collections::HashMap<K, usize> = std::collections::HashMap::new();
        for (i, (key, item)) in items.into_iter().enumerate() {
            match by_key.get(&key) {
                Some(&slot) => unique[slot].1.push(i),
                None => {
                    by_key.insert(key.clone(), unique.len());
                    unique.push((key, vec![i], item));
                }
            }
        }

        let hit_counter = {
            let cache = Arc::clone(&cache);
            move |key: &K| cache.get(key).is_some()
        };
        let compute = move |key: &K, item: &I| cache.get_or_compute_unwrap(key, || f(key, item));
        self.execute_with_hits(unique, total, compute, hit_counter)
    }

    fn execute<K, I, O, F>(
        &self,
        unique: Vec<(K, Vec<usize>, I)>,
        total: usize,
        f: F,
    ) -> SweepReport<O>
    where
        K: Send + 'static,
        I: Send + 'static,
        O: Clone + Send + 'static,
        F: Fn(&K, &I) -> O + Send + Sync + 'static,
    {
        self.execute_with_hits(unique, total, f, |_| false)
    }

    fn execute_with_hits<K, I, O, F, H>(
        &self,
        unique: Vec<(K, Vec<usize>, I)>,
        total: usize,
        f: F,
        is_cache_hit: H,
    ) -> SweepReport<O>
    where
        K: Send + 'static,
        I: Send + 'static,
        O: Clone + Send + 'static,
        F: Fn(&K, &I) -> O + Send + Sync + 'static,
        H: Fn(&K) -> bool + Send + Sync + 'static,
    {
        let metrics = Arc::new(SweepMetrics::new(self.threads));
        metrics.submitted.store(total, Ordering::Relaxed);
        let collector = Arc::new(Collector::new(total));
        let f = Arc::new(f);
        let is_cache_hit = Arc::new(is_cache_hit);

        let run_point = {
            let metrics = Arc::clone(&metrics);
            let collector = Arc::clone(&collector);
            let progress = self.progress;
            move |key: K, indices: Vec<usize>, item: I| {
                let hit = is_cache_hit(&key);
                let start = Instant::now();
                metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                let outcome = match catch_unwind(AssertUnwindSafe(|| f(&key, &item))) {
                    Ok(v) => Ok(v),
                    Err(payload) => Err(SweepError {
                        message: panic_message(payload.as_ref()),
                    }),
                };
                metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                metrics
                    .completed
                    .fetch_add(indices.len(), Ordering::Relaxed);
                if outcome.is_err() {
                    metrics.errors.fetch_add(indices.len(), Ordering::Relaxed);
                }
                if hit {
                    // Every submission index was served by the cache.
                    metrics
                        .cache_hits
                        .fetch_add(indices.len(), Ordering::Relaxed);
                } else {
                    let worker = current_worker_index().unwrap_or(0);
                    metrics.record_point(worker, start.elapsed());
                    // Duplicate submissions beyond the first ride the
                    // fresh result like cache hits.
                    metrics
                        .cache_hits
                        .fetch_add(indices.len() - 1, Ordering::Relaxed);
                }
                collector.fill(&indices, &outcome);
                if progress {
                    metrics.maybe_print_progress(Duration::from_millis(500));
                }
            }
        };

        match &self.pool {
            None => {
                for (key, indices, item) in unique {
                    run_point(key, indices, item);
                }
            }
            Some(pool) => {
                let run_point = Arc::new(run_point);
                for (key, indices, item) in unique {
                    let run_point = Arc::clone(&run_point);
                    pool.spawn(move || run_point(key, indices, item));
                }
            }
        }

        let outcomes = collector.wait(|| {
            if self.progress {
                metrics.maybe_print_progress(Duration::from_millis(500));
            }
        });
        SweepReport { outcomes, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_captures_failures_and_metrics() {
        let executor = SweepExecutor::new(1);
        let report = executor.run(vec![1u32, 2, 3], |&n| {
            if n == 2 {
                panic!("boom on {n}");
            }
            n * 10
        });
        assert_eq!(report.failures(), 1);
        let j = report.to_json();
        assert_eq!(j.keys(), vec!["points", "failures", "errors", "metrics"]);
        assert_eq!(j.get("points").unwrap().as_f64(), Some(3.0));
        assert_eq!(j.get("failures").unwrap().as_f64(), Some(1.0));
        let errors = j.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].as_str().unwrap().contains("boom on 2"));
        assert!(j.get("metrics").unwrap().get("submitted").is_some());
        // The serialized report survives the strict parser.
        assert!(common::json::Json::parse(&j.render()).is_ok());
    }
}
