//! The sweep executor: schedules simulation points onto the pool,
//! deduplicates shared work through the sharded cache, and collects
//! results in submission order so parallel output is bit-identical to
//! serial output.

use crate::cache::{panic_message, ShardedCache};
use crate::faults::{self, FaultKind, FaultPlan};
use crate::metrics::SweepMetrics;
use crate::pool::{current_worker_index, ThreadPool};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a sweep point failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepErrorKind {
    /// The point's computation panicked on its final attempt.
    Panic,
    /// The point's final attempt finished after the per-point deadline.
    DeadlineExceeded,
}

/// A point that failed instead of producing a value, after exhausting
/// its [`RetryPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Panic message (or deadline description) of the failed point.
    pub message: String,
    /// What kind of failure ended the point.
    pub kind: SweepErrorKind,
    /// Total attempts made (1 = no retries were available or needed).
    pub attempts: u32,
}

impl SweepError {
    /// A panicked point.
    pub fn panicked(message: impl Into<String>, attempts: u32) -> Self {
        SweepError {
            message: message.into(),
            kind: SweepErrorKind::Panic,
            attempts,
        }
    }

    /// A point whose attempt outlived the per-point deadline.
    pub fn timed_out(elapsed: Duration, deadline: Duration, attempts: u32) -> Self {
        SweepError {
            message: format!(
                "point exceeded deadline: {:.3}s > {:.3}s",
                elapsed.as_secs_f64(),
                deadline.as_secs_f64()
            ),
            kind: SweepErrorKind::DeadlineExceeded,
            attempts,
        }
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point failed: {}", self.message)
    }
}

impl std::error::Error for SweepError {}

/// How the executor retries failed sweep points.
///
/// The default policy is one attempt, no backoff, no deadline — the
/// exact semantics the executor had before retries existed.
///
/// The deadline is **cooperative**: a std-only runtime cannot preempt a
/// running closure, so the attempt's elapsed time is checked after it
/// completes. A late-but-successful attempt is counted as a timeout and
/// retried (the retry typically hits the cache the slow attempt just
/// filled, so it is cheap); a late attempt on the last allowed try
/// fails the point with [`SweepErrorKind::DeadlineExceeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per point (minimum 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff << (n - 1)`, capped at
    /// `max_backoff`.
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Per-point deadline; `None` disables timeout detection.
    pub point_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(1),
            point_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` retries (so `retries + 1` attempts)
    /// with a small exponential backoff.
    pub fn retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1).max(1),
            backoff: Duration::from_millis(10),
            ..RetryPolicy::default()
        }
    }

    /// Sets the per-point deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.point_deadline = Some(deadline);
        self
    }

    /// The sleep before attempt number `attempt` (1-based retry index).
    fn backoff_before(&self, attempt: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff
            .saturating_mul(1 << shift)
            .min(self.max_backoff)
    }
}

/// Per-point outcome: the computed value or the panic that replaced it.
pub type PointOutcome<O> = Result<O, SweepError>;

/// Result of one sweep: submission-ordered outcomes plus the metrics
/// gathered while running.
#[derive(Debug)]
pub struct SweepReport<O> {
    /// One outcome per submitted point, in submission order.
    pub outcomes: Vec<PointOutcome<O>>,
    /// Counters and timings for the sweep.
    pub metrics: Arc<SweepMetrics>,
}

impl<O> SweepReport<O> {
    /// Every outcome's value, or the first failure if any point failed.
    pub fn try_into_values(self) -> Result<Vec<O>, SweepError> {
        self.outcomes.into_iter().collect()
    }

    /// The first failed outcome, if any point failed.
    pub fn first_error(&self) -> Option<&SweepError> {
        self.outcomes.iter().find_map(|r| r.as_ref().err())
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|r| r.is_err()).count()
    }

    /// The stable serialized form of the report: point/failure counts,
    /// the distinct failure messages (deduplicated, submission order),
    /// and the sweep's [`SweepMetrics`] under `"metrics"`.
    pub fn to_json(&self) -> common::json::Json {
        use common::json::Json;
        let mut errors = Json::array();
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for outcome in &self.outcomes {
            if let Err(e) = outcome {
                if seen.insert(e.message.as_str()) {
                    errors.push(e.message.as_str());
                }
            }
        }
        let mut o = Json::object();
        o.insert("points", self.outcomes.len());
        o.insert("failures", self.failures());
        o.insert("errors", errors);
        o.insert("metrics", self.metrics.to_json());
        o
    }
}

/// Submission-indexed result collector: jobs write into their slot and
/// the submitting thread blocks until every slot is filled.
struct Collector<O> {
    slots: Mutex<CollectorState<O>>,
    done: Condvar,
}

struct CollectorState<O> {
    results: Vec<Option<PointOutcome<O>>>,
    remaining: usize,
}

impl<O> Collector<O> {
    fn new(n: usize) -> Self {
        Collector {
            slots: Mutex::new(CollectorState {
                results: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        }
    }

    fn fill(&self, indices: &[usize], outcome: &PointOutcome<O>)
    where
        O: Clone,
    {
        let mut state = self.slots.lock().unwrap();
        for &i in indices {
            debug_assert!(state.results[i].is_none(), "slot {i} filled twice");
            state.results[i] = Some(outcome.clone());
            state.remaining -= 1;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until all slots are filled, invoking `tick` periodically
    /// (progress reporting).
    fn wait(&self, mut tick: impl FnMut()) -> Vec<PointOutcome<O>> {
        let mut state = self.slots.lock().unwrap();
        while state.remaining > 0 {
            let (next, _timeout) = self
                .done
                .wait_timeout(state, Duration::from_millis(100))
                .unwrap();
            state = next;
            tick();
        }
        state
            .results
            .drain(..)
            .map(|r| r.expect("slot filled"))
            .collect()
    }
}

/// Schedules `(key, item)` simulation points over a work-stealing pool
/// with cache-backed deduplication and deterministic collection.
///
/// With one thread the executor runs points inline on the calling
/// thread in submission order — the exact serial semantics the `xp`
/// harness had before this crate existed. With more threads, points run
/// concurrently, but results are still collected by submission index,
/// so downstream output is identical.
#[derive(Debug)]
pub struct SweepExecutor {
    pool: Option<ThreadPool>,
    threads: usize,
    progress: bool,
    policy: RetryPolicy,
    faults: Option<Arc<FaultPlan>>,
}

impl SweepExecutor {
    /// An executor with `threads` workers (1 = serial, no pool).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        SweepExecutor {
            pool: (threads > 1).then(|| ThreadPool::new(threads)),
            threads,
            progress: false,
            policy: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Enables or disables the periodic stderr progress line.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Sets the retry policy for subsequent sweeps.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.set_retry_policy(policy);
        self
    }

    /// Arms a fault plan: every attempt of every point consults it.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.set_faults(Some(plan));
        self
    }

    /// In-place form of [`Self::with_progress`]. Long-lived daemons
    /// (the `xpd` server) disable the stderr progress line so sweep
    /// chatter never interleaves with their own structured logging.
    pub fn set_progress(&mut self, progress: bool) {
        self.progress = progress;
    }

    /// In-place form of [`Self::with_retry_policy`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = RetryPolicy {
            max_attempts: policy.max_attempts.max(1),
            ..policy
        };
    }

    /// In-place form of [`Self::with_faults`] (`None` disarms).
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan.filter(|p| !p.is_noop()).map(Arc::new);
    }

    /// Number of worker threads (1 means serial execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one closure per item, collecting outcomes in submission
    /// order. Panics in `f` become per-point [`SweepError`]s.
    pub fn run<I, O, F>(&self, items: Vec<I>, f: F) -> SweepReport<O>
    where
        I: Send + 'static,
        O: Clone + Send + 'static,
        F: Fn(&I) -> O + Send + Sync + 'static,
    {
        // Uncached run: every item is its own unique "key" by index.
        let total = items.len();
        let unique = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| (i, vec![i], item))
            .collect();
        self.execute(unique, total, move |_key: &usize, item: &I| f(item))
    }

    /// Runs keyed points with deduplication: items sharing a key are
    /// simulated once (first submission wins; the cache also serves
    /// hits from earlier sweeps) and every submission index receives the
    /// shared value. Outcomes are in submission order.
    pub fn run_keyed<K, I, O, F>(
        &self,
        cache: &Arc<ShardedCache<K, O>>,
        items: Vec<(K, I)>,
        f: F,
    ) -> SweepReport<O>
    where
        K: Hash + Eq + Clone + Send + Sync + 'static,
        I: Send + 'static,
        O: Clone + Send + Sync + 'static,
        F: Fn(&K, &I) -> O + Send + Sync + 'static,
    {
        let total = items.len();
        let cache = Arc::clone(cache);
        let f = Arc::new(f);

        // Group submission indices by key, keeping the first item as the
        // representative input and preserving first-submission order of
        // the unique keys (scheduling order matters for determinism of
        // *side effects* like cache fill order in serial mode, and for
        // giving long-pole jobs an early start in parallel mode).
        let mut unique: Vec<(K, Vec<usize>, I)> = Vec::new();
        let mut by_key: std::collections::HashMap<K, usize> = std::collections::HashMap::new();
        for (i, (key, item)) in items.into_iter().enumerate() {
            match by_key.get(&key) {
                Some(&slot) => unique[slot].1.push(i),
                None => {
                    by_key.insert(key.clone(), unique.len());
                    unique.push((key, vec![i], item));
                }
            }
        }

        let hit_counter = {
            let cache = Arc::clone(&cache);
            move |key: &K| cache.get(key).is_some()
        };
        let compute = move |key: &K, item: &I| cache.get_or_compute_unwrap(key, || f(key, item));
        self.execute_with_hits(unique, total, compute, hit_counter)
    }

    fn execute<K, I, O, F>(
        &self,
        unique: Vec<(K, Vec<usize>, I)>,
        total: usize,
        f: F,
    ) -> SweepReport<O>
    where
        K: Send + 'static,
        I: Send + 'static,
        O: Clone + Send + 'static,
        F: Fn(&K, &I) -> O + Send + Sync + 'static,
    {
        self.execute_with_hits(unique, total, f, |_| false)
    }

    fn execute_with_hits<K, I, O, F, H>(
        &self,
        unique: Vec<(K, Vec<usize>, I)>,
        total: usize,
        f: F,
        is_cache_hit: H,
    ) -> SweepReport<O>
    where
        K: Send + 'static,
        I: Send + 'static,
        O: Clone + Send + 'static,
        F: Fn(&K, &I) -> O + Send + Sync + 'static,
        H: Fn(&K) -> bool + Send + Sync + 'static,
    {
        let metrics = Arc::new(SweepMetrics::new(self.threads));
        metrics.submitted.store(total, Ordering::Relaxed);
        let collector = Arc::new(Collector::new(total));
        let f = Arc::new(f);
        let is_cache_hit = Arc::new(is_cache_hit);

        let run_point = {
            let metrics = Arc::clone(&metrics);
            let collector = Arc::clone(&collector);
            let progress = self.progress;
            let policy = self.policy;
            let faults = self.faults.clone();
            move |key: K, indices: Vec<usize>, item: I| {
                let hit = is_cache_hit(&key);
                // Fault decisions key on the first submission index:
                // stable across thread counts and duplicate submissions.
                let point = indices[0];
                let _point_span = trace::span("executor.point");
                let start = Instant::now();
                metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                let mut attempt: u32 = 0;
                let outcome = loop {
                    let fault = faults.as_ref().and_then(|p| p.decide(point, attempt));
                    if fault == Some(FaultKind::PoisonCache) {
                        faults::arm_cache_poison();
                    }
                    let attempt_start = Instant::now();
                    let result = {
                        let _attempt_span = trace::span("executor.attempt");
                        catch_unwind(AssertUnwindSafe(|| {
                            match fault {
                                Some(FaultKind::Panic) => {
                                    panic!("fault injection: forced panic at point {point}")
                                }
                                Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                                _ => {}
                            }
                            f(&key, &item)
                        }))
                    };
                    faults::disarm_cache_poison();
                    let elapsed = attempt_start.elapsed();
                    let attempts = attempt + 1;
                    let attempt_outcome = match result {
                        Ok(v) => match policy.point_deadline {
                            Some(deadline) if elapsed > deadline => {
                                metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                                trace::count("executor.timeout", 1);
                                Err(SweepError::timed_out(elapsed, deadline, attempts))
                            }
                            _ => Ok(v),
                        },
                        Err(payload) => Err(SweepError::panicked(
                            panic_message(payload.as_ref()),
                            attempts,
                        )),
                    };
                    if attempt_outcome.is_ok() || attempts >= policy.max_attempts {
                        if attempt_outcome.is_err() {
                            metrics.gave_up.fetch_add(1, Ordering::Relaxed);
                            trace::count("executor.give_up", 1);
                        }
                        break attempt_outcome;
                    }
                    metrics.retries.fetch_add(1, Ordering::Relaxed);
                    trace::count("executor.retry", 1);
                    attempt += 1;
                    let backoff = policy.backoff_before(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                };
                metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                metrics
                    .completed
                    .fetch_add(indices.len(), Ordering::Relaxed);
                if outcome.is_err() {
                    metrics.errors.fetch_add(indices.len(), Ordering::Relaxed);
                }
                if hit {
                    // Every submission index was served by the cache.
                    metrics
                        .cache_hits
                        .fetch_add(indices.len(), Ordering::Relaxed);
                } else {
                    let worker = current_worker_index().unwrap_or(0);
                    metrics.record_point(worker, start.elapsed());
                    // Duplicate submissions beyond the first ride the
                    // fresh result like cache hits.
                    metrics
                        .cache_hits
                        .fetch_add(indices.len() - 1, Ordering::Relaxed);
                }
                collector.fill(&indices, &outcome);
                if progress {
                    metrics.maybe_print_progress(Duration::from_millis(500));
                }
            }
        };

        match &self.pool {
            None => {
                for (key, indices, item) in unique {
                    run_point(key, indices, item);
                }
            }
            Some(pool) => {
                let run_point = Arc::new(run_point);
                for (key, indices, item) in unique {
                    let run_point = Arc::clone(&run_point);
                    pool.spawn(move || run_point(key, indices, item));
                }
            }
        }

        let outcomes = collector.wait(|| {
            if self.progress {
                metrics.maybe_print_progress(Duration::from_millis(500));
            }
        });
        if self.progress {
            // Close an in-place progress line so the summary (or the
            // shell prompt) starts on a fresh line.
            metrics.finish_progress();
        }
        SweepReport { outcomes, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_captures_failures_and_metrics() {
        let executor = SweepExecutor::new(1);
        let report = executor.run(vec![1u32, 2, 3], |&n| {
            if n == 2 {
                panic!("boom on {n}");
            }
            n * 10
        });
        assert_eq!(report.failures(), 1);
        let j = report.to_json();
        assert_eq!(j.keys(), vec!["points", "failures", "errors", "metrics"]);
        assert_eq!(j.get("points").unwrap().as_f64(), Some(3.0));
        assert_eq!(j.get("failures").unwrap().as_f64(), Some(1.0));
        let errors = j.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].as_str().unwrap().contains("boom on 2"));
        assert!(j.get("metrics").unwrap().get("submitted").is_some());
        // The serialized report survives the strict parser.
        assert!(common::json::Json::parse(&j.render()).is_ok());
    }

    #[test]
    fn try_into_values_surfaces_the_first_failure() {
        let executor = SweepExecutor::new(1);
        let ok = executor.run(vec![1u32, 2], |&n| n);
        assert_eq!(ok.try_into_values().unwrap(), vec![1, 2]);

        let bad = executor.run(vec![1u32, 2, 3], |&n| {
            if n > 1 {
                panic!("bad point {n}");
            }
            n
        });
        assert!(bad.first_error().is_some());
        let err = bad.try_into_values().unwrap_err();
        assert_eq!(err.kind, SweepErrorKind::Panic);
        assert!(err.message.contains("bad point 2"), "{}", err.message);
    }

    #[test]
    fn error_dedup_preserves_submission_order() {
        let executor = SweepExecutor::new(1);
        let report = executor.run(vec![3u32, 1, 3, 2], |&n| -> u32 { panic!("err {n}") });
        let j = report.to_json();
        let errors: Vec<&str> = j
            .get("errors")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.as_str().unwrap())
            .collect();
        assert_eq!(errors, vec!["err 3", "err 1", "err 2"]);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let plan = FaultPlan::new(0).with_forced_panics(&[0, 2]);
        let executor = SweepExecutor::new(1)
            .with_retry_policy(RetryPolicy::retries(2))
            .with_faults(plan);
        let report = executor.run(vec![10u32, 20, 30], |&n| n * 2);
        let m = Arc::clone(&report.metrics);
        assert_eq!(report.try_into_values().unwrap(), vec![20, 40, 60]);
        assert_eq!(m.retries.load(Ordering::Relaxed), 2);
        assert_eq!(m.gave_up.load(Ordering::Relaxed), 0);
        assert_eq!(m.errors.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sticky_faults_exhaust_retries_and_give_up() {
        let plan = FaultPlan::new(0)
            .with_forced_panics(&[1])
            .with_faulted_attempts(u32::MAX);
        let executor = SweepExecutor::new(1)
            .with_retry_policy(RetryPolicy::retries(2))
            .with_faults(plan);
        let report = executor.run(vec![10u32, 20], |&n| n);
        assert_eq!(report.failures(), 1);
        let err = report.outcomes[1].as_ref().unwrap_err();
        assert_eq!(err.kind, SweepErrorKind::Panic);
        assert_eq!(err.attempts, 3);
        assert_eq!(report.metrics.retries.load(Ordering::Relaxed), 2);
        assert_eq!(report.metrics.gave_up.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn late_attempts_count_as_timeouts_and_retry() {
        let plan = FaultPlan::new(0).with_delay_rate(1.0, Duration::from_millis(40));
        let policy = RetryPolicy::retries(1).with_deadline(Duration::from_millis(15));
        let executor = SweepExecutor::new(1)
            .with_retry_policy(policy)
            .with_faults(plan);
        let report = executor.run(vec![1u32], |&n| n);
        // Attempt 0 is delayed past the deadline; the transient fault
        // clears and attempt 1 succeeds in time.
        assert_eq!(report.try_into_values().unwrap(), vec![1]);

        // With no retries left, the deadline fails the point.
        let plan = FaultPlan::new(0).with_delay_rate(1.0, Duration::from_millis(40));
        let executor = SweepExecutor::new(1)
            .with_retry_policy(RetryPolicy::default().with_deadline(Duration::from_millis(15)))
            .with_faults(plan);
        let report = executor.run(vec![1u32], |&n| n);
        let err = report.outcomes[0].as_ref().unwrap_err();
        assert_eq!(err.kind, SweepErrorKind::DeadlineExceeded);
        assert_eq!(report.metrics.timeouts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn poison_faults_recover_through_the_cache() {
        let plan = FaultPlan::new(0)
            .with_poison_rate(1.0)
            .with_faulted_attempts(1);
        let executor = SweepExecutor::new(1)
            .with_retry_policy(RetryPolicy::retries(1))
            .with_faults(plan);
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(4));
        let items: Vec<(u64, u64)> = (0..4).map(|i| (i, i)).collect();
        let report = executor.run_keyed(&cache, items, |&k, _| k + 100);
        assert_eq!(report.try_into_values().unwrap(), vec![100, 101, 102, 103]);
        assert_eq!(cache.len(), 4, "retries repopulate the poisoned slots");
    }
}
