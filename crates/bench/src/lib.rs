#![deny(missing_docs)]

//! Shared helpers for the Criterion benchmark harness.
//!
//! Each paper table/figure has a bench target that regenerates it at
//! smoke scale (the full-scale regeneration lives in the `xp` binaries,
//! which print the same rows the paper reports). Component benches cover
//! the hot paths of the simulator and energy model.

use workloads::{scaling_suite, WorkloadSpec};

/// A reduced workload set that keeps figure benches fast while spanning
/// both Table II categories.
pub fn bench_suite() -> Vec<WorkloadSpec> {
    scaling_suite()
        .into_iter()
        .filter(|w| ["Hotspot", "CoMD", "Stream", "Nekbone-12"].contains(&w.name))
        .collect()
}
