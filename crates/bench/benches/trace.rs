//! Cost of instrumentation: absent vs. disabled vs. recording.
//!
//! The contract the `trace` crate makes (see its crate docs) is that
//! instrumentation left in hot paths is effectively free while no
//! session is active — one relaxed atomic load and a branch per call.
//! This bench holds it to that:
//!
//! * `point/absent` — the raw workload, no instrumentation at all.
//! * `point/disabled` — the same workload wrapped in a span plus a
//!   counter bump, with **no** session installed. The target, printed
//!   alongside the criterion numbers, is **< 2% overhead vs. absent**
//!   on this microsecond-scale unit of work (real sweep points are
//!   milliseconds, where the same constant cost vanishes entirely).
//! * `point/recording` — with a live session, for scale: what `--trace`
//!   itself costs.
//! * `point/always-on` — the workload bumping a held always-on registry
//!   handle (`trace::live`): one counter add plus one histogram record
//!   per point, the serving daemon's continuous-telemetry cost. Same
//!   target as the disabled path: **< 2% overhead vs. absent**.
//! * `sweep/*` — the full executor path (pool + cache + retry loop,
//!   every span and counter in the stack) with tracing disabled vs. the
//!   same executor before instrumentation existed, approximated by the
//!   disabled path being all that runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use runtime::{ShardedCache, SweepExecutor};
use std::sync::Arc;
use std::time::Instant;

/// A deterministic stand-in for a short simulation: ~1 us of pure
/// arithmetic, the least favorable realistic grain for per-point
/// instrumentation overhead.
fn work(key: u64) -> u64 {
    let mut x = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..600 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    x
}

fn instrumented(key: u64) -> u64 {
    let _span = trace::span("bench.point");
    trace::count("bench.points", 1);
    work(key)
}

/// The always-on registry path: the handles are held (as the daemon
/// holds them), so each point pays exactly one relaxed counter add and
/// one log-bucketed histogram record — no name lookups, no clock reads.
fn live_instrumented(
    counter: &trace::live::LiveCounter,
    hist: &trace::live::LiveHistogram,
    key: u64,
) -> u64 {
    let out = work(key);
    counter.add(1);
    hist.record_nanos(out | 1);
    out
}

/// Mean nanoseconds per call of `f` over `iters` calls.
fn mean_nanos(iters: u64, mut f: impl FnMut(u64) -> u64) -> f64 {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_add(f(i));
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The documented guard: measure absent vs. disabled directly and print
/// the overhead next to its target. Criterion's per-bench numbers are
/// the record; this line is the verdict.
fn print_disabled_overhead() {
    assert!(!trace::enabled(), "no session may be active for this guard");
    const ITERS: u64 = 200_000;
    // Warm both paths, then interleave measurements to shield the
    // comparison from frequency drift.
    mean_nanos(ITERS / 10, work);
    mean_nanos(ITERS / 10, instrumented);
    let mut absent = f64::MAX;
    let mut disabled = f64::MAX;
    for _ in 0..3 {
        absent = absent.min(mean_nanos(ITERS, work));
        disabled = disabled.min(mean_nanos(ITERS, instrumented));
    }
    let overhead = (disabled - absent) / absent * 100.0;
    println!(
        "trace disabled-path overhead: absent {absent:.1} ns/point, \
         disabled {disabled:.1} ns/point -> {overhead:+.2}% (target < 2%)"
    );
}

/// The same guard for the always-on registry: recording is
/// unconditional there, so the target holds with *no* session check at
/// all — the handles themselves must be cheap enough.
fn print_always_on_overhead() {
    const ITERS: u64 = 200_000;
    let counter = trace::live::counter("bench.live.points");
    let hist = trace::live::histogram("bench.live.nanos");
    mean_nanos(ITERS / 10, work);
    mean_nanos(ITERS / 10, |i| live_instrumented(&counter, &hist, i));
    let mut absent = f64::MAX;
    let mut live = f64::MAX;
    for _ in 0..3 {
        absent = absent.min(mean_nanos(ITERS, work));
        live = live.min(mean_nanos(ITERS, |i| live_instrumented(&counter, &hist, i)));
    }
    let overhead = (live - absent) / absent * 100.0;
    println!(
        "trace always-on overhead: absent {absent:.1} ns/point, \
         live {live:.1} ns/point -> {overhead:+.2}% (target < 2%)"
    );
}

fn sweep(threads: usize, points: u64) -> usize {
    let executor = SweepExecutor::new(threads);
    let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::for_threads(threads));
    let items: Vec<(u64, u64)> = (0..points).map(|i| (i, i)).collect();
    let report = executor.run_keyed(&cache, items, |&k, _| work(k));
    report.try_into_values().unwrap().len()
}

fn bench_trace(c: &mut Criterion) {
    print_disabled_overhead();
    print_always_on_overhead();

    let mut group = c.benchmark_group("trace");

    group.bench_function("point/absent", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(work(i))
        })
    });

    group.bench_function("point/disabled", |b| {
        assert!(!trace::enabled());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(instrumented(i))
        })
    });

    group.bench_function("point/always-on", |b| {
        let counter = trace::live::counter("bench.live.points");
        let hist = trace::live::histogram("bench.live.nanos");
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(live_instrumented(&counter, &hist, i))
        })
    });

    group.bench_function("point/recording", |b| {
        let session = trace::session(trace::TraceConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(instrumented(i))
        });
        drop(session.finish());
    });

    // Full executor sweeps: all runtime spans and counters on the
    // disabled path vs. recording. Fresh caches per iteration keep every
    // point a real computation.
    for threads in [1usize, 4] {
        group.bench_function(format!("sweep/disabled/threads={threads}"), |b| {
            assert!(!trace::enabled());
            b.iter(|| black_box(sweep(threads, 256)))
        });
        group.bench_function(format!("sweep/recording/threads={threads}"), |b| {
            let session = trace::session(trace::TraceConfig::default());
            b.iter(|| black_box(sweep(threads, 256)));
            drop(session.finish());
        });
    }

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
