//! Benches for the Table Ib / Fig. 4 validation pipeline: the fit and the
//! two validation passes at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use microbench::{fit, FitConfig};
use silicon::VirtualK40;
use std::time::Duration;
use workloads::{by_name, Scale};

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("table1b_fit_pipeline", |b| {
        b.iter(|| {
            let hw = VirtualK40::new();
            fit(&hw, &FitConfig::fast())
        })
    });

    group.bench_function("fig4a_mixed_validation", |b| {
        let hw = VirtualK40::new();
        let fitted = fit(&hw, &FitConfig::fast());
        let model = fitted.to_energy_model();
        b.iter(|| xp::validation::fig4a(&hw, &model, Scale::Smoke))
    });

    group.bench_function("fig4b_app_validation", |b| {
        let hw = VirtualK40::new();
        let fitted = fit(&hw, &FitConfig::fast());
        let model = fitted.to_energy_model();
        let suite: Vec<_> = ["Stream", "Hotspot"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect();
        b.iter(|| xp::validation::fig4b(&hw, &model, &suite, Scale::Smoke))
    });

    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
