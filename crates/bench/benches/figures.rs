//! One bench per scaling figure: regenerates the figure's sweep at smoke
//! scale through the full sim + energy-model stack.

use bench::bench_suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::Scale;
use xp::{Fig10, Fig2, Fig6, Fig7, Fig8, Fig9, Headline, Lab, PointStudies};

fn bench_figures(c: &mut Criterion) {
    let suite = bench_suite();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("fig2_onboard_energy", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Fig2::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("fig6_edpse_2xbw", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Fig6::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("fig7_step_breakdown", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Fig7::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("fig8_bandwidth_sweep", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Fig8::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("fig9_ring_vs_switch", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Fig9::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("fig10_speedup_energy", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Fig10::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("point_studies", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            PointStudies::run(&lab, &suite).unwrap()
        })
    });
    group.bench_function("headline", |b| {
        b.iter(|| {
            let lab = Lab::new(Scale::Smoke);
            Headline::run(&lab, &suite).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
