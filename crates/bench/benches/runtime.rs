//! Serial vs parallel sweep execution.
//!
//! Two views, because speedup has two independent ceilings:
//!
//! * `fig6_sweep/*` — the real Fig. 6-style sweep through serial and
//!   multi-thread labs. Each iteration builds a fresh lab so the sweep
//!   starts from a cold cache; this measures simulation throughput and
//!   its speedup is capped by the host's core count (a 1-core CI box
//!   shows parity; an 8-core workstation shows near-linear gains up to
//!   the longest single point).
//! * `executor_overlap/*` — the same executor scheduling latency-bound
//!   points (a fixed per-point sleep). This isolates the scheduler: the
//!   points overlap regardless of core count, so the measured speedup is
//!   the pool's, not the CPU's.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use runtime::{ShardedCache, SweepExecutor};
use std::sync::Arc;
use std::time::Duration;
use workloads::Scale;
use xp::{Fig6, Lab};

fn fig6_sweep(threads: usize) -> Fig6 {
    let lab = Lab::with_threads(Scale::Smoke, threads);
    Fig6::run(&lab, &bench::bench_suite()).unwrap()
}

/// 24 points of 5 ms each: 120 ms serial, ~120/threads ms parallel.
fn overlap_sweep(threads: usize) -> usize {
    let executor = SweepExecutor::new(threads);
    let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::for_threads(threads));
    let items: Vec<(u64, u64)> = (0..24).map(|i| (i, i)).collect();
    let report = executor.run_keyed(&cache, items, |&k, _| {
        std::thread::sleep(Duration::from_millis(5));
        k
    });
    report.try_into_values().unwrap().len()
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("executor_overlap/threads={threads}"), |b| {
            b.iter(|| black_box(overlap_sweep(threads)))
        });
    }

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("fig6_sweep/threads={threads}"), |b| {
            b.iter(|| black_box(fig6_sweep(threads)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
