//! Event-driven vs naive cycle loop on the workloads `xp bench`
//! gates in CI — the interactive view of the same suite.
//!
//! `cargo bench --bench sim_hotpath` prints mean wall time per full
//! simulator run for each (workload kind, GPM count, engine mode)
//! point. The CI gate itself runs through `xp bench` (which records
//! machine-readable JSON); this bench exists for local digging, e.g.
//! `cargo bench --bench sim_hotpath -- memory/8`.

use common::{CtaId, WarpId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use isa::{GridShape, KernelProgram, MemRef, WarpInstr, WarpInstrStream};
use sim::{BwSetting, EngineMode, GpuConfig, GpuSim, Topology};

/// Private streaming loads: every warp stalls on DRAM almost all the
/// time — the fast-forward sweet spot (mirrors `xp bench`'s memory
/// scenario, including the 4x-starved DRAM).
struct Stream {
    ctas: u32,
    warps: u32,
    lines_per_warp: u32,
}

impl KernelProgram for Stream {
    fn name(&self) -> &str {
        "bench-stream"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps)
    }
    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let stride = self.lines_per_warp as u64 * 128;
        let base = (cta.0 as u64 * self.warps as u64 + warp.0 as u64) * stride;
        Box::new(
            (0..self.lines_per_warp as u64)
                .map(move |i| WarpInstr::Mem(MemRef::global_load(base + i * 128))),
        )
    }
    fn data_regions(&self) -> Vec<(u64, u64)> {
        let total = self.ctas as u64 * self.warps as u64 * self.lines_per_warp as u64 * 128;
        vec![(0, total)]
    }
}

fn run_stream(gpms: usize, mode: EngineMode) -> u64 {
    let mut cfg = GpuConfig::paper(gpms, BwSetting::X2, Topology::Ring);
    cfg.gpm.dram_bw = cfg.gpm.dram_bw * 0.25;
    let k = Stream {
        ctas: gpms as u32 * 32,
        warps: 8,
        lines_per_warp: 8,
    };
    let mut sim = GpuSim::with_mode(&cfg, mode);
    sim.prefault(&k);
    sim.run_kernel(&k).cycles
}

fn bench_sim_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_hotpath");
    for gpms in [1usize, 8] {
        group.bench_function(format!("memory/{gpms}gpm/event"), |b| {
            b.iter(|| black_box(run_stream(gpms, EngineMode::EventDriven)))
        });
        group.bench_function(format!("memory/{gpms}gpm/naive"), |b| {
            b.iter(|| black_box(run_stream(gpms, EngineMode::Naive)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_hotpath);
criterion_main!(benches);
