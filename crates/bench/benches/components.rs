//! Component performance benches: the hot paths of the simulator and
//! energy model.

use common::units::{Power, Time};
use common::{CtaId, GpmId, WarpId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpujoule::EnergyModel;
use isa::{EventCounts, Opcode, Transaction};
use sim::bw::BwResource;
use sim::cache::Cache;
use sim::{BwSetting, GpuConfig, GpuSim, Topology};
use workloads::{by_name, Scale};

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");

    group.bench_function("cache_access_stream", |b| {
        let mut cache = Cache::new(2 * 1024 * 1024, 16, 128);
        let mut addr: u64 = 0;
        b.iter(|| {
            addr = addr.wrapping_add(128) & 0xFF_FFFF;
            black_box(cache.access(addr, false))
        })
    });

    group.bench_function("bw_resource_acquire", |b| {
        let mut r = BwResource::new(256.0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(r.acquire(128, now))
        })
    });

    group.bench_function("energy_model_estimate", |b| {
        let model = EnergyModel::k40();
        let mut ev = EventCounts::new();
        ev.instrs.add(Opcode::FFma32, 1_000_000);
        ev.instrs.add(Opcode::FAdd64, 500_000);
        ev.txns.add(Transaction::DramToL2, 40_000);
        ev.txns.add(Transaction::L2ToL1, 80_000);
        ev.stall_cycles = 100_000;
        ev.elapsed = Time::from_micros(50.0);
        b.iter(|| black_box(model.estimate(&ev)))
    });

    group.bench_function("warp_stream_generation", |b| {
        let w = by_name("Stream").unwrap();
        let launches = w.launches(Scale::Smoke);
        let program = &launches[0].program;
        let mut cta = 0u32;
        b.iter(|| {
            cta = (cta + 1) % program.grid().ctas;
            let n = program
                .warp_instructions(CtaId::new(cta), WarpId::new(0))
                .count();
            black_box(n)
        })
    });

    group.bench_function("sensor_measurement", |b| {
        let hw = silicon::VirtualK40::new();
        let mut counts = EventCounts::new();
        counts.instrs.add(Opcode::FFma32, 1_000_000_000);
        let kernel = silicon::KernelActivity::new(
            Time::from_millis(200.0),
            counts,
            silicon::HiddenBehavior::regular(),
        );
        let profile = silicon::RunProfile::new("bench").kernel(kernel);
        b.iter(|| black_box(hw.measure(&profile)))
    });

    group.bench_function("noc_ring_transfer", |b| {
        let cfg = GpuConfig::paper(32, BwSetting::X2, Topology::Ring);
        let mut noc = sim::noc::Noc::new(&cfg);
        let mut now = 0u64;
        let mut dst = 0u16;
        b.iter(|| {
            now += 1;
            dst = (dst + 7) % 32;
            black_box(noc.transfer(GpmId::new(0), GpmId::new(dst), 160, now))
        })
    });

    group.finish();

    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("smoke_kernel_4gpm", |b| {
        let w = by_name("Hotspot").unwrap();
        b.iter(|| {
            let mut sim = GpuSim::new(&GpuConfig::paper(4, BwSetting::X2, Topology::Ring));
            let launches = w.launches(Scale::Smoke);
            black_box(sim.run_workload(&launches))
        })
    });
    group.finish();

    // Silence unused-import style drift across refactors.
    let _ = Power::ZERO;
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
