//! The benchmark suite: surrogates for the 18 Rodinia/CORAL applications
//! of Table II.
//!
//! Each [`WorkloadSpec`] captures one application's character: its
//! compute-vs-memory category, instruction mix, access pattern (and hence
//! cache response and NUMA traffic), kernel-launch structure (BFS and
//! MiniAMR launch many short kernels), and the counter-invisible behavior
//! (control divergence, host gaps) used by the silicon validation.
//!
//! The 14-application *scaling subset* (everything except BFS, LuleshUns,
//! MnCtct, and Srad-v1, §V-A) is what the multi-GPM sweeps run.

use crate::gen::{AccessPattern, KernelParams, SurrogateKernel};
use crate::mix::InstMix;
use common::units::Time;
use isa::LaunchSpec;
use std::fmt;

/// Benchmark category from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Compute intensive ("C").
    Compute,
    /// Memory-bandwidth intensive ("M").
    Memory,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Compute => write!(f, "C"),
            Category::Memory => write!(f, "M"),
        }
    }
}

/// Problem scale: the full paper-sized instance or a fast smoke instance
/// for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Paper-sized: enough parallelism to fill a 32-GPM GPU.
    Full,
    /// Small: runs in milliseconds on a tiny test configuration.
    Smoke,
}

impl Scale {
    fn ctas(self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 8).max(8),
        }
    }

    fn refs(self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 2).max(1),
        }
    }

    fn lines(self, full: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 16).max(64),
        }
    }

    fn invocations(self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Smoke => (full / 8).max(1),
        }
    }
}

/// One application surrogate.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Abbreviated name from Table II.
    pub name: &'static str,
    /// Compute or memory intensive.
    pub category: Category,
    /// Whether the app is in the 14-application multi-GPM scaling subset.
    pub in_scaling_subset: bool,
    /// Average active-lane fraction (control divergence; counter-invisible,
    /// consumed by the silicon validation).
    pub lane_utilization: f64,
    /// Host-side gap between consecutive kernel launches.
    pub host_gap: Time,
    /// Whether the app is inherently built from sub-millisecond kernel
    /// launches even at realistic input sizes (BFS's level kernels,
    /// MiniAMR's refinement steps) — the class whose power the board
    /// sensor cannot resolve (§IV-B2).
    pub short_kernels: bool,
    /// Counter-invisible memory-subsystem floor-power scale (see
    /// `silicon::HiddenBehavior::floor_scale`).
    pub floor_scale: f64,
    /// How the surrogate maps onto the real benchmark.
    pub description: &'static str,
    builder: fn(Scale) -> Vec<LaunchSpec>,
}

impl WorkloadSpec {
    /// Builds the launch sequence at the given scale. Each call constructs
    /// fresh kernels (streams are deterministic, so results replay).
    pub fn launches(&self, scale: Scale) -> Vec<LaunchSpec> {
        (self.builder)(scale)
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("category", &self.category)
            .field("in_scaling_subset", &self.in_scaling_subset)
            .finish()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.category)
    }
}

/// Standard grid: 2048 CTAs of 8 warps fills a 32-GPM GPU with waves to
/// spare (the paper keeps only apps with enough inherent parallelism).
const CTAS: u32 = 2048;
const WPC: u32 = 8;

/// Builds a kernel with the standard grid at a scale.
#[allow(clippy::too_many_arguments)]
fn kernel(
    scale: Scale,
    name: &str,
    cpm: u32,
    mem: u32,
    trailing: u32,
    store: f64,
    shared: u32,
    mix: InstMix,
    pattern: AccessPattern,
    region: u64,
    seed: u64,
) -> Box<SurrogateKernel> {
    let pattern = match pattern {
        AccessPattern::TiledShared {
            tile_lines,
            footprint_lines,
            spread,
        } => AccessPattern::TiledShared {
            tile_lines,
            footprint_lines: scale.lines(footprint_lines),
            spread,
        },
        AccessPattern::RandomShared { footprint_lines } => AccessPattern::RandomShared {
            footprint_lines: scale.lines(footprint_lines),
        },
        other => other,
    };
    Box::new(SurrogateKernel::new(KernelParams {
        name: name.into(),
        ctas: scale.ctas(CTAS),
        warps_per_cta: WPC,
        compute_per_mem: cpm,
        mem_refs_per_warp: scale.refs(mem),
        trailing_compute: scale.refs(trailing),
        store_fraction: store,
        shared_per_mem: shared,
        mix,
        pattern,
        region,
        seed,
    }))
}

/// Distinct, page-aligned data regions per workload so the address spaces
/// of different kernels never collide.
const REGION_STRIDE: u64 = 1 << 32;

fn region(slot: u64) -> u64 {
    slot * REGION_STRIDE
}

macro_rules! spec {
    ($name:literal, $cat:ident, $subset:expr, $lanes:expr, $gap_us:expr, $builder:expr) => {
        spec!($name, $cat, $subset, $lanes, $gap_us, false, 1.0, "", $builder)
    };
    ($name:literal, $cat:ident, $subset:expr, $lanes:expr, $gap_us:expr,
     $short:expr, $floor:expr, $builder:expr) => {
        spec!($name, $cat, $subset, $lanes, $gap_us, $short, $floor, "", $builder)
    };
    ($name:literal, $cat:ident, $subset:expr, $lanes:expr, $gap_us:expr,
     $short:expr, $floor:expr, $desc:expr, $builder:expr) => {
        WorkloadSpec {
            name: $name,
            category: Category::$cat,
            in_scaling_subset: $subset,
            lane_utilization: $lanes,
            host_gap: Time::from_micros($gap_us),
            short_kernels: $short,
            floor_scale: $floor,
            description: $desc,
            builder: $builder,
        }
    };
}

/// The full 18-application suite of Table II.
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        // ---- Compute intensive -------------------------------------------
        spec!(
            "BPROP",
            Compute,
            true,
            0.96,
            30.0,
            false,
            1.0,
            "Back-propagation layer update: FMA-dense FP32 over tiled weight \
             matrices with strong reuse; compute-bound with modest shared traffic.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "bprop-fw",
                12,
                16,
                60,
                0.15,
                1,
                InstMix::fp32_dense(),
                AccessPattern::TiledShared {
                    tile_lines: 16,
                    footprint_lines: 48 * 1024,
                    spread: 0.03
                },
                region(1),
                0xB1,
            ))]
        ),
        spec!(
            "BTREE",
            Compute,
            true,
            0.88,
            30.0,
            false,
            1.0,
            "B+Tree range queries: integer compares and pointer math over an 8 MiB \
             index; short tiles model node walks, mild divergence.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "btree-find",
                10,
                20,
                40,
                0.02,
                0,
                InstMix::int_graph(),
                AccessPattern::TiledShared {
                    tile_lines: 4,
                    footprint_lines: 64 * 1024,
                    spread: 0.05
                },
                region(2),
                0xB2,
            ))]
        ),
        spec!(
            "CoMD",
            Compute,
            true,
            0.93,
            40.0,
            false,
            8.4,
            "Classical molecular dynamics force loop: FP64 FMA/sqrt chains over a \
             cache-resident neighbor structure; memory subsystem nearly idle — the \
             Fig. 4b underestimation case.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "comd-force",
                32,
                7,
                240,
                0.10,
                2,
                InstMix::fp64_hpc(),
                AccessPattern::TiledShared {
                    tile_lines: 8,
                    footprint_lines: 2 * 1024,
                    spread: 0.05
                },
                region(3),
                0xC0,
            ))]
        ),
        spec!(
            "Hotspot",
            Compute,
            true,
            0.97,
            30.0,
            false,
            1.0,
            "2D thermal stencil: FP32 with neighbor halos and two passes of reuse \
             per sweep; scales nearly ideally.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "hotspot-step",
                10,
                18,
                40,
                0.30,
                1,
                InstMix::fp32_dense(),
                AccessPattern::Stencil {
                    halo: 0.08,
                    reuse: 2
                },
                region(4),
                0x40,
            ))]
        ),
        spec!(
            "LuleshUns",
            Compute,
            false,
            0.70,
            50.0,
            false,
            1.0,
            "Unstructured-mesh Lulesh: FP64 gathers over a 12 MiB irregular \
             connectivity; divergent lanes (validation suite only).",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "lulesh-uns",
                10,
                20,
                30,
                0.20,
                0,
                InstMix::fp64_hpc(),
                AccessPattern::RandomShared {
                    footprint_lines: 96 * 1024
                },
                region(5),
                0x15,
            ))]
        ),
        spec!(
            "PathF",
            Compute,
            true,
            0.90,
            25.0,
            false,
            1.0,
            "PathFinder dynamic programming: row-streamed FP32/int compares with \
             row-to-row reuse.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "pathfinder",
                9,
                14,
                30,
                0.20,
                1,
                InstMix::fp32_control(),
                AccessPattern::PrivateStream {
                    reuse: 2,
                    misalign: 0.02
                },
                region(6),
                0x9F,
            ))]
        ),
        spec!(
            "RSBench",
            Compute,
            true,
            0.92,
            40.0,
            false,
            6.8,
            "Multipole cross-section lookups: FP64 evaluation against ~1 MiB \
             L2-resident tables; trickling memory traffic keeps the memory clocks \
             up — the other Fig. 4b underestimation case.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "rsbench-xs",
                30,
                8,
                160,
                0.02,
                1,
                InstMix::lookup_physics(),
                AccessPattern::TiledShared {
                    tile_lines: 2,
                    footprint_lines: 8 * 1024,
                    spread: 0.12
                },
                region(7),
                0x25,
            ))]
        ),
        spec!(
            "Srad-v1",
            Compute,
            false,
            0.94,
            30.0,
            false,
            1.0,
            "Speckle-reducing anisotropic diffusion, v1: small-image FP32 stencil \
             (validation suite only).",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "srad1-step",
                11,
                16,
                30,
                0.25,
                0,
                InstMix::fp32_dense(),
                AccessPattern::Stencil {
                    halo: 0.10,
                    reuse: 2
                },
                region(8),
                0x51,
            ))]
        ),
        // ---- Memory-bandwidth intensive ----------------------------------
        spec!(
            "MiniAMR",
            Memory,
            true,
            0.85,
            25.0,
            true,
            1.0,
            "Adaptive mesh refinement: dozens of sub-100 us FP64 stencil launches \
             on fresh regions — the short-kernel sensor-resolution case.",
            |s| {
                // Each refinement step works on a fresh mesh region: many
                // short launches with no cross-launch cache reuse.
                (0..s.invocations(24) as u64)
                    .map(|i| {
                        LaunchSpec::once(kernel(
                            s,
                            &format!("amr-stencil-{i}"),
                            3,
                            4,
                            4,
                            0.30,
                            0,
                            InstMix::fp64_hpc(),
                            AccessPattern::PrivateStream {
                                reuse: 1,
                                misalign: 0.15,
                            },
                            region(9) + i * (REGION_STRIDE / 32),
                            0xA3 + i,
                        ))
                    })
                    .collect()
            }
        ),
        spec!(
            "BFS",
            Memory,
            false,
            0.35,
            55.0,
            true,
            1.0,
            "Level-synchronized breadth-first search: many short, divergent, \
             random-access launches over a 16 MiB graph — the other \
             sensor-resolution case (validation suite only).",
            |s| vec![LaunchSpec::repeated(
                kernel(
                    s,
                    "bfs-level",
                    6,
                    5,
                    6,
                    0.15,
                    0,
                    InstMix::int_graph(),
                    AccessPattern::RandomShared {
                        footprint_lines: 128 * 1024
                    },
                    region(10),
                    0xBF,
                ),
                s.invocations(80),
            )]
        ),
        spec!(
            "Kmeans",
            Memory,
            true,
            0.90,
            35.0,
            false,
            1.0,
            "K-means assignment: streams a 66 MiB point set each iteration with \
             scattered centroid sharing; DRAM-bandwidth bound.",
            |s| vec![LaunchSpec::repeated(
                kernel(
                    s,
                    "kmeans-assign",
                    4,
                    32,
                    10,
                    0.10,
                    1,
                    InstMix::fp32_stream(),
                    AccessPattern::PrivateStream {
                        reuse: 1,
                        misalign: 0.20
                    },
                    region(11),
                    0x33,
                ),
                s.invocations(3),
            )]
        ),
        spec!(
            "Lulesh-150",
            Memory,
            true,
            0.88,
            45.0,
            false,
            1.0,
            "Lulesh size 150: an FP64 streaming phase plus a gather phase over a \
             20 MiB mesh with 35% scattered sharing — the NUMA-pressure profile.",
            |s| vec![
                LaunchSpec::once(kernel(
                    s,
                    "lulesh150-stream",
                    5,
                    14,
                    10,
                    0.30,
                    0,
                    InstMix::fp64_hpc(),
                    AccessPattern::PrivateStream {
                        reuse: 1,
                        misalign: 0.10
                    },
                    region(12),
                    0x96,
                )),
                LaunchSpec::once(kernel(
                    s,
                    "lulesh150-gather",
                    5,
                    14,
                    10,
                    0.10,
                    0,
                    InstMix::fp64_hpc(),
                    AccessPattern::TiledShared {
                        tile_lines: 8,
                        footprint_lines: 160 * 1024,
                        spread: 0.35
                    },
                    region(12) + REGION_STRIDE / 2,
                    0x97,
                )),
            ]
        ),
        spec!(
            "Lulesh-190",
            Memory,
            true,
            0.88,
            45.0,
            false,
            1.0,
            "Lulesh size 190: as Lulesh-150 with a 32 MiB mesh and heavier \
             gather scatter.",
            |s| vec![
                LaunchSpec::once(kernel(
                    s,
                    "lulesh190-stream",
                    4,
                    16,
                    10,
                    0.30,
                    0,
                    InstMix::fp64_hpc(),
                    AccessPattern::PrivateStream {
                        reuse: 1,
                        misalign: 0.12
                    },
                    region(13),
                    0xBE,
                )),
                LaunchSpec::once(kernel(
                    s,
                    "lulesh190-gather",
                    4,
                    16,
                    10,
                    0.10,
                    0,
                    InstMix::fp64_hpc(),
                    AccessPattern::TiledShared {
                        tile_lines: 8,
                        footprint_lines: 256 * 1024,
                        spread: 0.40
                    },
                    region(13) + REGION_STRIDE / 2,
                    0xBF,
                )),
            ]
        ),
        spec!(
            "Nekbone-12",
            Memory,
            true,
            0.92,
            40.0,
            false,
            1.0,
            "Nekbone spectral-element Ax kernel, size 12: FP64 tiles over 12 MiB \
             with element-boundary sharing.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "nekbone12-ax",
                6,
                20,
                20,
                0.15,
                2,
                InstMix::fp64_hpc(),
                AccessPattern::TiledShared {
                    tile_lines: 16,
                    footprint_lines: 96 * 1024,
                    spread: 0.15
                },
                region(14),
                0x12,
            ))]
        ),
        spec!(
            "Nekbone-18",
            Memory,
            true,
            0.92,
            40.0,
            false,
            1.0,
            "Nekbone size 18: the 24 MiB instance with more boundary exchange.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "nekbone18-ax",
                5,
                24,
                20,
                0.15,
                2,
                InstMix::fp64_hpc(),
                AccessPattern::TiledShared {
                    tile_lines: 16,
                    footprint_lines: 192 * 1024,
                    spread: 0.18
                },
                region(15),
                0x18,
            ))]
        ),
        spec!(
            "MnCtct",
            Memory,
            false,
            0.60,
            70.0,
            false,
            1.0,
            "Mini-Contact search: divergent random probes over an 8 MiB contact \
             structure across many launches (validation suite only).",
            |s| vec![LaunchSpec::repeated(
                kernel(
                    s,
                    "mnctct-search",
                    4,
                    8,
                    6,
                    0.20,
                    0,
                    InstMix::fp32_control(),
                    AccessPattern::RandomShared {
                        footprint_lines: 64 * 1024
                    },
                    region(16),
                    0x3C,
                ),
                s.invocations(40),
            )]
        ),
        spec!(
            "Srad-v2",
            Memory,
            true,
            0.94,
            30.0,
            false,
            1.0,
            "SRAD v2: large-image FP32 stencil streamed at low arithmetic \
             intensity with scattered halo sharing.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "srad2-step",
                3,
                36,
                10,
                0.30,
                0,
                InstMix::fp32_stream(),
                AccessPattern::PrivateStream {
                    reuse: 1,
                    misalign: 0.18
                },
                region(17),
                0x52,
            ))]
        ),
        spec!(
            "Stream",
            Memory,
            true,
            0.99,
            20.0,
            false,
            1.0,
            "STREAM triad: one FMA per three 100 MiB-array references; the pure \
             bandwidth yardstick, with a 25% producer/consumer index mismatch.",
            |s| vec![LaunchSpec::once(kernel(
                s,
                "stream-triad",
                1,
                48,
                0,
                0.33,
                0,
                InstMix::fp32_stream(),
                AccessPattern::PrivateStream {
                    reuse: 1,
                    misalign: 0.25
                },
                region(18),
                0x57,
            ))]
        ),
    ]
}

/// The 14-application scaling subset (§V-A): all of [`suite`] except BFS,
/// LuleshUns, MnCtct, and Srad-v1.
pub fn scaling_suite() -> Vec<WorkloadSpec> {
    suite()
        .into_iter()
        .filter(|w| w.in_scaling_subset)
        .collect()
}

/// Looks up one workload by its Table II abbreviation.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_18_apps_and_subset_14() {
        assert_eq!(suite().len(), 18);
        assert_eq!(scaling_suite().len(), 14);
    }

    #[test]
    fn subset_excludes_the_four_validation_only_apps() {
        let excluded = ["BFS", "LuleshUns", "MnCtct", "Srad-v1"];
        let subset = scaling_suite();
        for name in excluded {
            assert!(
                subset.iter().all(|w| w.name != name),
                "{name} must be excluded"
            );
            assert!(by_name(name).is_some(), "{name} still in the full suite");
        }
    }

    #[test]
    fn category_split_matches_table_ii() {
        let all = suite();
        let compute = all
            .iter()
            .filter(|w| w.category == Category::Compute)
            .count();
        let memory = all
            .iter()
            .filter(|w| w.category == Category::Memory)
            .count();
        assert_eq!(compute, 8);
        assert_eq!(memory, 10);
        // Scaling subset: 6 compute, 8 memory.
        let subset = scaling_suite();
        assert_eq!(
            subset
                .iter()
                .filter(|w| w.category == Category::Compute)
                .count(),
            6
        );
        assert_eq!(
            subset
                .iter()
                .filter(|w| w.category == Category::Memory)
                .count(),
            8
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = suite().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn full_scale_grids_fill_32_gpms() {
        // 32 GPMs x 16 SMs need >= 512 CTAs for one wave.
        for w in scaling_suite() {
            for launch in w.launches(Scale::Full) {
                assert!(
                    launch.program.grid().ctas >= 512,
                    "{} grid too small",
                    w.name
                );
            }
        }
    }

    #[test]
    fn smoke_scale_is_small() {
        for w in suite() {
            for launch in w.launches(Scale::Smoke) {
                assert!(
                    launch.program.grid().ctas <= 256,
                    "{} smoke too big",
                    w.name
                );
            }
        }
    }

    #[test]
    fn multi_launch_apps_launch_many_kernels() {
        let bfs = by_name("BFS").unwrap();
        let launches = bfs.launches(Scale::Full);
        let total: u32 = launches.iter().map(|l| l.invocations).sum();
        assert!(total >= 50, "BFS must be many short kernels, got {total}");
        let stream = by_name("Stream").unwrap();
        let total: u32 = stream
            .launches(Scale::Full)
            .iter()
            .map(|l| l.invocations)
            .sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn memory_apps_have_low_compute_per_ref() {
        // A crude intensity check on the generated streams.
        for w in suite() {
            let launches = w.launches(Scale::Smoke);
            let program = &launches[0].program;
            let instrs: Vec<_> = program
                .warp_instructions(common::CtaId::new(0), common::WarpId::new(0))
                .collect();
            let mems = instrs
                .iter()
                .filter(|i| matches!(i, isa::WarpInstr::Mem(m) if m.space == isa::MemSpace::Global))
                .count()
                .max(1);
            let ratio = instrs.len() as f64 / mems as f64;
            match w.category {
                Category::Memory => assert!(ratio < 11.5, "{} ratio {ratio}", w.name),
                Category::Compute => assert!(ratio > 11.5, "{} ratio {ratio}", w.name),
            }
        }
    }

    #[test]
    fn every_app_has_a_description() {
        for w in suite() {
            assert!(
                w.description.len() > 20,
                "{} needs a real description",
                w.name
            );
        }
    }

    #[test]
    fn divergent_apps_marked() {
        assert!(by_name("BFS").unwrap().lane_utilization < 0.6);
        assert!(by_name("Stream").unwrap().lane_utilization > 0.95);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for w in suite() {
            for launch in w.launches(Scale::Full) {
                let fp = launch.program.footprint_bytes();
                assert!(fp > 0, "{} footprint unknown", w.name);
            }
        }
        // Regions are 4 GiB apart; footprints are far below that.
        for w in suite() {
            for launch in w.launches(Scale::Full) {
                let fp = launch.program.footprint_bytes();
                assert!(fp < REGION_STRIDE / 2, "{} footprint too large", w.name);
                ranges.push((0, fp));
            }
        }
    }
}
