//! The surrogate kernel generator.
//!
//! A [`SurrogateKernel`] is a parameterized, deterministic trace generator
//! implementing [`isa::KernelProgram`]. Its parameters — instruction mix,
//! compute-to-memory ratio, access pattern, footprint — are the handles by
//! which each Table II benchmark's character is expressed. Warp streams
//! are generated lazily so that even the largest 32-GPM runs hold only a
//! few counters per resident warp.

use crate::mix::InstMix;
use common::{CtaId, WarpId};
use isa::{GridShape, KernelProgram, MemRef, WarpInstr, WarpInstrStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Cacheline size used by address generation.
const LINE: u64 = 128;

/// How a surrogate touches global memory.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Each warp streams over its own contiguous slice, `reuse` passes
    /// over it, with a `misalign` fraction of references going to a slice
    /// half the array away (first-touch mismatch → inter-GPM traffic).
    PrivateStream {
        /// Passes over the slice (>1 creates L1/L2 temporal reuse).
        reuse: u32,
        /// Fraction of references that go to the far slice.
        misalign: f64,
    },
    /// Warps read tiles of a shared array, mostly tiles near their own
    /// position (`spread` is the fraction of uniformly random tile picks).
    /// Captures blocked/tiled reuse: the hot window shrinks as modules are
    /// added, which is what produces cache-capacity superlinearity.
    TiledShared {
        /// Lines per tile (sequential within a tile).
        tile_lines: u32,
        /// Total shared-array size in lines.
        footprint_lines: u64,
        /// Fraction of tile picks that are uniformly random.
        spread: f64,
    },
    /// Uniformly random lines over a shared footprint (graph-like).
    RandomShared {
        /// Total shared-array size in lines.
        footprint_lines: u64,
    },
    /// Stencil: slice streaming with `halo` of references hitting the
    /// neighboring warp's slice (crosses CTA and GPM boundaries at the
    /// edges).
    Stencil {
        /// Fraction of references going to a neighbor slice.
        halo: f64,
        /// Passes over the slice.
        reuse: u32,
    },
}

/// Full parameterization of one surrogate kernel.
#[derive(Debug, Clone)]
pub struct KernelParams {
    /// Kernel name (for reports).
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Compute instructions preceding each memory reference.
    pub compute_per_mem: u32,
    /// Global memory references per warp.
    pub mem_refs_per_warp: u32,
    /// Additional compute instructions after the last reference (lets
    /// compute-bound kernels be expressed with few references).
    pub trailing_compute: u32,
    /// Probability a reference is a store (in-place update).
    pub store_fraction: f64,
    /// Shared-memory references accompanying each global reference.
    pub shared_per_mem: u32,
    /// Opcode distribution for compute instructions.
    pub mix: InstMix,
    /// Global-memory access pattern.
    pub pattern: AccessPattern,
    /// Base address of this kernel's data region (distinct per array so
    /// different kernels of one workload can share or separate data).
    pub region: u64,
    /// Seed for the deterministic per-warp RNG.
    pub seed: u64,
}

impl KernelParams {
    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        self.ctas as u64 * self.warps_per_cta as u64
    }

    /// Lines in one warp's private slice (streaming patterns).
    fn slice_lines(&self) -> u64 {
        match self.pattern {
            AccessPattern::PrivateStream { reuse, .. } | AccessPattern::Stencil { reuse, .. } => {
                (self.mem_refs_per_warp as u64)
                    .div_ceil(reuse.max(1) as u64)
                    .max(1)
            }
            _ => 0,
        }
    }

    /// Approximate global-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        match self.pattern {
            AccessPattern::PrivateStream { .. } | AccessPattern::Stencil { .. } => {
                self.total_warps() * self.slice_lines() * LINE
            }
            AccessPattern::TiledShared {
                footprint_lines, ..
            }
            | AccessPattern::RandomShared { footprint_lines } => footprint_lines * LINE,
        }
    }
}

/// A deterministic surrogate kernel.
///
/// # Examples
///
/// ```
/// use workloads::gen::{AccessPattern, KernelParams, SurrogateKernel};
/// use workloads::mix::InstMix;
/// use isa::KernelProgram;
/// use common::{CtaId, WarpId};
///
/// let k = SurrogateKernel::new(KernelParams {
///     name: "demo".into(),
///     ctas: 4,
///     warps_per_cta: 2,
///     compute_per_mem: 4,
///     mem_refs_per_warp: 8,
///     trailing_compute: 0,
///     store_fraction: 0.25,
///     shared_per_mem: 0,
///     mix: InstMix::fp32_stream(),
///     pattern: AccessPattern::PrivateStream { reuse: 1, misalign: 0.0 },
///     region: 0,
///     seed: 1,
/// });
/// let n = k.warp_instructions(CtaId::new(0), WarpId::new(0)).count();
/// assert_eq!(n, 8 * (4 + 1));
/// ```
#[derive(Debug, Clone)]
pub struct SurrogateKernel {
    params: Arc<KernelParams>,
}

impl SurrogateKernel {
    /// Wraps parameters into a kernel.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate or probabilities are out of range.
    pub fn new(params: KernelParams) -> Self {
        assert!(
            params.ctas > 0 && params.warps_per_cta > 0,
            "degenerate grid"
        );
        assert!(
            (0.0..=1.0).contains(&params.store_fraction),
            "store fraction out of range"
        );
        if let AccessPattern::PrivateStream { misalign, .. } = params.pattern {
            assert!((0.0..=1.0).contains(&misalign), "misalign out of range");
        }
        SurrogateKernel {
            params: Arc::new(params),
        }
    }

    /// The kernel's parameters.
    pub fn params(&self) -> &KernelParams {
        &self.params
    }
}

impl KernelProgram for SurrogateKernel {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn grid(&self) -> GridShape {
        GridShape::new(self.params.ctas, self.params.warps_per_cta)
    }

    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let p = Arc::clone(&self.params);
        let warp_global = cta.0 as u64 * p.warps_per_cta as u64 + warp.0 as u64;
        let seed = p
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(warp_global.wrapping_mul(0xD1B5_4A32_D192_ED03));
        Box::new(SurrogateStream {
            rng: SmallRng::seed_from_u64(seed),
            warp_global,
            total_warps: p.total_warps(),
            p,
            mem_done: 0,
            group_pos: 0,
            trailing_done: 0,
            cursor: 0,
            tile_pos: 0,
            cur_tile: 0,
        })
    }

    fn footprint_bytes(&self) -> u64 {
        self.params.footprint_bytes()
    }

    fn data_regions(&self) -> Vec<(u64, u64)> {
        vec![(self.params.region, self.params.footprint_bytes())]
    }
}

/// Lazily generated warp instruction stream.
struct SurrogateStream {
    p: Arc<KernelParams>,
    rng: SmallRng,
    warp_global: u64,
    total_warps: u64,
    /// Memory references emitted so far.
    mem_done: u32,
    /// Position inside the current compute/shared/mem group.
    group_pos: u32,
    /// Trailing compute instructions emitted so far.
    trailing_done: u32,
    /// Streaming cursor (line offset within the slice, monotonically
    /// increasing; wrapped at use).
    cursor: u64,
    /// Position within the current tile (TiledShared).
    tile_pos: u32,
    /// Current tile index (TiledShared).
    cur_tile: u64,
}

impl SurrogateStream {
    /// The next global line address for this warp.
    fn next_line(&mut self) -> u64 {
        let p = &self.p;
        match p.pattern {
            AccessPattern::PrivateStream { misalign, .. } => {
                let slice = p.slice_lines();
                let offset = self.cursor % slice;
                self.cursor += 1;
                let owner = if misalign > 0.0 && self.rng.gen::<f64>() < misalign {
                    // A producer/consumer indexing mismatch: the reference
                    // lands in a uniformly random other warp's slice — the
                    // globally scattered sharing that first-touch
                    // placement cannot localize and that pressures the
                    // inter-GPM links at scale.
                    let other = self.rng.gen_range(0..self.total_warps.max(2) - 1);
                    if other >= self.warp_global {
                        other + 1
                    } else {
                        other
                    }
                } else {
                    self.warp_global
                };
                p.region + (owner * slice + offset) * LINE
            }
            AccessPattern::Stencil { halo, .. } => {
                let slice = p.slice_lines();
                let offset = self.cursor % slice;
                self.cursor += 1;
                let owner = if halo > 0.0 && self.rng.gen::<f64>() < halo {
                    let dir = if self.rng.gen::<bool>() {
                        1
                    } else {
                        self.total_warps - 1
                    };
                    (self.warp_global + dir) % self.total_warps
                } else {
                    self.warp_global
                };
                p.region + (owner * slice + offset) * LINE
            }
            AccessPattern::TiledShared {
                tile_lines,
                footprint_lines,
                spread,
            } => {
                let tiles = (footprint_lines / tile_lines.max(1) as u64).max(1);
                if self.tile_pos == 0 {
                    self.cur_tile = if self.rng.gen::<f64>() < spread {
                        self.rng.gen_range(0..tiles)
                    } else {
                        // A tile near the warp's own position, with jitter.
                        let home = self.warp_global * tiles / self.total_warps.max(1);
                        let jitter = self.rng.gen_range(0..3);
                        (home + jitter) % tiles
                    };
                }
                let line = self.cur_tile * tile_lines as u64 + self.tile_pos as u64;
                self.tile_pos = (self.tile_pos + 1) % tile_lines.max(1);
                p.region + (line % footprint_lines.max(1)) * LINE
            }
            AccessPattern::RandomShared { footprint_lines } => {
                p.region + self.rng.gen_range(0..footprint_lines.max(1)) * LINE
            }
        }
    }
}

impl Iterator for SurrogateStream {
    type Item = WarpInstr;

    fn next(&mut self) -> Option<WarpInstr> {
        let p = Arc::clone(&self.p);
        if self.mem_done < p.mem_refs_per_warp {
            let group_len = p.compute_per_mem + p.shared_per_mem + 1;
            let pos = self.group_pos;
            self.group_pos = (self.group_pos + 1) % group_len;
            if pos < p.compute_per_mem {
                return Some(WarpInstr::Compute(p.mix.sample(&mut self.rng)));
            }
            if pos < p.compute_per_mem + p.shared_per_mem {
                let addr = (self.cursor * 4 + pos as u64 * 128) % (48 * 1024);
                return Some(WarpInstr::Mem(MemRef::shared(addr, false)));
            }
            // The memory reference that closes the group.
            self.mem_done += 1;
            let addr = self.next_line();
            let is_store = self.rng.gen::<f64>() < p.store_fraction;
            return Some(WarpInstr::Mem(MemRef {
                space: isa::MemSpace::Global,
                addr,
                is_store,
            }));
        }
        if self.trailing_done < p.trailing_compute {
            self.trailing_done += 1;
            return Some(WarpInstr::Compute(p.mix.sample(&mut self.rng)));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::MemSpace;

    fn base_params() -> KernelParams {
        KernelParams {
            name: "t".into(),
            ctas: 4,
            warps_per_cta: 2,
            compute_per_mem: 3,
            mem_refs_per_warp: 10,
            trailing_compute: 5,
            store_fraction: 0.0,
            shared_per_mem: 1,
            mix: InstMix::fp32_stream(),
            pattern: AccessPattern::PrivateStream {
                reuse: 2,
                misalign: 0.0,
            },
            region: 0x1000_0000,
            seed: 9,
        }
    }

    fn collect(k: &SurrogateKernel, cta: u32, warp: u32) -> Vec<WarpInstr> {
        k.warp_instructions(CtaId::new(cta), WarpId::new(warp))
            .collect()
    }

    #[test]
    fn stream_length_is_exact() {
        let k = SurrogateKernel::new(base_params());
        let v = collect(&k, 0, 0);
        // 10 groups of (3 compute + 1 shared + 1 mem) + 5 trailing.
        assert_eq!(v.len(), 10 * 5 + 5);
        let mems = v
            .iter()
            .filter(|i| matches!(i, WarpInstr::Mem(m) if m.space == MemSpace::Global))
            .count();
        assert_eq!(mems, 10);
        let shared = v
            .iter()
            .filter(|i| matches!(i, WarpInstr::Mem(m) if m.space == MemSpace::Shared))
            .count();
        assert_eq!(shared, 10);
    }

    #[test]
    fn streams_are_deterministic() {
        let k = SurrogateKernel::new(base_params());
        assert_eq!(collect(&k, 2, 1), collect(&k, 2, 1));
        assert_ne!(collect(&k, 2, 1), collect(&k, 2, 0));
    }

    #[test]
    fn private_stream_stays_in_own_slice() {
        let k = SurrogateKernel::new(base_params());
        let p = k.params();
        let slice_bytes = p.footprint_bytes() / p.total_warps();
        for instr in collect(&k, 1, 1) {
            if let WarpInstr::Mem(m) = instr {
                if m.space == MemSpace::Global {
                    let warp_global = 2 + 1;
                    let lo = p.region + warp_global * slice_bytes;
                    assert!(
                        m.addr >= lo && m.addr < lo + slice_bytes,
                        "addr {:#x}",
                        m.addr
                    );
                }
            }
        }
    }

    #[test]
    fn reuse_revisits_lines() {
        // reuse=2 over 10 refs -> slice of 5 lines, each touched twice.
        let k = SurrogateKernel::new(base_params());
        let mut lines: Vec<u64> = collect(&k, 0, 0)
            .into_iter()
            .filter_map(|i| match i {
                WarpInstr::Mem(m) if m.space == MemSpace::Global => Some(m.addr),
                _ => None,
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn misalign_leaves_own_slice() {
        let mut p = base_params();
        p.pattern = AccessPattern::PrivateStream {
            reuse: 1,
            misalign: 1.0,
        };
        let k = SurrogateKernel::new(p);
        let params = k.params();
        let slice_bytes = params.footprint_bytes() / params.total_warps();
        let own_lo = params.region; // warp_global 0
        for i in collect(&k, 0, 0) {
            if let WarpInstr::Mem(m) = i {
                if m.space == MemSpace::Global {
                    assert!(
                        m.addr >= own_lo + slice_bytes,
                        "misaligned ref landed in own slice: {:#x}",
                        m.addr
                    );
                    assert!(m.addr < params.region + params.footprint_bytes());
                }
            }
        }
    }

    #[test]
    fn random_shared_stays_in_footprint() {
        let mut p = base_params();
        p.pattern = AccessPattern::RandomShared {
            footprint_lines: 64,
        };
        let k = SurrogateKernel::new(p);
        for i in collect(&k, 3, 1) {
            if let WarpInstr::Mem(m) = i {
                if m.space == MemSpace::Global {
                    assert!(m.addr >= 0x1000_0000);
                    assert!(m.addr < 0x1000_0000 + 64 * 128);
                }
            }
        }
        assert_eq!(k.footprint_bytes(), 64 * 128);
    }

    #[test]
    fn tiled_shared_is_mostly_sequential_within_tiles() {
        let mut p = base_params();
        p.mem_refs_per_warp = 32;
        p.pattern = AccessPattern::TiledShared {
            tile_lines: 8,
            footprint_lines: 1024,
            spread: 0.0,
        };
        let k = SurrogateKernel::new(p);
        let addrs: Vec<u64> = collect(&k, 0, 0)
            .into_iter()
            .filter_map(|i| match i {
                WarpInstr::Mem(m) if m.space == MemSpace::Global => Some(m.addr),
                _ => None,
            })
            .collect();
        // Consecutive refs within a tile differ by one line.
        let seq = addrs.windows(2).filter(|w| w[1] == w[0] + 128).count();
        assert!(seq * 2 > addrs.len(), "tiles should be mostly sequential");
    }

    #[test]
    fn stencil_halo_touches_neighbors() {
        let mut p = base_params();
        p.pattern = AccessPattern::Stencil {
            halo: 0.5,
            reuse: 1,
        };
        p.mem_refs_per_warp = 100;
        let k = SurrogateKernel::new(p);
        let params = k.params();
        let slice_bytes = params.footprint_bytes() / params.total_warps();
        let own_lo = params.region + 4 * slice_bytes; // warp_global 4 = cta 2, warp 0
        let outside = collect(&k, 2, 0)
            .into_iter()
            .filter_map(|i| match i {
                WarpInstr::Mem(m) if m.space == MemSpace::Global => Some(m.addr),
                _ => None,
            })
            .filter(|&a| a < own_lo || a >= own_lo + slice_bytes)
            .count();
        assert!(outside > 20, "halo refs expected, got {outside}");
    }

    #[test]
    fn store_fraction_generates_stores() {
        let mut p = base_params();
        p.store_fraction = 0.5;
        p.mem_refs_per_warp = 200;
        let k = SurrogateKernel::new(p);
        let stores = collect(&k, 0, 0)
            .into_iter()
            .filter(|i| matches!(i, WarpInstr::Mem(m) if m.is_store))
            .count();
        assert!((60..140).contains(&stores), "got {stores}");
    }

    #[test]
    fn pure_compute_kernel_has_no_memory() {
        let mut p = base_params();
        p.mem_refs_per_warp = 0;
        p.trailing_compute = 50;
        let k = SurrogateKernel::new(p);
        let v = collect(&k, 0, 0);
        assert_eq!(v.len(), 50);
        assert!(v.iter().all(|i| matches!(i, WarpInstr::Compute(_))));
    }

    #[test]
    #[should_panic(expected = "degenerate grid")]
    fn zero_ctas_panics() {
        let mut p = base_params();
        p.ctas = 0;
        let _ = SurrogateKernel::new(p);
    }

    #[test]
    #[should_panic(expected = "store fraction")]
    fn bad_store_fraction_panics() {
        let mut p = base_params();
        p.store_fraction = 1.5;
        let _ = SurrogateKernel::new(p);
    }
}
