//! Instruction mixes: weighted opcode distributions for the surrogates.
//!
//! Each benchmark surrogate draws its compute instructions from a mix that
//! matches the source application's character: FP32 stencils, FP64
//! molecular dynamics, integer-heavy graph traversal, and so on.

use isa::Opcode;
use rand::Rng;

/// A normalized, weighted distribution over opcodes.
///
/// # Examples
///
/// ```
/// use workloads::mix::InstMix;
/// use isa::Opcode;
///
/// let mix = InstMix::new(vec![(Opcode::FFma32, 3.0), (Opcode::FAdd32, 1.0)]);
/// assert!((mix.weight_of(Opcode::FFma32) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstMix {
    entries: Vec<(Opcode, f64)>,
    cumulative: Vec<f64>,
}

impl InstMix {
    /// Builds a mix from `(opcode, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is non-positive.
    pub fn new(weights: Vec<(Opcode, f64)>) -> Self {
        assert!(!weights.is_empty(), "a mix needs at least one opcode");
        assert!(
            weights.iter().all(|&(_, w)| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        let entries: Vec<(Opcode, f64)> =
            weights.into_iter().map(|(op, w)| (op, w / total)).collect();
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for &(_, w) in &entries {
            acc += w;
            cumulative.push(acc);
        }
        // Guard against rounding: the last boundary is exactly 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        InstMix {
            entries,
            cumulative,
        }
    }

    /// The normalized weight of an opcode (zero if absent).
    pub fn weight_of(&self, op: Opcode) -> f64 {
        self.entries
            .iter()
            .find(|&&(o, _)| o == op)
            .map(|&(_, w)| w)
            .unwrap_or(0.0)
    }

    /// Samples one opcode.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Opcode {
        let u: f64 = rng.gen();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.entries.len() - 1);
        self.entries[idx].0
    }

    /// The opcodes in this mix.
    pub fn opcodes(&self) -> impl Iterator<Item = Opcode> + '_ {
        self.entries.iter().map(|&(op, _)| op)
    }

    /// FP32 dense-math mix (back-propagation, stencils): FMA-dominated
    /// with adds, multiplies and the occasional transcendental.
    pub fn fp32_dense() -> Self {
        InstMix::new(vec![
            (Opcode::FFma32, 5.0),
            (Opcode::FAdd32, 2.5),
            (Opcode::FMul32, 2.0),
            (Opcode::IAdd32, 1.2),
            (Opcode::Mov32, 0.8),
            (Opcode::FExp232, 0.3),
            (Opcode::Setp, 0.4),
            (Opcode::Bra, 0.3),
        ])
    }

    /// FP64 HPC mix (CoMD, Lulesh, Nekbone): double-precision FMA chains
    /// with square roots and reciprocals.
    pub fn fp64_hpc() -> Self {
        InstMix::new(vec![
            (Opcode::FFma64, 4.0),
            (Opcode::FAdd64, 2.5),
            (Opcode::FMul64, 2.0),
            (Opcode::FSqrt32, 0.4),
            (Opcode::FRcp32, 0.3),
            (Opcode::IAdd32, 1.0),
            (Opcode::Setp, 0.4),
            (Opcode::Bra, 0.4),
        ])
    }

    /// Integer/pointer-chasing mix (B+Tree, BFS): compares, adds, logic.
    pub fn int_graph() -> Self {
        InstMix::new(vec![
            (Opcode::IAdd32, 3.5),
            (Opcode::ISub32, 1.0),
            (Opcode::And32, 1.0),
            (Opcode::Or32, 0.6),
            (Opcode::Setp, 2.0),
            (Opcode::Bra, 1.6),
            (Opcode::Mov32, 1.3),
            (Opcode::IMad32, 0.8),
        ])
    }

    /// Table-lookup physics mix (RSBench): FP64 evaluation with integer
    /// indexing and transcendentals.
    pub fn lookup_physics() -> Self {
        InstMix::new(vec![
            (Opcode::FFma64, 3.0),
            (Opcode::FMul64, 2.0),
            (Opcode::FAdd64, 1.5),
            (Opcode::IMul32, 1.0),
            (Opcode::IAdd32, 1.5),
            (Opcode::FExp232, 0.5),
            (Opcode::FLog232, 0.4),
            (Opcode::Setp, 0.5),
        ])
    }

    /// FP32 streaming mix (Stream, SRAD, Kmeans): short FMA bursts over
    /// loads.
    pub fn fp32_stream() -> Self {
        InstMix::new(vec![
            (Opcode::FFma32, 3.0),
            (Opcode::FAdd32, 2.0),
            (Opcode::FMul32, 1.5),
            (Opcode::IAdd32, 1.5),
            (Opcode::Mov32, 1.0),
            (Opcode::Bra, 0.5),
        ])
    }

    /// Distance/clustering mix (Kmeans, PathFinder): FP32 with integer
    /// control and compares.
    pub fn fp32_control() -> Self {
        InstMix::new(vec![
            (Opcode::FAdd32, 2.0),
            (Opcode::FMul32, 1.5),
            (Opcode::FFma32, 2.0),
            (Opcode::ISub32, 1.0),
            (Opcode::IAdd32, 1.5),
            (Opcode::Setp, 1.5),
            (Opcode::Bra, 1.0),
            (Opcode::FSqrt32, 0.3),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weights_normalize() {
        let mix = InstMix::new(vec![(Opcode::FAdd32, 1.0), (Opcode::FMul32, 3.0)]);
        assert!((mix.weight_of(Opcode::FAdd32) - 0.25).abs() < 1e-12);
        assert!((mix.weight_of(Opcode::FMul32) - 0.75).abs() < 1e-12);
        assert_eq!(mix.weight_of(Opcode::Bra), 0.0);
    }

    #[test]
    fn sampling_tracks_weights() {
        let mix = InstMix::new(vec![(Opcode::FAdd32, 1.0), (Opcode::FMul32, 3.0)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 40_000;
        let muls = (0..n)
            .filter(|_| mix.sample(&mut rng) == Opcode::FMul32)
            .count();
        let frac = muls as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = InstMix::fp32_dense();
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut a), mix.sample(&mut b));
        }
    }

    #[test]
    fn presets_are_well_formed() {
        for mix in [
            InstMix::fp32_dense(),
            InstMix::fp64_hpc(),
            InstMix::int_graph(),
            InstMix::lookup_physics(),
            InstMix::fp32_stream(),
            InstMix::fp32_control(),
        ] {
            let total: f64 = mix.opcodes().map(|op| mix.weight_of(op)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fp64_mix_is_fp64_dominated() {
        let mix = InstMix::fp64_hpc();
        let fp64: f64 = mix
            .opcodes()
            .filter(|op| op.is_fp64())
            .map(|op| mix.weight_of(op))
            .sum();
        assert!(fp64 > 0.5, "got {fp64}");
    }

    #[test]
    #[should_panic(expected = "at least one opcode")]
    fn empty_mix_panics() {
        let _ = InstMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_panics() {
        let _ = InstMix::new(vec![(Opcode::FAdd32, 0.0)]);
    }
}
