#![deny(missing_docs)]

//! Synthetic surrogates for the Rodinia/CORAL benchmark suite (Table II).
//!
//! The paper drives its simulator with traces of 18 real GPU applications;
//! we have no CUDA toolchain or traces, so this crate provides
//! *surrogates*: deterministic trace generators parameterized to match
//! each application's published character — instruction mix (FP32 / FP64 /
//! integer), compute-to-memory intensity (the Table II C/M categories),
//! working-set size and reuse structure (which governs the cache-capacity
//! response as aggregate L2 grows), sharing pattern (which governs
//! first-touch NUMA traffic), kernel-launch granularity (BFS and MiniAMR
//! launch hundreds of sub-millisecond kernels), and control divergence.
//!
//! # Examples
//!
//! ```
//! use workloads::{scaling_suite, Scale};
//!
//! let suite = scaling_suite();
//! assert_eq!(suite.len(), 14);
//! let launches = suite[0].launches(Scale::Smoke);
//! assert!(!launches.is_empty());
//! ```

pub mod gen;
pub mod mix;
pub mod suite;

pub use gen::{AccessPattern, KernelParams, SurrogateKernel};
pub use mix::InstMix;
pub use suite::{by_name, scaling_suite, suite, Category, Scale, WorkloadSpec};
