//! Property tests for the surrogate generators: traces must be
//! deterministic, exactly sized, and confined to their declared regions.

use common::{CtaId, WarpId};
use isa::{KernelProgram, MemSpace, WarpInstr};
use proptest::prelude::*;
use workloads::gen::{AccessPattern, KernelParams, SurrogateKernel};
use workloads::mix::InstMix;

fn pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        (1_u32..4, 0.0_f64..0.5)
            .prop_map(|(reuse, misalign)| { AccessPattern::PrivateStream { reuse, misalign } }),
        (1_u32..16, 64_u64..4096, 0.0_f64..0.5).prop_map(|(tile, fp, spread)| {
            AccessPattern::TiledShared {
                tile_lines: tile,
                footprint_lines: fp,
                spread,
            }
        }),
        (64_u64..4096).prop_map(|fp| AccessPattern::RandomShared {
            footprint_lines: fp
        }),
        (0.0_f64..0.5, 1_u32..4)
            .prop_map(|(halo, reuse)| { AccessPattern::Stencil { halo, reuse } }),
    ]
}

fn params() -> impl Strategy<Value = KernelParams> {
    (
        1_u32..32,    // ctas
        1_u32..8,     // warps per cta
        0_u32..8,     // compute per mem
        0_u32..32,    // mem refs
        0_u32..16,    // trailing
        0.0_f64..1.0, // store fraction
        0_u32..3,     // shared per mem
        pattern(),
        any::<u64>(), // seed
    )
        .prop_map(
            |(ctas, wpc, cpm, mem, trailing, store, shared, pattern, seed)| KernelParams {
                name: "prop".into(),
                ctas,
                warps_per_cta: wpc,
                compute_per_mem: cpm,
                mem_refs_per_warp: mem,
                trailing_compute: trailing,
                store_fraction: store,
                shared_per_mem: shared,
                mix: InstMix::fp32_stream(),
                pattern,
                region: 1 << 40,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_length_matches_formula(p in params(), cta in 0_u32..32, warp in 0_u32..8) {
        let cta = cta % p.ctas;
        let warp = warp % p.warps_per_cta;
        let expected = p.mem_refs_per_warp as usize
            * (p.compute_per_mem + p.shared_per_mem + 1) as usize
            + p.trailing_compute as usize;
        let k = SurrogateKernel::new(p);
        let n = k.warp_instructions(CtaId::new(cta), WarpId::new(warp)).count();
        prop_assert_eq!(n, expected);
    }

    #[test]
    fn streams_replay_identically(p in params(), cta in 0_u32..32, warp in 0_u32..8) {
        let cta = cta % p.ctas;
        let warp = warp % p.warps_per_cta;
        let k = SurrogateKernel::new(p);
        let a: Vec<WarpInstr> =
            k.warp_instructions(CtaId::new(cta), WarpId::new(warp)).collect();
        let b: Vec<WarpInstr> =
            k.warp_instructions(CtaId::new(cta), WarpId::new(warp)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn global_addresses_stay_in_declared_region(p in params(), cta in 0_u32..32) {
        let cta = cta % p.ctas;
        let k = SurrogateKernel::new(p);
        let regions = k.data_regions();
        prop_assert_eq!(regions.len(), 1);
        let (base, len) = regions[0];
        for warp in 0..k.grid().warps_per_cta {
            for instr in k.warp_instructions(CtaId::new(cta), WarpId::new(warp)) {
                if let WarpInstr::Mem(m) = instr {
                    if m.space == MemSpace::Global {
                        prop_assert!(
                            m.addr >= base && m.addr < base + len.max(128),
                            "addr {:#x} outside [{:#x}, {:#x})",
                            m.addr, base, base + len
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn addresses_are_line_aligned(p in params()) {
        let k = SurrogateKernel::new(p);
        for instr in k.warp_instructions(CtaId::new(0), WarpId::new(0)) {
            if let WarpInstr::Mem(m) = instr {
                if m.space == MemSpace::Global {
                    prop_assert_eq!(m.addr % 128, 0);
                }
            }
        }
    }

    #[test]
    fn store_fraction_zero_means_no_stores(mut p in params()) {
        p.store_fraction = 0.0;
        let k = SurrogateKernel::new(p);
        for instr in k.warp_instructions(CtaId::new(0), WarpId::new(0)) {
            if let WarpInstr::Mem(m) = instr {
                prop_assert!(!m.is_store);
            }
        }
    }
}
