//! Golden snapshot tests for the artifact JSON schema.
//!
//! These pin the *shape* of the emitted JSON (key names, nesting, row
//! counts), not the floating-point values — the values are covered by
//! the figure tests and the reproduction verdicts. A failure here means
//! downstream consumers of `xp run --format json` would break.

use common::json::Json;
use workloads::{by_name, Scale};
use xp::{ArtifactRegistry, Lab, RegistryOptions};

fn smoke_suite() -> Vec<workloads::WorkloadSpec> {
    ["Stream", "Hotspot", "Nekbone-12"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect()
}

fn evaluate(id: &str) -> Json {
    let registry = ArtifactRegistry::standard(&RegistryOptions::default());
    let artifact = registry.get(id).expect("artifact registered");
    let lab = Lab::new(Scale::Smoke);
    let data = artifact
        .evaluate(&lab, &smoke_suite())
        .expect("smoke evaluation succeeds");
    data.json
}

/// Round-trips a document through the strict parser and checks the
/// envelope every artifact shares.
fn roundtrip(id: &str, json: &Json) -> Json {
    assert_eq!(json.get("id").and_then(Json::as_str), Some(id));
    assert!(json.get("title").and_then(Json::as_str).is_some());
    let compact = Json::parse(&json.render()).expect("compact form parses");
    let pretty = Json::parse(&json.render_pretty()).expect("pretty form parses");
    assert_eq!(compact, pretty, "compact and pretty forms must agree");
    pretty
}

#[test]
fn fig2_json_schema_is_stable() {
    let json = evaluate("fig2");
    let parsed = roundtrip("fig2", &json);

    // Envelope first, then the payload: one point per GPM count.
    assert_eq!(parsed.keys()[..2], ["id", "title"]);
    let points = parsed
        .get("points")
        .and_then(Json::as_array)
        .expect("fig2 payload has a points array");
    assert_eq!(points.len(), 5, "one point per scaled GPM count");
    let mut last_gpms = 0.0;
    for point in points {
        assert_eq!(point.keys(), vec!["gpms", "energy_ratio"]);
        let gpms = point.get("gpms").and_then(Json::as_f64).unwrap();
        assert!(gpms > last_gpms, "points ordered by GPM count");
        last_gpms = gpms;
        let ratio = point.get("energy_ratio").and_then(Json::as_f64).unwrap();
        assert!(ratio >= 1.0, "scaling never reduces energy below ideal");
    }
}

#[test]
fn fig6_json_schema_is_stable() {
    let json = evaluate("fig6");
    let parsed = roundtrip("fig6", &json);

    assert_eq!(parsed.keys()[..2], ["id", "title"]);
    let rows = parsed
        .get("rows")
        .and_then(Json::as_array)
        .expect("fig6 payload has a rows array");
    assert_eq!(rows.len(), 5, "one row per scaled GPM count");
    for row in rows {
        assert_eq!(
            row.keys(),
            vec![
                "gpms",
                "compute_edpse_pct",
                "memory_edpse_pct",
                "all_edpse_pct"
            ]
        );
        for key in ["compute_edpse_pct", "memory_edpse_pct", "all_edpse_pct"] {
            let v = row.get(key).and_then(Json::as_f64).unwrap();
            assert!(v > 0.0 && v <= 110.0, "{key} out of range: {v}");
        }
    }
}

#[test]
fn every_registered_artifact_declares_a_consistent_plan() {
    // Static schema properties that need no evaluation: unique ids,
    // non-empty titles, and plans that the driver can merge.
    let registry = ArtifactRegistry::standard(&RegistryOptions::default());
    let mut union = xp::SweepPlan::none();
    for artifact in registry.iter() {
        assert!(
            !artifact.title().is_empty(),
            "{} has no title",
            artifact.id()
        );
        union.merge(artifact.plan());
    }
    assert!(union.needs_fit, "validation artifacts require the fit");
    assert!(
        union.configs.len() > 50,
        "the union plan covers the full sweep space"
    );
}
