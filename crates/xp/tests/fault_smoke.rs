//! End-to-end fault-injection smoke for the `xp` driver.
//!
//! One scenario, run as a single test because sensor faults are armed
//! process-wide: a fault-free reference run, a faulted run with retries
//! (must be byte-identical — injected runtime faults are transient), a
//! resume that skips up-to-date artifacts, a run whose faults exhaust
//! the retry budget (isolated failure, exit code 1, journaled), a
//! resume that heals it, and a sensor-fault run that must complete with
//! valid JSON (sensor glitches perturb measured data by design, so no
//! byte comparison there).

use common::json::Json;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-fault-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn argv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn faulted_runs_are_byte_identical_journaled_and_resumable() {
    // Fault-free reference run.
    let clean = temp_dir("clean");
    assert_eq!(
        xp::cli::main(&argv(&[
            "run",
            "fig2",
            "--smoke",
            "--format",
            "json",
            "--out",
            clean.to_str().unwrap(),
        ])),
        0
    );

    // Runtime faults well above 10%, retried to success: the artifact
    // JSON must match the fault-free run byte for byte.
    let faulted = temp_dir("faulted");
    assert_eq!(
        xp::cli::main(&argv(&[
            "run",
            "fig2",
            "--smoke",
            "--format",
            "json",
            "--out",
            faulted.to_str().unwrap(),
            "--faults",
            "seed=7,panic=0.2,delay=0.1,delay-ms=5,poison=0.15",
            "--retries",
            "3",
        ])),
        0
    );
    assert_eq!(
        read(&clean.join("fig2.json")),
        read(&faulted.join("fig2.json")),
        "transient faults with retries must not change results"
    );

    // The manifest's sweep metrics record the retries the faults forced.
    let manifest = Json::parse(&read(&faulted.join("manifest.json"))).unwrap();
    let retries: f64 = manifest
        .get("sweeps")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|m| m.get("retries").and_then(Json::as_f64))
        .sum();
    assert!(retries > 0.0, "injected faults should force retries");

    // The journal has exactly one ok record for fig2.
    let journal = Json::parse_jsonl(&read(&faulted.join("journal.jsonl"))).unwrap();
    assert_eq!(journal.len(), 1);
    assert_eq!(
        journal[0].get("artifact").and_then(Json::as_str),
        Some("fig2")
    );
    assert_eq!(journal[0].get("status").and_then(Json::as_str), Some("ok"));
    assert!(journal[0].get("digest").and_then(Json::as_str).is_some());

    // Resume skips the up-to-date artifact.
    assert_eq!(
        xp::cli::main(&argv(&[
            "run",
            "fig2",
            "--smoke",
            "--format",
            "json",
            "--resume",
            faulted.to_str().unwrap(),
        ])),
        0
    );
    let manifest = Json::parse(&read(&faulted.join("manifest.json"))).unwrap();
    assert_eq!(
        manifest.get("resumed_artifacts").and_then(Json::as_f64),
        Some(1.0)
    );
    let entry = &manifest.get("artifacts").and_then(Json::as_array).unwrap()[0];
    assert_eq!(entry.get("resumed").and_then(Json::as_bool), Some(true));

    // Certain faults with no retry budget fail the artifact but leave a
    // usable directory: exit 1, typed error in the manifest, journaled.
    let failing = temp_dir("failing");
    assert_eq!(
        xp::cli::main(&argv(&[
            "run",
            "fig2",
            "--smoke",
            "--format",
            "json",
            "--out",
            failing.to_str().unwrap(),
            "--faults",
            "seed=7,panic=1.0",
        ])),
        1
    );
    let manifest = Json::parse(&read(&failing.join("manifest.json"))).unwrap();
    let failed = manifest
        .get("failed_artifacts")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(failed.len(), 1);
    assert_eq!(
        failed[0].get("artifact").and_then(Json::as_str),
        Some("fig2")
    );
    let journal = Json::parse_jsonl(&read(&failing.join("journal.jsonl"))).unwrap();
    assert_eq!(
        journal[0].get("status").and_then(Json::as_str),
        Some("failed")
    );

    // Resuming with a retry budget reruns only the failed artifact and
    // heals it: every fault is transient, so attempt two succeeds.
    assert_eq!(
        xp::cli::main(&argv(&[
            "run",
            "fig2",
            "--smoke",
            "--format",
            "json",
            "--resume",
            failing.to_str().unwrap(),
            "--faults",
            "seed=7,panic=1.0",
            "--retries",
            "2",
        ])),
        0
    );
    assert_eq!(
        read(&clean.join("fig2.json")),
        read(&failing.join("fig2.json")),
        "a healed resume must converge on the fault-free results"
    );
    let journal = Json::parse_jsonl(&read(&failing.join("journal.jsonl"))).unwrap();
    assert_eq!(journal.len(), 1);
    assert_eq!(journal[0].get("status").and_then(Json::as_str), Some("ok"));

    // Sensor faults (NaN readings, dropouts) perturb measured data by
    // design: assert completion and valid JSON, not byte identity.
    let sensors = temp_dir("sensors");
    assert_eq!(
        xp::cli::main(&argv(&[
            "run",
            "fig2",
            "--smoke",
            "--format",
            "json",
            "--out",
            sensors.to_str().unwrap(),
            "--faults",
            "seed=11,nan=0.1,dropout=0.1",
        ])),
        0
    );
    assert!(Json::parse(&read(&sensors.join("fig2.json"))).is_ok());

    for dir in [clean, faulted, failing, sensors] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
