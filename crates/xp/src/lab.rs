//! The lab: runs (workload, configuration) points through the performance
//! simulator, caches the event counts, and evaluates energy metrics.
//!
//! Simulation is the expensive half (seconds per point); energy evaluation
//! is microseconds. The cache is keyed by everything that affects the
//! *simulation* — energy-model knobs (link pJ/bit, amortization) reuse the
//! same counts, which is exactly how the paper's point studies work.
//!
//! Since the runtime port, the cache is a [`runtime::ShardedCache`] shared
//! across threads and sweeps go through a [`runtime::SweepExecutor`]:
//! figure generators call [`Lab::prime`] (or [`Lab::prime_suite`]) to
//! simulate every point of their sweep in parallel, then evaluate
//! serially against the warm cache, so the printed output is byte-for-byte
//! identical no matter how many worker threads ran the simulations.

use crate::configs::ExpConfig;
use common::units::Time;
use gpujoule::{EdpScalingEfficiency, EnergyBreakdown, EnergyDelay};
use isa::EventCounts;
use runtime::{
    FaultPlan, RetryPolicy, ShardedCache, SweepError, SweepExecutor, SweepMetrics, SweepReport,
};
use sim::GpuSim;
use std::sync::{Arc, Mutex};
use workloads::{Scale, WorkloadSpec};

/// A fully evaluated experiment point.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Workload name.
    pub workload: String,
    /// The configuration evaluated.
    pub config: ExpConfig,
    /// Simulated event counts (workload total).
    pub counts: Arc<EventCounts>,
    /// Energy breakdown under this configuration's energy model.
    pub breakdown: EnergyBreakdown,
}

impl RunPoint {
    /// The (energy, delay) pair of this point.
    pub fn energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.breakdown.total(), self.counts.elapsed)
    }

    /// Time to solution.
    pub fn duration(&self) -> Time {
        self.counts.elapsed
    }
}

/// Cache key: the simulation-relevant parts of a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimKey {
    workload: String,
    gpms: usize,
    bw: &'static str,
    topology: String,
    link_latency: u64,
    schedule: String,
    pages: String,
    l2_mode: String,
    mlp: usize,
    compression_milli: u64,
    clock_milli: u64,
    warp_scheduler: String,
}

/// The simulation cache key for `(workload, config)`.
fn sim_key(workload: &WorkloadSpec, config: &ExpConfig) -> SimKey {
    let sim_cfg = config.sim_config();
    SimKey {
        workload: workload.name.to_string(),
        gpms: config.gpms,
        bw: config.bw.label(),
        topology: config.topology.to_string(),
        link_latency: sim_cfg.link_latency,
        schedule: sim_cfg.cta_schedule.to_string(),
        pages: sim_cfg.page_policy.to_string(),
        l2_mode: sim_cfg.l2_mode.to_string(),
        mlp: sim_cfg.gpm.mlp_per_warp,
        compression_milli: (sim_cfg.link_compression * 1000.0) as u64,
        clock_milli: (config.clock_scale * 1000.0) as u64,
        warp_scheduler: sim_cfg.warp_scheduler.to_string(),
    }
}

/// Runs the simulator for one `(workload, config)` point.
fn simulate(scale: Scale, workload: &WorkloadSpec, config: &ExpConfig) -> Arc<EventCounts> {
    let sim_cfg = config.sim_config();
    let mut sim = GpuSim::new(&sim_cfg);
    let result = sim.run_workload(&workload.launches(scale));
    Arc::new(result.total_counts())
}

/// The experiment runner: a parallel sweep executor in front of a
/// process-wide simulation cache.
///
/// [`Lab::new`] is serial (one thread, no pool) — the exact semantics the
/// lab had before the runtime port, which unit tests and benches rely on.
/// Binaries construct a parallel lab through [`crate::lab_from_args`],
/// which honors `--threads N` and `MMGPU_THREADS`.
pub struct Lab {
    scale: Scale,
    cache: Arc<ShardedCache<SimKey, Arc<EventCounts>>>,
    executor: SweepExecutor,
    /// Metrics of every [`Lab::prime`] sweep, in execution order (the
    /// `xp` driver records the whole history in its run manifest).
    sweeps: Mutex<Vec<Arc<SweepMetrics>>>,
}

impl Lab {
    /// A serial lab running workloads at the given problem scale.
    pub fn new(scale: Scale) -> Self {
        Lab::with_threads(scale, 1)
    }

    /// A lab whose sweeps run on `threads` worker threads (1 = serial).
    pub fn with_threads(scale: Scale, threads: usize) -> Self {
        let threads = threads.max(1);
        Lab {
            scale,
            cache: Arc::new(ShardedCache::for_threads(threads)),
            executor: SweepExecutor::new(threads).with_progress(threads > 1),
            sweeps: Mutex::new(Vec::new()),
        }
    }

    /// Enables or disables the executor's periodic stderr progress line
    /// in place. [`Lab::with_threads`] turns it on for parallel labs;
    /// the `xpd` daemon turns it back off so nothing interleaves with
    /// its per-request log lines (protocol responses go to sockets and
    /// are never at risk, but server logs should stay line-atomic too).
    pub fn set_progress(&mut self, progress: bool) {
        self.executor.set_progress(progress);
    }

    /// Sets the executor's retry policy for subsequent sweeps.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.executor.set_retry_policy(policy);
        self
    }

    /// Arms a deterministic fault plan on the executor (tests and the
    /// `xp --faults` flag).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.executor.set_faults(Some(plan));
        self
    }

    /// The problem scale this lab runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Number of sweep worker threads (1 means serial).
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Simulated event counts for `(workload, config)`, cached.
    pub fn counts(&self, workload: &WorkloadSpec, config: &ExpConfig) -> Arc<EventCounts> {
        let key = sim_key(workload, config);
        self.cache
            .get_or_compute_unwrap(&key, || simulate(self.scale, workload, config))
    }

    /// Simulates every `(workload, config)` pair on the executor's worker
    /// threads, filling the cache. Duplicate pairs — and pairs already
    /// cached by earlier sweeps — are simulated once. Returns the sweep
    /// report (submission-ordered outcomes plus metrics); a panicking
    /// point surfaces as a per-point [`runtime::SweepError`] without
    /// aborting the rest of the sweep.
    pub fn prime(&self, points: &[(WorkloadSpec, ExpConfig)]) -> SweepReport<Arc<EventCounts>> {
        let _span = trace::span("xp.prime");
        let scale = self.scale;
        let items: Vec<(SimKey, (WorkloadSpec, ExpConfig))> = points
            .iter()
            .map(|(w, c)| (sim_key(w, c), (w.clone(), c.clone())))
            .collect();
        let report = self
            .executor
            .run_keyed(&self.cache, items, move |_key, (w, c)| {
                simulate(scale, w, c)
            });
        self.sweeps
            .lock()
            .unwrap()
            .push(Arc::clone(&report.metrics));
        report
    }

    /// Primes the cross product `suite x (configs + the 1-GPM baseline)`.
    /// Figure generators call this before their serial evaluation loops:
    /// every metric (EDPSE, speedup, energy ratio) needs the baseline, so
    /// it is always included.
    ///
    /// A point that fails even after the executor's retries surfaces
    /// here as the sweep's first [`SweepError`], so callers report a
    /// typed artifact failure instead of re-panicking during the serial
    /// evaluation pass.
    pub fn prime_suite(
        &self,
        suite: &[WorkloadSpec],
        configs: &[ExpConfig],
    ) -> Result<(), SweepError> {
        let mut points = Vec::with_capacity(suite.len() * (configs.len() + 1));
        for w in suite {
            points.push((w.clone(), ExpConfig::baseline()));
            for cfg in configs {
                points.push((w.clone(), cfg.clone()));
            }
        }
        let report = self.prime(points.as_slice());
        match report.first_error() {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    /// Metrics of the most recent [`Lab::prime`] sweep, if any ran.
    pub fn last_sweep_metrics(&self) -> Option<Arc<SweepMetrics>> {
        self.sweeps.lock().unwrap().last().cloned()
    }

    /// Metrics of every sweep this lab has run, in execution order.
    pub fn sweep_history(&self) -> Vec<Arc<SweepMetrics>> {
        self.sweeps.lock().unwrap().clone()
    }

    /// Prints the most recent sweep's summary table to stderr, plus the
    /// total number of cached simulations. No-op for serial labs (the
    /// historical quiet behavior) and before any sweep has run.
    pub fn print_sweep_summary(&self) {
        if self.threads() <= 1 {
            return;
        }
        if let Some(metrics) = self.last_sweep_metrics() {
            eprintln!(
                "\nlast sweep ({} threads):\n{}total cached simulations: {}",
                self.threads(),
                metrics.summary_table().render(),
                self.cached_runs()
            );
        }
    }

    /// Fully evaluates one experiment point.
    pub fn point(&self, workload: &WorkloadSpec, config: &ExpConfig) -> RunPoint {
        let counts = self.counts(workload, config);
        let model = config.energy_config().build_model();
        let breakdown = model.estimate(&counts);
        RunPoint {
            workload: workload.name.to_string(),
            config: config.clone(),
            counts,
            breakdown,
        }
    }

    /// The 1-GPM baseline point for a workload.
    pub fn baseline(&self, workload: &WorkloadSpec) -> RunPoint {
        self.point(workload, &ExpConfig::baseline())
    }

    /// EDPSE (%) of `config` for one workload against its 1-GPM baseline.
    pub fn edpse(&self, workload: &WorkloadSpec, config: &ExpConfig) -> f64 {
        let base = self.baseline(workload).energy_delay();
        let scaled = self.point(workload, config).energy_delay();
        EdpScalingEfficiency::compute(base, scaled, config.gpms)
            .expect("gpms >= 1")
            .percent()
    }

    /// Speedup of `config` over the 1-GPM baseline for one workload.
    pub fn speedup(&self, workload: &WorkloadSpec, config: &ExpConfig) -> f64 {
        let base = self.baseline(workload).energy_delay();
        let scaled = self.point(workload, config).energy_delay();
        scaled.speedup_over(base)
    }

    /// Energy of `config` normalized to the 1-GPM baseline.
    pub fn energy_ratio(&self, workload: &WorkloadSpec, config: &ExpConfig) -> f64 {
        let base = self.baseline(workload).energy_delay();
        let scaled = self.point(workload, config).energy_delay();
        scaled.energy_ratio_over(base)
    }

    /// Number of cached simulation results.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }
}

// The executor moves these across worker threads; keep the bound explicit
// so a future `Rc`/`RefCell` in the simulator fails here, with a clear
// message, instead of deep inside a closure bound.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GpuSim>();
    assert_send_sync::<WorkloadSpec>();
    assert_send_sync::<ExpConfig>();
    assert_send_sync::<EventCounts>();
    assert_send_sync::<Lab>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sim::BwSetting;
    use workloads::by_name;

    #[test]
    fn cache_hits_for_energy_only_variants() {
        let lab = Lab::new(Scale::Smoke);
        let w = by_name("Stream").unwrap();
        let cfg = ExpConfig::paper_default(2, BwSetting::X2);
        let _ = lab.point(&w, &cfg);
        assert_eq!(lab.cached_runs(), 1);
        // Same sim, different energy knob: no new simulation.
        let cfg2 = cfg.clone().with_link_energy_mult(4.0);
        let _ = lab.point(&w, &cfg2);
        assert_eq!(lab.cached_runs(), 1);
        // Different GPM count: new simulation.
        let cfg3 = ExpConfig::paper_default(4, BwSetting::X2);
        let _ = lab.point(&w, &cfg3);
        assert_eq!(lab.cached_runs(), 2);
    }

    #[test]
    fn edpse_of_baseline_is_100() {
        let lab = Lab::new(Scale::Smoke);
        let w = by_name("Hotspot").unwrap();
        let pe = lab.edpse(&w, &ExpConfig::baseline());
        assert!((pe - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_speeds_up_and_costs_energy() {
        let lab = Lab::new(Scale::Smoke);
        let w = by_name("Stream").unwrap();
        let cfg = ExpConfig::paper_default(4, BwSetting::X2);
        let s = lab.speedup(&w, &cfg);
        assert!(s > 1.2, "4 GPMs should beat 1, got {s:.2}");
        let e = lab.energy_ratio(&w, &cfg);
        assert!(e > 0.8, "energy should not collapse, got {e:.2}");
    }

    #[test]
    fn link_energy_multiplier_raises_energy_only() {
        let lab = Lab::new(Scale::Smoke);
        let w = by_name("Stream").unwrap();
        let base_cfg = ExpConfig::paper_default(4, BwSetting::X1);
        let hot_cfg = base_cfg.clone().with_link_energy_mult(4.0);
        let a = lab.point(&w, &base_cfg);
        let b = lab.point(&w, &hot_cfg);
        assert_eq!(a.duration(), b.duration());
        assert!(b.breakdown.total() > a.breakdown.total());
    }

    #[test]
    fn prime_fills_cache_in_parallel() {
        let lab = Lab::with_threads(Scale::Smoke, 4);
        let w = by_name("Stream").unwrap();
        let cfgs = [
            ExpConfig::paper_default(2, BwSetting::X2),
            ExpConfig::paper_default(4, BwSetting::X2),
        ];
        let points: Vec<(WorkloadSpec, ExpConfig)> =
            cfgs.iter().map(|c| (w.clone(), c.clone())).collect();
        let report = lab.prime(&points);
        assert_eq!(report.failures(), 0);
        assert_eq!(lab.cached_runs(), 2);
        // Evaluation after priming is pure cache hits.
        let before = lab.cached_runs();
        let _ = lab.edpse(&w, &cfgs[0]);
        // (edpse also needs the baseline, which prime() did not include.)
        assert_eq!(lab.cached_runs(), before + 1);
        let metrics = lab.last_sweep_metrics().expect("sweep ran");
        assert_eq!(
            metrics.completed.load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn parallel_results_match_serial() {
        let serial = Lab::new(Scale::Smoke);
        let parallel = Lab::with_threads(Scale::Smoke, 8);
        let w = by_name("Hotspot").unwrap();
        let cfgs = [
            ExpConfig::paper_default(2, BwSetting::X2),
            ExpConfig::paper_default(4, BwSetting::X1),
        ];
        parallel
            .prime_suite(std::slice::from_ref(&w), &cfgs)
            .unwrap();
        for cfg in &cfgs {
            assert_eq!(serial.edpse(&w, cfg), parallel.edpse(&w, cfg));
            assert_eq!(serial.speedup(&w, cfg), parallel.speedup(&w, cfg));
        }
    }
}
