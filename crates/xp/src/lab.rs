//! The lab: runs (workload, configuration) points through the performance
//! simulator, caches the event counts, and evaluates energy metrics.
//!
//! Simulation is the expensive half (seconds per point); energy evaluation
//! is microseconds. The cache is keyed by everything that affects the
//! *simulation* — energy-model knobs (link pJ/bit, amortization) reuse the
//! same counts, which is exactly how the paper's point studies work.

use crate::configs::ExpConfig;
use common::units::Time;
use gpujoule::{EdpScalingEfficiency, EnergyBreakdown, EnergyDelay};
use isa::EventCounts;
use sim::GpuSim;
use std::collections::HashMap;
use std::sync::Arc;
use workloads::{Scale, WorkloadSpec};

/// A fully evaluated experiment point.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Workload name.
    pub workload: String,
    /// The configuration evaluated.
    pub config: ExpConfig,
    /// Simulated event counts (workload total).
    pub counts: Arc<EventCounts>,
    /// Energy breakdown under this configuration's energy model.
    pub breakdown: EnergyBreakdown,
}

impl RunPoint {
    /// The (energy, delay) pair of this point.
    pub fn energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.breakdown.total(), self.counts.elapsed)
    }

    /// Time to solution.
    pub fn duration(&self) -> Time {
        self.counts.elapsed
    }
}

/// Cache key: the simulation-relevant parts of a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimKey {
    workload: String,
    gpms: usize,
    bw: &'static str,
    topology: String,
    link_latency: u64,
    schedule: String,
    pages: String,
    l2_mode: String,
    mlp: usize,
    compression_milli: u64,
    clock_milli: u64,
    warp_scheduler: String,
}

/// The experiment runner with a per-process simulation cache.
pub struct Lab {
    scale: Scale,
    cache: HashMap<SimKey, Arc<EventCounts>>,
}

impl Lab {
    /// A lab running workloads at the given problem scale.
    pub fn new(scale: Scale) -> Self {
        Lab { scale, cache: HashMap::new() }
    }

    /// The problem scale this lab runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Simulated event counts for `(workload, config)`, cached.
    pub fn counts(&mut self, workload: &WorkloadSpec, config: &ExpConfig) -> Arc<EventCounts> {
        let sim_cfg = config.sim_config();
        let key = SimKey {
            workload: workload.name.to_string(),
            gpms: config.gpms,
            bw: config.bw.label(),
            topology: config.topology.to_string(),
            link_latency: sim_cfg.link_latency,
            schedule: sim_cfg.cta_schedule.to_string(),
            pages: sim_cfg.page_policy.to_string(),
            l2_mode: sim_cfg.l2_mode.to_string(),
            mlp: sim_cfg.gpm.mlp_per_warp,
            compression_milli: (sim_cfg.link_compression * 1000.0) as u64,
            clock_milli: (config.clock_scale * 1000.0) as u64,
            warp_scheduler: sim_cfg.warp_scheduler.to_string(),
        };
        if let Some(hit) = self.cache.get(&key) {
            return Arc::clone(hit);
        }
        let mut sim = GpuSim::new(&sim_cfg);
        let result = sim.run_workload(&workload.launches(self.scale));
        let counts = Arc::new(result.total_counts());
        self.cache.insert(key, Arc::clone(&counts));
        counts
    }

    /// Fully evaluates one experiment point.
    pub fn point(&mut self, workload: &WorkloadSpec, config: &ExpConfig) -> RunPoint {
        let counts = self.counts(workload, config);
        let model = config.energy_config().build_model();
        let breakdown = model.estimate(&counts);
        RunPoint {
            workload: workload.name.to_string(),
            config: config.clone(),
            counts,
            breakdown,
        }
    }

    /// The 1-GPM baseline point for a workload.
    pub fn baseline(&mut self, workload: &WorkloadSpec) -> RunPoint {
        self.point(workload, &ExpConfig::baseline())
    }

    /// EDPSE (%) of `config` for one workload against its 1-GPM baseline.
    pub fn edpse(&mut self, workload: &WorkloadSpec, config: &ExpConfig) -> f64 {
        let base = self.baseline(workload).energy_delay();
        let scaled = self.point(workload, config).energy_delay();
        EdpScalingEfficiency::compute(base, scaled, config.gpms)
            .expect("gpms >= 1")
            .percent()
    }

    /// Speedup of `config` over the 1-GPM baseline for one workload.
    pub fn speedup(&mut self, workload: &WorkloadSpec, config: &ExpConfig) -> f64 {
        let base = self.baseline(workload).energy_delay();
        let scaled = self.point(workload, config).energy_delay();
        scaled.speedup_over(base)
    }

    /// Energy of `config` normalized to the 1-GPM baseline.
    pub fn energy_ratio(&mut self, workload: &WorkloadSpec, config: &ExpConfig) -> f64 {
        let base = self.baseline(workload).energy_delay();
        let scaled = self.point(workload, config).energy_delay();
        scaled.energy_ratio_over(base)
    }

    /// Number of cached simulation results.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::BwSetting;
    use workloads::by_name;

    #[test]
    fn cache_hits_for_energy_only_variants() {
        let mut lab = Lab::new(Scale::Smoke);
        let w = by_name("Stream").unwrap();
        let cfg = ExpConfig::paper_default(2, BwSetting::X2);
        let _ = lab.point(&w, &cfg);
        assert_eq!(lab.cached_runs(), 1);
        // Same sim, different energy knob: no new simulation.
        let cfg2 = cfg.clone().with_link_energy_mult(4.0);
        let _ = lab.point(&w, &cfg2);
        assert_eq!(lab.cached_runs(), 1);
        // Different GPM count: new simulation.
        let cfg3 = ExpConfig::paper_default(4, BwSetting::X2);
        let _ = lab.point(&w, &cfg3);
        assert_eq!(lab.cached_runs(), 2);
    }

    #[test]
    fn edpse_of_baseline_is_100() {
        let mut lab = Lab::new(Scale::Smoke);
        let w = by_name("Hotspot").unwrap();
        let pe = lab.edpse(&w, &ExpConfig::baseline());
        assert!((pe - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_speeds_up_and_costs_energy() {
        let mut lab = Lab::new(Scale::Smoke);
        let w = by_name("Stream").unwrap();
        let cfg = ExpConfig::paper_default(4, BwSetting::X2);
        let s = lab.speedup(&w, &cfg);
        assert!(s > 1.2, "4 GPMs should beat 1, got {s:.2}");
        let e = lab.energy_ratio(&w, &cfg);
        assert!(e > 0.8, "energy should not collapse, got {e:.2}");
    }

    #[test]
    fn link_energy_multiplier_raises_energy_only() {
        let mut lab = Lab::new(Scale::Smoke);
        let w = by_name("Stream").unwrap();
        let base_cfg = ExpConfig::paper_default(4, BwSetting::X1);
        let hot_cfg = base_cfg.clone().with_link_energy_mult(4.0);
        let a = lab.point(&w, &base_cfg);
        let b = lab.point(&w, &hot_cfg);
        assert_eq!(a.duration(), b.duration());
        assert!(b.breakdown.total() > a.breakdown.total());
    }
}
