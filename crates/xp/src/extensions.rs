//! Quantified versions of the paper's §V-E future-work directions:
//! idle-aware power gating, inter-GPM link compression, and the EDⁱPSE
//! metric-weighting discussion of §III/§V-D.

use crate::artifact::{mean_of, ArtifactError};
use crate::configs::ExpConfig;
use crate::lab::Lab;
use common::json::Json;
use common::table::TextTable;
use common::units::Energy;
use gpujoule::{EdipScalingEfficiency, EnergyModelBuilder, EpiTable, EptTable, PowerGating};
use isa::Opcode;
use sim::BwSetting;
use workloads::WorkloadSpec;

/// §V-E: how much of the constant-energy exposure at 32 GPMs can
/// idle-aware power gating claw back?
#[derive(Debug, Clone)]
pub struct GatingStudy {
    /// `(effectiveness, mean_energy_ratio, mean_edpse_pct)` at the studied
    /// configuration.
    pub rows: Vec<(f64, f64, f64)>,
    /// GPM count studied.
    pub gpms: usize,
}

impl GatingStudy {
    /// The sweep plan at `gpms` modules (shared by `run` and the artifact
    /// registry).
    pub fn plan_configs(gpms: usize) -> Vec<ExpConfig> {
        vec![ExpConfig::paper_default(gpms, BwSetting::X2)]
    }

    /// Sweeps gating effectiveness at `gpms` modules, 2x-BW on-package.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec], gpms: usize) -> Result<Self, ArtifactError> {
        let cfg = ExpConfig::paper_default(gpms, BwSetting::X2);
        lab.prime_suite(suite, std::slice::from_ref(&cfg))
            .map_err(|e| ArtifactError::from_sweep("extensions", e))?;
        let rows = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&eff| {
                let label = format!("gating {:.0}% @ {gpms}-GPM", eff * 100.0);
                let gating = PowerGating::new(eff);
                let mut energies = Vec::new();
                let mut edpses = Vec::new();
                for w in suite {
                    let base = lab.baseline(w);
                    let point = lab.point(w, &cfg);
                    // Gating applies to the scaled design; the 1-GPM
                    // baseline rarely idles, but gate it identically for
                    // fairness.
                    let model_base = ExpConfig::baseline().energy_config().build_model();
                    let model_scaled = cfg.energy_config().build_model();
                    let e_base = model_base.estimate_gated(&base.counts, &gating).total();
                    let e_scaled = model_scaled.estimate_gated(&point.counts, &gating).total();
                    energies.push(e_scaled.joules() / e_base.joules());
                    let edp_base = e_base.joules() * base.duration().secs();
                    let edp_scaled = e_scaled.joules() * point.duration().secs();
                    edpses.push(edp_base * 100.0 / (gpms as f64 * edp_scaled));
                }
                Ok((
                    eff,
                    mean_of("extensions", &label, &energies)?,
                    mean_of("extensions", &label, &edpses)?,
                ))
            })
            .collect::<Result<_, ArtifactError>>()?;
        Ok(GatingStudy { rows, gpms })
    }

    /// Renders the study as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["gating effectiveness", "energy vs 1-GPM", "EDPSE (%)"]);
        for &(eff, e, d) in &self.rows {
            t.row([
                format!("{:.0}%", eff * 100.0),
                format!("{e:.2}"),
                format!("{d:.1}"),
            ]);
        }
        t
    }

    /// The JSON payload: one row per gating effectiveness.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(eff, e, d) in &self.rows {
            let mut o = Json::object();
            o.insert("effectiveness", eff);
            o.insert("energy_ratio", e);
            o.insert("edpse_pct", d);
            rows.push(o);
        }
        let mut o = Json::object();
        o.insert("gpms", self.gpms);
        o.insert("rows", rows);
        o
    }
}

/// §V-E: trading compression-engine energy for link bandwidth.
#[derive(Debug, Clone)]
pub struct CompressionStudy {
    /// `(ratio, mean_speedup, mean_energy_ratio, mean_edpse_pct)`.
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// GPM count studied.
    pub gpms: usize,
}

/// Energy the compression engines burn per *uncompressed* bit moved
/// across modules (compress + decompress).
const COMPRESSION_PJ_PER_BIT: f64 = 2.0;

/// The compression ratios swept.
const COMPRESSION_RATIOS: [f64; 4] = [1.0, 1.5, 2.0, 3.0];

impl CompressionStudy {
    /// The sweep plan at `gpms` modules (shared by `run` and the artifact
    /// registry).
    pub fn plan_configs(gpms: usize) -> Vec<ExpConfig> {
        COMPRESSION_RATIOS
            .iter()
            .map(|&r| ExpConfig::paper_default(gpms, BwSetting::X1).with_link_compression(r))
            .collect()
    }

    /// Sweeps the compression ratio at `gpms` modules on the bandwidth-
    /// starved on-board 1x-BW configuration, charging the engines'
    /// energy on top.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec], gpms: usize) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs(gpms))
            .map_err(|e| ArtifactError::from_sweep("extensions", e))?;
        let rows = COMPRESSION_RATIOS
            .iter()
            .map(|&ratio| {
                let label = format!("compression {ratio:.1}x @ {gpms}-GPM");
                let cfg =
                    ExpConfig::paper_default(gpms, BwSetting::X1).with_link_compression(ratio);
                let mut speedups = Vec::new();
                let mut energies = Vec::new();
                let mut edpses = Vec::new();
                for w in suite {
                    let base = lab.baseline(w);
                    let point = lab.point(w, &cfg);
                    // Compression-engine energy: per uncompressed bit.
                    let uncompressed_bytes = point.counts.inter_gpm_bytes.count() as f64 * ratio;
                    let engine = common::units::Energy::from_picojoules(
                        COMPRESSION_PJ_PER_BIT * uncompressed_bytes * 8.0,
                    );
                    let e_scaled = point.breakdown.total() + engine;
                    let base_ed = base.energy_delay();
                    speedups.push(base.duration().secs() / point.duration().secs());
                    energies.push(e_scaled.joules() / base_ed.energy().joules());
                    let edp_scaled = e_scaled.joules() * point.duration().secs();
                    edpses.push(base_ed.edp() * 100.0 / (gpms as f64 * edp_scaled));
                }
                Ok((
                    ratio,
                    mean_of("extensions", &label, &speedups)?,
                    mean_of("extensions", &label, &energies)?,
                    mean_of("extensions", &label, &edpses)?,
                ))
            })
            .collect::<Result<_, ArtifactError>>()?;
        Ok(CompressionStudy { rows, gpms })
    }

    /// Renders the study as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "compression ratio",
            "speedup vs 1-GPM",
            "energy vs 1-GPM",
            "EDPSE (%)",
        ]);
        for &(r, s, e, d) in &self.rows {
            t.row([
                if r == 1.0 {
                    "off".to_string()
                } else {
                    format!("{r:.1}x")
                },
                format!("{s:.2}"),
                format!("{e:.2}"),
                format!("{d:.1}"),
            ]);
        }
        t
    }

    /// The JSON payload: one row per compression ratio.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(r, s, e, d) in &self.rows {
            let mut o = Json::object();
            o.insert("ratio", r);
            o.insert("speedup", s);
            o.insert("energy_ratio", e);
            o.insert("edpse_pct", d);
            rows.push(o);
        }
        let mut o = Json::object();
        o.insert("gpms", self.gpms);
        o.insert("rows", rows);
        o
    }
}

/// Module-level DVFS — the knob the paper explicitly brackets out of its
/// energy model (§V-A2 "before considering … DVFS") — quantified.
///
/// Lowering the GPM clock stretches compute but leaves the memory and
/// interconnect clocks alone, so a NUMA-throttled design loses little
/// performance while its dynamic (V²·f-scaled) compute energy falls. The
/// constant rail does not scale, which is exactly why DVFS alone cannot
/// fix the constant-energy exposure the paper identifies.
#[derive(Debug, Clone)]
pub struct DvfsStudy {
    /// `(clock_scale, mean_speedup, mean_energy_ratio, mean_edpse_pct)`.
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// GPM count studied.
    pub gpms: usize,
}

/// The clock scales swept.
const DVFS_SCALES: [f64; 4] = [1.0, 0.85, 0.7, 0.55];

impl DvfsStudy {
    /// The sweep plan at `gpms` modules (shared by `run` and the artifact
    /// registry).
    pub fn plan_configs(gpms: usize) -> Vec<ExpConfig> {
        DVFS_SCALES
            .iter()
            .map(|&s| ExpConfig::paper_default(gpms, BwSetting::X2).with_clock_scale(s))
            .collect()
    }

    /// Sweeps the GPM clock at `gpms` modules, 2x-BW on-package, with
    /// dynamic energy scaled by the classic `V ∝ f` assumption (energy
    /// per operation ∝ `scale²`).
    pub fn run(lab: &Lab, suite: &[WorkloadSpec], gpms: usize) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs(gpms))
            .map_err(|e| ArtifactError::from_sweep("extensions", e))?;
        let rows = DVFS_SCALES
            .iter()
            .map(|&scale| {
                let label = format!("clock {:.0}% @ {gpms}-GPM", scale * 100.0);
                let cfg = ExpConfig::paper_default(gpms, BwSetting::X2).with_clock_scale(scale);
                let v2 = scale * scale;
                // Dynamic (core-domain) energies scale with V²; memory
                // transaction energies and constant power do not.
                let mut epi = EpiTable::k40();
                for op in Opcode::ALL {
                    epi.set(op, epi.get(op) * v2);
                }
                let ecfg = cfg.energy_config();
                let model = EnergyModelBuilder::new()
                    .epi_table(epi)
                    .ept_table(EptTable::k40_with_hbm())
                    .ep_stall(Energy::from_nanojoules(
                        gpujoule::model::K40_EP_STALL_NANOJOULES * v2,
                    ))
                    .const_power(ecfg.total_const_power())
                    .link_per_bit(ecfg.link_energy)
                    .build();

                let mut speedups = Vec::new();
                let mut energies = Vec::new();
                let mut edpses = Vec::new();
                for w in suite {
                    let base = lab.baseline(w).energy_delay();
                    let counts = lab.counts(w, &cfg);
                    let e = model.estimate(&counts).total();
                    speedups.push(base.delay().secs() / counts.elapsed.secs());
                    energies.push(e.joules() / base.energy().joules());
                    let edp = e.joules() * counts.elapsed.secs();
                    edpses.push(base.edp() * 100.0 / (gpms as f64 * edp));
                }
                Ok((
                    scale,
                    mean_of("extensions", &label, &speedups)?,
                    mean_of("extensions", &label, &energies)?,
                    mean_of("extensions", &label, &edpses)?,
                ))
            })
            .collect::<Result<_, ArtifactError>>()?;
        Ok(DvfsStudy { rows, gpms })
    }

    /// Renders the study as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "GPM clock",
            "speedup vs 1-GPM",
            "energy vs 1-GPM",
            "EDPSE (%)",
        ]);
        for &(scale, s, e, d) in &self.rows {
            t.row([
                format!("{:.0}%", scale * 100.0),
                format!("{s:.2}"),
                format!("{e:.2}"),
                format!("{d:.1}"),
            ]);
        }
        t
    }

    /// The JSON payload: one row per clock scale.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(scale, s, e, d) in &self.rows {
            let mut o = Json::object();
            o.insert("clock_scale", scale);
            o.insert("speedup", s);
            o.insert("energy_ratio", e);
            o.insert("edpse_pct", d);
            rows.push(o);
        }
        let mut o = Json::object();
        o.insert("gpms", self.gpms);
        o.insert("rows", rows);
        o
    }
}

/// §III/§V-D: the same designs scored under EDⁱPSE for i = 0, 1, 2 —
/// energy-only, the paper's EDPSE, and the performance-weighted ED²PSE.
#[derive(Debug, Clone)]
pub struct MetricWeightStudy {
    /// `(gpm_count, ed0pse, edpse, ed2pse)` averages in percent.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

impl MetricWeightStudy {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        crate::configs::SCALED_GPM_COUNTS
            .iter()
            .map(|&n| ExpConfig::paper_default(n, BwSetting::X2))
            .collect()
    }

    /// Runs the comparison across GPM counts at 2x-BW.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("extensions", e))?;
        let rows = crate::configs::SCALED_GPM_COUNTS
            .iter()
            .map(|&n| {
                let cfg = ExpConfig::paper_default(n, BwSetting::X2);
                let mut per_i = [Vec::new(), Vec::new(), Vec::new()];
                for w in suite {
                    let base = lab.baseline(w).energy_delay();
                    let scaled = lab.point(w, &cfg).energy_delay();
                    for (i, acc) in per_i.iter_mut().enumerate() {
                        let se = EdipScalingEfficiency::compute(base, scaled, n, i as u32)
                            .expect("valid points");
                        acc.push(se.percent());
                    }
                }
                Ok((
                    n,
                    mean_of("extensions", &format!("ED0PSE @ {n}-GPM"), &per_i[0])?,
                    mean_of("extensions", &format!("EDPSE @ {n}-GPM"), &per_i[1])?,
                    mean_of("extensions", &format!("ED2PSE @ {n}-GPM"), &per_i[2])?,
                ))
            })
            .collect::<Result<_, ArtifactError>>()?;
        Ok(MetricWeightStudy { rows })
    }

    /// Renders the study as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "config",
            "ED0PSE (energy only, %)",
            "EDPSE (%)",
            "ED2PSE (%)",
        ]);
        for &(n, e0, e1, e2) in &self.rows {
            t.row([
                format!("{n}-GPM"),
                format!("{e0:.1}"),
                format!("{e1:.1}"),
                format!("{e2:.1}"),
            ]);
        }
        t
    }

    /// The JSON payload: one row per GPM count.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(n, e0, e1, e2) in &self.rows {
            let mut o = Json::object();
            o.insert("gpms", n);
            o.insert("ed0pse_pct", e0);
            o.insert("edpse_pct", e1);
            o.insert("ed2pse_pct", e2);
            rows.push(o);
        }
        let mut o = Json::object();
        o.insert("rows", rows);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{by_name, Scale};

    fn mini_suite() -> Vec<WorkloadSpec> {
        ["Stream", "Hotspot"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn gating_monotonically_improves_energy() {
        let lab = Lab::new(Scale::Smoke);
        let s = GatingStudy::run(&lab, &mini_suite(), 8).unwrap();
        assert_eq!(s.rows.len(), 5);
        for pair in s.rows.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "energy must not grow with effectiveness: {pair:?}"
            );
            assert!(
                pair[1].2 >= pair[0].2 - 1e-9,
                "EDPSE must not drop: {pair:?}"
            );
        }
    }

    #[test]
    fn compression_relieves_bandwidth_starved_designs() {
        let lab = Lab::new(Scale::Smoke);
        let suite = vec![by_name("Stream").unwrap()];
        let s = CompressionStudy::run(&lab, &suite, 8).unwrap();
        let off = s.rows[0];
        let two = s.rows[2];
        assert!(
            two.1 >= off.1,
            "2x compression should not slow things down: {:.2} vs {:.2}",
            two.1,
            off.1
        );
    }

    #[test]
    fn dvfs_trades_speed_for_dynamic_energy() {
        let lab = Lab::new(Scale::Smoke);
        let s = DvfsStudy::run(&lab, &mini_suite(), 8).unwrap();
        assert_eq!(s.rows.len(), 4);
        let nominal = s.rows[0];
        let slow = s.rows[3];
        assert!(slow.1 <= nominal.1 + 1e-9, "slower clock cannot speed up");
        assert!(nominal.0 == 1.0 && slow.0 == 0.55);
        assert!(slow.1 > 0.0 && slow.2 > 0.0);
    }

    #[test]
    fn metric_weights_order_sensibly_at_scale() {
        let lab = Lab::new(Scale::Smoke);
        let s = MetricWeightStudy::run(&lab, &mini_suite()).unwrap();
        assert_eq!(s.rows.len(), 5);
        // At large counts, performance-weighted metrics forgive sub-linear
        // scaling less than energy-only ones.
        let (_, e0, _, e2) = s.rows[s.rows.len() - 1];
        assert!(e0.is_finite() && e2.is_finite());
    }
}
