//! Figure and table generators: one function per paper artifact.
//!
//! Every generator returns plain data (so integration tests can assert the
//! paper's qualitative claims) plus a [`TextTable`] rendering that the
//! `xp` driver prints and a `to_json` payload it serializes. Averages
//! follow the paper's conventions: arithmetic means for EDPSE percentages
//! and normalized energies, geometric means for speedups.
//!
//! `run` is fallible: statistics over an empty or out-of-domain sample set
//! (possible with a filtered suite) surface as a typed
//! [`ArtifactError`] naming the artifact and sweep point instead of
//! panicking mid-run.

use crate::artifact::{geomean_of, mean_of, ArtifactError};
use crate::configs::{ExpConfig, SCALED_GPM_COUNTS};
use crate::lab::Lab;
use common::json::Json;
use common::table::TextTable;
use gpujoule::{ConstantEnergyAmortization, EnergyComponent};
use sim::{BwSetting, Topology};
use workloads::{scaling_suite, Category, WorkloadSpec};

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Figure 2: average energy (normalized to a single GPU) when strong
/// scaling with on-board integration (1x-BW ring).
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// `(gpm_count, mean_energy_ratio)` for 2–32 GPMs.
    pub points: Vec<(usize, f64)>,
}

impl Fig2 {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        SCALED_GPM_COUNTS
            .iter()
            .map(|&n| ExpConfig::paper_default(n, BwSetting::X1))
            .collect()
    }

    /// Runs the sweep.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        let cfgs = Self::plan_configs();
        lab.prime_suite(suite, &cfgs)
            .map_err(|e| ArtifactError::from_sweep("fig2", e))?;
        let points = SCALED_GPM_COUNTS
            .iter()
            .zip(&cfgs)
            .map(|(&n, cfg)| {
                let ratios: Vec<f64> = suite.iter().map(|w| lab.energy_ratio(w, cfg)).collect();
                Ok((n, mean_of("fig2", &format!("{n}-GPM"), &ratios)?))
            })
            .collect::<Result<_, _>>()?;
        Ok(Fig2 { points })
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["GPU capability", "energy vs 1-GPM (ideal = 1.0)"]);
        for &(n, e) in &self.points {
            t.row([format!("{n}x"), format!("{e:.2}")]);
        }
        t
    }

    /// The JSON payload: `points` as `{gpms, energy_ratio}` objects.
    pub fn to_json(&self) -> Json {
        let mut points = Json::array();
        for &(n, e) in &self.points {
            let mut p = Json::object();
            p.insert("gpms", n);
            p.insert("energy_ratio", e);
            points.push(p);
        }
        let mut o = Json::object();
        o.insert("points", points);
        o
    }
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// Figure 6: EDPSE by GPM count for the baseline on-package (2x-BW)
/// configuration, split into compute-intensive, memory-intensive, and all
/// workloads.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(gpm_count, compute_avg, memory_avg, all_avg)`, percentages.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

impl Fig6 {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        SCALED_GPM_COUNTS
            .iter()
            .map(|&n| ExpConfig::paper_default(n, BwSetting::X2))
            .collect()
    }

    /// Runs the sweep.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("fig6", e))?;
        let rows = SCALED_GPM_COUNTS
            .iter()
            .map(|&n| {
                let cfg = ExpConfig::paper_default(n, BwSetting::X2);
                let mut compute = Vec::new();
                let mut memory = Vec::new();
                for w in suite {
                    let e = lab.edpse(w, &cfg);
                    match w.category {
                        Category::Compute => compute.push(e),
                        Category::Memory => memory.push(e),
                    }
                }
                let all: Vec<f64> = compute.iter().chain(&memory).copied().collect();
                Ok((
                    n,
                    mean_of("fig6", &format!("{n}-GPM compute"), &compute)?,
                    mean_of("fig6", &format!("{n}-GPM memory"), &memory)?,
                    mean_of("fig6", &format!("{n}-GPM all"), &all)?,
                ))
            })
            .collect::<Result<_, _>>()?;
        Ok(Fig6 { rows })
    }

    /// The all-workloads EDPSE at a GPM count, if swept.
    pub fn all_at(&self, gpms: usize) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == gpms).map(|r| r.3)
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "config",
            "compute EDPSE (%)",
            "memory EDPSE (%)",
            "all EDPSE (%)",
        ]);
        for &(n, c, m, a) in &self.rows {
            t.row([
                format!("{n}-GPM"),
                format!("{c:.1}"),
                format!("{m:.1}"),
                format!("{a:.1}"),
            ]);
        }
        t
    }

    /// The JSON payload: per-GPM-count EDPSE percentages by category.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(n, c, m, a) in &self.rows {
            let mut r = Json::object();
            r.insert("gpms", n);
            r.insert("compute_edpse_pct", c);
            r.insert("memory_edpse_pct", m);
            r.insert("all_edpse_pct", a);
            rows.push(r);
        }
        let mut o = Json::object();
        o.insert("rows", rows);
        o
    }
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// One scaling step of Fig. 7: speedup over the preceding configuration
/// and the per-component energy increase relative to the preceding total.
#[derive(Debug, Clone)]
pub struct Fig7Step {
    /// The scaled GPM count (the step is `gpms/2 → gpms`).
    pub gpms: usize,
    /// Geometric-mean speedup over the preceding configuration.
    pub speedup: f64,
    /// Total energy increase vs the preceding configuration, percent.
    pub energy_increase_pct: f64,
    /// Signed per-component contribution to the increase, percent of the
    /// preceding total (sums to `energy_increase_pct`).
    pub components_pct: Vec<(EnergyComponent, f64)>,
}

/// Figure 7: incremental speedup and component-wise energy growth at each
/// scaling step (2x-BW on-package), plus the hypothetical monolithic
/// 16→32 comparison quoted in §V-B.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// One entry per scaling step.
    pub steps: Vec<Fig7Step>,
    /// Geometric-mean 16→32 speedup of a monolithic (ideal-interconnect)
    /// GPU, for the §V-B comparison (paper: 80.8% incremental speedup).
    pub monolithic_16_to_32: f64,
}

impl Fig7 {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        let mut cfgs: Vec<ExpConfig> = SCALED_GPM_COUNTS
            .iter()
            .map(|&n| ExpConfig::paper_default(n, BwSetting::X2))
            .collect();
        cfgs.push(ExpConfig::paper_default(16, BwSetting::X2).monolithic());
        cfgs.push(ExpConfig::paper_default(32, BwSetting::X2).monolithic());
        cfgs
    }

    /// Runs the sweep.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("fig7", e))?;
        let mut steps = Vec::new();
        for &n in &SCALED_GPM_COUNTS {
            let prev_n = n / 2;
            let step = format!("step {prev_n}->{n}");
            let cfg = ExpConfig::paper_default(n, BwSetting::X2);
            let prev_cfg = if prev_n == 1 {
                ExpConfig::baseline()
            } else {
                ExpConfig::paper_default(prev_n, BwSetting::X2)
            };

            let mut speedups = Vec::new();
            let mut totals = Vec::new();
            let mut comps: Vec<Vec<f64>> = vec![Vec::new(); EnergyComponent::COUNT];
            for w in suite {
                let prev = lab.point(w, &prev_cfg);
                let cur = lab.point(w, &cfg);
                speedups.push(prev.duration().secs() / cur.duration().secs());
                let prev_total = prev.breakdown.total().joules();
                totals.push((cur.breakdown.total().joules() - prev_total) / prev_total * 100.0);
                for c in EnergyComponent::ALL {
                    let delta = cur.breakdown.get(c).joules() - prev.breakdown.get(c).joules();
                    comps[c.index()].push(delta / prev_total * 100.0);
                }
            }
            steps.push(Fig7Step {
                gpms: n,
                speedup: geomean_of("fig7", &step, &speedups)?,
                energy_increase_pct: mean_of("fig7", &format!("{step} total energy"), &totals)?,
                components_pct: EnergyComponent::ALL
                    .iter()
                    .map(|&c| {
                        Ok((
                            c,
                            mean_of("fig7", &format!("{step} {}", c.label()), &comps[c.index()])?,
                        ))
                    })
                    .collect::<Result<_, ArtifactError>>()?,
            });
        }

        // Monolithic comparison: same workloads, ideal interconnect.
        let mono16 = ExpConfig::paper_default(16, BwSetting::X2).monolithic();
        let mono32 = ExpConfig::paper_default(32, BwSetting::X2).monolithic();
        let ratios: Vec<f64> = suite
            .iter()
            .map(|w| {
                let t16 = lab.point(w, &mono16).duration().secs();
                let t32 = lab.point(w, &mono32).duration().secs();
                t16 / t32
            })
            .collect();

        Ok(Fig7 {
            steps,
            monolithic_16_to_32: geomean_of("fig7", "monolithic 16->32", &ratios)?,
        })
    }

    /// Speedup of the `gpms/2 → gpms` step, if swept.
    pub fn step_speedup(&self, gpms: usize) -> Option<f64> {
        self.steps
            .iter()
            .find(|s| s.gpms == gpms)
            .map(|s| s.speedup)
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> TextTable {
        let mut header = vec!["step".to_string(), "speedup".into(), "dE total (%)".into()];
        header.extend(EnergyComponent::ALL.iter().map(|c| c.label().to_string()));
        let mut t = TextTable::new(header);
        for s in &self.steps {
            let mut row = vec![
                format!("{}-GPM", s.gpms),
                format!("{:.2}", s.speedup),
                format!("{:+.1}", s.energy_increase_pct),
            ];
            row.extend(s.components_pct.iter().map(|(_, v)| format!("{v:+.2}")));
            t.row(row);
        }
        t
    }

    /// The JSON payload: per-step speedup/energy deltas with component
    /// contributions, plus the §V-B monolithic comparison.
    pub fn to_json(&self) -> Json {
        let mut steps = Json::array();
        for s in &self.steps {
            let mut components = Json::array();
            for (c, v) in &s.components_pct {
                let mut e = Json::object();
                e.insert("component", c.label());
                e.insert("delta_pct", *v);
                components.push(e);
            }
            let mut r = Json::object();
            r.insert("gpms", s.gpms);
            r.insert("speedup", s.speedup);
            r.insert("energy_increase_pct", s.energy_increase_pct);
            r.insert("components", components);
            steps.push(r);
        }
        let mut o = Json::object();
        o.insert("steps", steps);
        o.insert("monolithic_16_to_32_speedup", self.monolithic_16_to_32);
        o
    }
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// Figure 8: EDPSE as a function of the interconnect-bandwidth setting.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// `(bw_setting_label, gpm_count, all-workloads EDPSE %)`.
    pub rows: Vec<(&'static str, usize, f64)>,
}

impl Fig8 {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        BwSetting::ALL
            .into_iter()
            .flat_map(|bw| {
                SCALED_GPM_COUNTS
                    .iter()
                    .map(move |&n| ExpConfig::paper_default(n, bw))
            })
            .collect()
    }

    /// Runs the sweep over all three bandwidth settings.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("fig8", e))?;
        let mut rows = Vec::new();
        for bw in BwSetting::ALL {
            for &n in &SCALED_GPM_COUNTS {
                let cfg = ExpConfig::paper_default(n, bw);
                let vals: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &cfg)).collect();
                rows.push((
                    bw.label(),
                    n,
                    mean_of("fig8", &format!("{} {n}-GPM", bw.label()), &vals)?,
                ));
            }
        }
        Ok(Fig8 { rows })
    }

    /// EDPSE at `(bw, gpms)`, if swept.
    pub fn at(&self, bw: BwSetting, gpms: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.0 == bw.label() && r.1 == gpms)
            .map(|r| r.2)
    }

    /// Renders the figure as a table (rows: GPM count; cols: bandwidth).
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "config",
            "1x-BW EDPSE (%)",
            "2x-BW EDPSE (%)",
            "4x-BW EDPSE (%)",
        ]);
        for &n in &SCALED_GPM_COUNTS {
            let get = |bw: BwSetting| {
                self.at(bw, n)
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_default()
            };
            t.row([
                format!("{n}-GPM"),
                get(BwSetting::X1),
                get(BwSetting::X2),
                get(BwSetting::X4),
            ]);
        }
        t
    }

    /// The JSON payload: one `{bw, gpms, edpse_pct}` row per point.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(bw, n, e) in &self.rows {
            let mut r = Json::object();
            r.insert("bw", bw);
            r.insert("gpms", n);
            r.insert("edpse_pct", e);
            rows.push(r);
        }
        let mut o = Json::object();
        o.insert("rows", rows);
        o
    }
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

/// Figure 9: EDPSE of on-board multi-module GPUs with a ring versus a
/// high-radix switch.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// `(series_label, gpm_count, EDPSE %)` for Ring(1x), Switch(1x),
    /// Switch(2x).
    pub rows: Vec<(&'static str, usize, f64)>,
}

impl Fig9 {
    const SERIES: [(&'static str, BwSetting, Topology); 3] = [
        ("Ring (1x-BW)", BwSetting::X1, Topology::Ring),
        ("Switch (1x-BW)", BwSetting::X1, Topology::Switch),
        ("Switch (2x-BW)", BwSetting::X2, Topology::Switch),
    ];

    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        Self::SERIES
            .iter()
            .flat_map(|&(_, bw, topo)| {
                SCALED_GPM_COUNTS
                    .iter()
                    .map(move |&n| ExpConfig::on_board(n, bw, topo))
            })
            .collect()
    }

    /// Runs the sweep.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("fig9", e))?;
        let mut rows = Vec::new();
        for (label, bw, topo) in Self::SERIES {
            for &n in &SCALED_GPM_COUNTS {
                let cfg = ExpConfig::on_board(n, bw, topo);
                let vals: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &cfg)).collect();
                rows.push((
                    label,
                    n,
                    mean_of("fig9", &format!("{label} {n}-GPM"), &vals)?,
                ));
            }
        }
        Ok(Fig9 { rows })
    }

    /// EDPSE for a series at a GPM count, if swept.
    pub fn at(&self, label: &str, gpms: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.0 == label && r.1 == gpms)
            .map(|r| r.2)
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["config", "Ring (1x-BW)", "Switch (1x-BW)", "Switch (2x-BW)"]);
        for &n in &SCALED_GPM_COUNTS {
            let get = |label: &str| {
                self.at(label, n)
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_default()
            };
            t.row([
                format!("{n}-GPM"),
                get("Ring (1x-BW)"),
                get("Switch (1x-BW)"),
                get("Switch (2x-BW)"),
            ]);
        }
        t
    }

    /// The JSON payload: one `{series, gpms, edpse_pct}` row per point.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(label, n, e) in &self.rows {
            let mut r = Json::object();
            r.insert("series", label);
            r.insert("gpms", n);
            r.insert("edpse_pct", e);
            rows.push(r);
        }
        let mut o = Json::object();
        o.insert("rows", rows);
        o
    }
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// Figure 10: absolute speedup and normalized energy across all GPM
/// counts and bandwidth settings, with constant-energy amortization in the
/// on-package domains (2x/4x-BW).
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// `(gpm_count, bw_label, geomean_speedup, mean_energy_ratio)`.
    pub rows: Vec<(usize, &'static str, f64, f64)>,
}

impl Fig10 {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        SCALED_GPM_COUNTS
            .iter()
            .flat_map(|&n| {
                BwSetting::ALL
                    .into_iter()
                    .map(move |bw| ExpConfig::paper_default(n, bw))
            })
            .collect()
    }

    /// Runs the sweep.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("fig10", e))?;
        let mut rows = Vec::new();
        for &n in &SCALED_GPM_COUNTS {
            for bw in BwSetting::ALL {
                let point = format!("{n}-GPM {}", bw.label());
                let cfg = ExpConfig::paper_default(n, bw);
                let speedups: Vec<f64> = suite.iter().map(|w| lab.speedup(w, &cfg)).collect();
                let energies: Vec<f64> = suite.iter().map(|w| lab.energy_ratio(w, &cfg)).collect();
                rows.push((
                    n,
                    bw.label(),
                    geomean_of("fig10", &format!("{point} speedup"), &speedups)?,
                    mean_of("fig10", &format!("{point} energy"), &energies)?,
                ));
            }
        }
        Ok(Fig10 { rows })
    }

    /// `(speedup, energy_ratio)` at `(gpms, bw)`, if swept.
    pub fn at(&self, gpms: usize, bw: BwSetting) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == gpms && r.1 == bw.label())
            .map(|r| (r.2, r.3))
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["config", "BW", "speedup vs 1-GPM", "energy vs 1-GPM"]);
        for &(n, bw, s, e) in &self.rows {
            t.row([
                format!("{n}-GPM"),
                bw.to_string(),
                format!("{s:.2}"),
                format!("{e:.2}"),
            ]);
        }
        t
    }

    /// The JSON payload: one `{gpms, bw, speedup, energy_ratio}` row per
    /// point.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for &(n, bw, s, e) in &self.rows {
            let mut r = Json::object();
            r.insert("gpms", n);
            r.insert("bw", bw);
            r.insert("speedup", s);
            r.insert("energy_ratio", e);
            rows.push(r);
        }
        let mut o = Json::object();
        o.insert("rows", rows);
        o
    }
}

// ---------------------------------------------------------------------------
// Point studies (§V-C / §V-D)
// ---------------------------------------------------------------------------

/// The §V-C/§V-D point studies around the 32-GPM design.
#[derive(Debug, Clone)]
pub struct PointStudies {
    /// EDPSE (%) of the 32-GPM on-board 1x-BW design at 1×/2×/4× link
    /// energy per bit (paper: <1% total impact).
    pub link_energy_edpse: Vec<(f64, f64)>,
    /// EDPSE of 32-GPM with 4× link energy *and* 2× bandwidth, vs the
    /// 1x-BW baseline (paper: +8.8% EDPSE).
    pub energy_for_bandwidth_edpse: (f64, f64),
    /// Energy saving and EDPSE gain at 32-GPM on-package (2x-BW) for
    /// 25% and 50% amortization vs none:
    /// `(fraction, energy_saving_pct, edpse_gain_pp)`.
    pub amortization: Vec<(f64, f64, f64)>,
    /// §V-D: energy reduction (%) at 32 GPMs from raising 1x→4x BW while
    /// staying on board (paper: 27.4%).
    pub energy_reduction_bw_only_pct: f64,
    /// §V-D: energy reduction (%) from additionally moving on package
    /// with constant-energy amortization (paper: 45%).
    pub energy_reduction_package_pct: f64,
}

impl PointStudies {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        vec![
            ExpConfig::paper_default(32, BwSetting::X1),
            ExpConfig::on_board(32, BwSetting::X2, Topology::Ring),
            ExpConfig::on_board(32, BwSetting::X4, Topology::Ring),
            ExpConfig::paper_default(32, BwSetting::X2),
            ExpConfig::paper_default(32, BwSetting::X4),
        ]
    }

    /// Runs all point studies.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        // Every study point reduces to one of these simulations (the
        // energy-model knobs — link pJ/bit, amortization — share counts).
        lab.prime_suite(suite, &Self::plan_configs())
            .map_err(|e| ArtifactError::from_sweep("point_studies", e))?;
        let edpse_avg = |lab: &Lab, cfg: &ExpConfig, point: &str| {
            let v: Vec<f64> = suite.iter().map(|w| lab.edpse(w, cfg)).collect();
            mean_of("point_studies", point, &v)
        };
        let energy_avg = |lab: &Lab, cfg: &ExpConfig, point: &str| {
            let v: Vec<f64> = suite.iter().map(|w| lab.energy_ratio(w, cfg)).collect();
            mean_of("point_studies", point, &v)
        };

        // Interconnect energy sensitivity.
        let base = ExpConfig::paper_default(32, BwSetting::X1);
        let link_energy_edpse = [1.0, 2.0, 4.0]
            .iter()
            .map(|&m| {
                Ok((
                    m,
                    edpse_avg(
                        lab,
                        &base.clone().with_link_energy_mult(m),
                        &format!("link energy x{m:.0}"),
                    )?,
                ))
            })
            .collect::<Result<_, ArtifactError>>()?;

        // 4x the energy buys 2x the bandwidth (stays on board).
        let expensive_fast =
            ExpConfig::on_board(32, BwSetting::X2, Topology::Ring).with_link_energy_mult(4.0);
        let energy_for_bandwidth_edpse = (
            edpse_avg(lab, &base, "1x-BW baseline")?,
            edpse_avg(lab, &expensive_fast, "4x energy for 2x BW")?,
        );

        // Amortization sensitivity at 32-GPM on-package 2x-BW.
        let no_amort = ExpConfig::paper_default(32, BwSetting::X2)
            .with_amortization(ConstantEnergyAmortization::none());
        let e_none = energy_avg(lab, &no_amort, "amortization none")?;
        let d_none = edpse_avg(lab, &no_amort, "amortization none")?;
        let amortization = [0.25, 0.5]
            .iter()
            .map(|&f| {
                let point = format!("amortization {:.0}%", f * 100.0);
                let cfg = ExpConfig::paper_default(32, BwSetting::X2)
                    .with_amortization(ConstantEnergyAmortization::new(f));
                let e = energy_avg(lab, &cfg, &point)?;
                let d = edpse_avg(lab, &cfg, &point)?;
                Ok((f, (e_none - e) / e_none * 100.0, d - d_none))
            })
            .collect::<Result<_, ArtifactError>>()?;

        // §V-D: energy reductions at 32 GPMs.
        let board_1x = energy_avg(
            lab,
            &ExpConfig::paper_default(32, BwSetting::X1),
            "board 1x-BW",
        )?;
        let board_4x = energy_avg(
            lab,
            &ExpConfig::on_board(32, BwSetting::X4, Topology::Ring),
            "board 4x-BW",
        )?;
        let package_4x = energy_avg(
            lab,
            &ExpConfig::paper_default(32, BwSetting::X4),
            "package 4x-BW",
        )?;

        Ok(PointStudies {
            link_energy_edpse,
            energy_for_bandwidth_edpse,
            amortization,
            energy_reduction_bw_only_pct: (board_1x - board_4x) / board_1x * 100.0,
            energy_reduction_package_pct: (board_1x - package_4x) / board_1x * 100.0,
        })
    }

    /// Renders the studies as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["study", "value"]);
        for &(m, e) in &self.link_energy_edpse {
            t.row([
                format!("EDPSE @ 32-GPM 1x-BW, link energy x{m:.0}"),
                format!("{e:.2}%"),
            ]);
        }
        let (base, fast) = self.energy_for_bandwidth_edpse;
        t.row([
            "EDPSE: 4x link energy for 2x bandwidth".to_string(),
            format!("{base:.2}% -> {fast:.2}% ({:+.1}pp)", fast - base),
        ]);
        for &(f, save, gain) in &self.amortization {
            t.row([
                format!("amortization {:.0}% vs none @ 32-GPM 2x-BW", f * 100.0),
                format!("energy -{save:.1}%, EDPSE {gain:+.1}pp"),
            ]);
        }
        t.row([
            "energy reduction, 32-GPM 1x->4x BW (board)".to_string(),
            format!("{:.1}%", self.energy_reduction_bw_only_pct),
        ]);
        t.row([
            "energy reduction, + on-package amortization".to_string(),
            format!("{:.1}%", self.energy_reduction_package_pct),
        ]);
        t
    }

    /// The JSON payload: all §V-C/§V-D study numbers.
    pub fn to_json(&self) -> Json {
        let mut link = Json::array();
        for &(m, e) in &self.link_energy_edpse {
            let mut r = Json::object();
            r.insert("link_energy_mult", m);
            r.insert("edpse_pct", e);
            link.push(r);
        }
        let (base, fast) = self.energy_for_bandwidth_edpse;
        let mut efb = Json::object();
        efb.insert("base_edpse_pct", base);
        efb.insert("fast_edpse_pct", fast);
        let mut amort = Json::array();
        for &(f, save, gain) in &self.amortization {
            let mut r = Json::object();
            r.insert("fraction", f);
            r.insert("energy_saving_pct", save);
            r.insert("edpse_gain_pp", gain);
            amort.push(r);
        }
        let mut o = Json::object();
        o.insert("link_energy_edpse", link);
        o.insert("energy_for_bandwidth", efb);
        o.insert("amortization", amort);
        o.insert(
            "energy_reduction_bw_only_pct",
            self.energy_reduction_bw_only_pct,
        );
        o.insert(
            "energy_reduction_package_pct",
            self.energy_reduction_package_pct,
        );
        o
    }
}

// ---------------------------------------------------------------------------
// Headline (§VII)
// ---------------------------------------------------------------------------

/// The paper's concluding headline numbers.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Mean energy of the naive (on-board, 1x-BW) 32-GPM design,
    /// normalized to 1-GPM (paper: ~2x).
    pub naive_energy_ratio: f64,
    /// Mean energy of the optimized (on-package, 4x-BW, amortized)
    /// 32-GPM design (paper: ~1.1x).
    pub optimized_energy_ratio: f64,
    /// Geometric-mean speedup of the optimized design (paper: ~18x).
    pub optimized_speedup: f64,
}

impl Headline {
    /// The sweep plan (shared by `run` and the artifact registry).
    pub fn plan_configs() -> Vec<ExpConfig> {
        vec![
            ExpConfig::paper_default(32, BwSetting::X1),
            ExpConfig::paper_default(32, BwSetting::X4),
        ]
    }

    /// Runs the comparison.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec]) -> Result<Self, ArtifactError> {
        let naive = ExpConfig::paper_default(32, BwSetting::X1);
        let optimized = ExpConfig::paper_default(32, BwSetting::X4);
        lab.prime_suite(suite, &[naive.clone(), optimized.clone()])
            .map_err(|e| ArtifactError::from_sweep("headline", e))?;
        let naive_e: Vec<f64> = suite.iter().map(|w| lab.energy_ratio(w, &naive)).collect();
        let opt_e: Vec<f64> = suite
            .iter()
            .map(|w| lab.energy_ratio(w, &optimized))
            .collect();
        let opt_s: Vec<f64> = suite.iter().map(|w| lab.speedup(w, &optimized)).collect();
        Ok(Headline {
            naive_energy_ratio: mean_of("headline", "naive 32-GPM energy", &naive_e)?,
            optimized_energy_ratio: mean_of("headline", "optimized 32-GPM energy", &opt_e)?,
            optimized_speedup: geomean_of("headline", "optimized 32-GPM speedup", &opt_s)?,
        })
    }

    /// Renders the headline numbers.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["quantity", "measured", "paper"]);
        t.row([
            "32-GPM naive energy vs 1-GPM".to_string(),
            format!("{:.2}x", self.naive_energy_ratio),
            "~2x".to_string(),
        ]);
        t.row([
            "32-GPM optimized energy vs 1-GPM".to_string(),
            format!("{:.2}x", self.optimized_energy_ratio),
            "~1.1x".to_string(),
        ]);
        t.row([
            "32-GPM optimized speedup".to_string(),
            format!("{:.1}x", self.optimized_speedup),
            "~18x".to_string(),
        ]);
        t
    }

    /// The JSON payload: the three §VII headline numbers.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.insert("naive_energy_ratio", self.naive_energy_ratio);
        o.insert("optimized_energy_ratio", self.optimized_energy_ratio);
        o.insert("optimized_speedup", self.optimized_speedup);
        o
    }
}

/// The default workload set for the scaling figures (the paper's
/// 14-application subset).
pub fn default_suite() -> Vec<WorkloadSpec> {
    scaling_suite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactErrorKind;
    use workloads::Scale;

    fn smoke_suite() -> Vec<WorkloadSpec> {
        // Three representative apps keep unit tests fast.
        scaling_suite()
            .into_iter()
            .filter(|w| ["Hotspot", "Stream", "Nekbone-12"].contains(&w.name))
            .collect()
    }

    #[test]
    fn fig2_energy_grows_with_gpm_count() {
        let lab = Lab::new(Scale::Smoke);
        let fig = Fig2::run(&lab, &smoke_suite()).unwrap();
        assert_eq!(fig.points.len(), 5);
        let first = fig.points.first().unwrap().1;
        let last = fig.points.last().unwrap().1;
        assert!(
            last > first,
            "energy must grow when scaling on board: {first} -> {last}"
        );
        assert!(fig.render().render().contains("32x"));
    }

    #[test]
    fn fig6_edpse_declines_at_scale() {
        let lab = Lab::new(Scale::Smoke);
        let fig = Fig6::run(&lab, &smoke_suite()).unwrap();
        let e2 = fig.all_at(2).unwrap();
        let e32 = fig.all_at(32).unwrap();
        assert!(e2 > e32, "EDPSE must decline: {e2} vs {e32}");
    }

    #[test]
    fn fig6_empty_category_is_a_typed_error_not_a_panic() {
        let lab = Lab::new(Scale::Smoke);
        // A compute-only suite leaves the memory category empty.
        let compute_only: Vec<WorkloadSpec> = scaling_suite()
            .into_iter()
            .filter(|w| w.category == Category::Compute)
            .take(1)
            .collect();
        let err = Fig6::run(&lab, &compute_only).unwrap_err();
        assert_eq!(err.artifact, "fig6");
        assert_eq!(err.point, "2-GPM memory");
        assert_eq!(err.kind, ArtifactErrorKind::EmptyMean);
    }

    #[test]
    fn fig8_more_bandwidth_helps() {
        let lab = Lab::new(Scale::Smoke);
        let fig = Fig8::run(&lab, &smoke_suite()).unwrap();
        let x1 = fig.at(BwSetting::X1, 32).unwrap();
        let x4 = fig.at(BwSetting::X4, 32).unwrap();
        assert!(x4 > x1, "4x-BW must beat 1x-BW at 32 GPMs: {x1} vs {x4}");
    }

    #[test]
    fn fig10_reports_all_points() {
        let lab = Lab::new(Scale::Smoke);
        let fig = Fig10::run(&lab, &smoke_suite()).unwrap();
        assert_eq!(fig.rows.len(), 15);
        // Smoke-scale grids are tiny (2 CTAs per GPM at 32 modules), so
        // only sanity-check that the sweep produced usable numbers.
        let (s, e) = fig.at(32, BwSetting::X4).unwrap();
        assert!(s > 0.3 && e > 0.0, "s={s} e={e}");
    }

    #[test]
    fn empty_suite_fails_with_named_point() {
        let lab = Lab::new(Scale::Smoke);
        let err = Fig2::run(&lab, &[]).unwrap_err();
        assert_eq!(err.artifact, "fig2");
        assert_eq!(err.point, "2-GPM");
    }
}
