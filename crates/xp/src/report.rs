//! The self-checking reproduction report: every qualitative claim the
//! paper's evaluation makes, re-evaluated against this repository's
//! measurements with explicit tolerance bands.
//!
//! `cargo run --release -p xp --bin repro_report` prints one PASS/FAIL
//! row per claim; the same checks back the (slow, `--ignored`) full-scale
//! integration test.

use crate::artifact::{ArtifactError, ArtifactErrorKind};
use crate::figures::{Fig10, Fig2, Fig6, Fig7, Fig8, Fig9, Headline, PointStudies};
use crate::lab::Lab;
use common::json::Json;
use common::table::TextTable;
use gpujoule::EnergyComponent;
use sim::BwSetting;
use workloads::WorkloadSpec;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier ("F6.decline", ...).
    pub id: &'static str,
    /// What the paper asserts.
    pub description: &'static str,
    /// The paper's figure for the claim.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measurement satisfies the claim's tolerance band.
    pub pass: bool,
}

/// Evaluates every scaling claim (Figs. 2, 6–10, point studies, headline)
/// on the given workload suite. Validation claims (Table Ib, Fig. 4) are
/// separate because they need the fitting pipeline — see
/// [`crate::validation`].
pub fn evaluate_scaling_claims(
    lab: &Lab,
    suite: &[WorkloadSpec],
) -> Result<Vec<Claim>, ArtifactError> {
    let mut claims = Vec::new();

    // --- Figure 2 ---------------------------------------------------------
    let fig2 = Fig2::run(lab, suite)?;
    let monotone = fig2.points.windows(2).all(|w| w[1].1 >= w[0].1 - 0.02);
    let e32 = fig2.points.last().map(|p| p.1).unwrap_or(0.0);
    claims.push(Claim {
        id: "F2.growth",
        description: "on-board energy grows monotonically with GPM count",
        paper: "monotone, ~2x at 32".into(),
        measured: format!("monotone={monotone}, {e32:.2}x at 32"),
        pass: monotone && e32 >= 1.5,
    });

    // --- Figure 6 ---------------------------------------------------------
    let fig6 = Fig6::run(lab, suite)?;
    let all2 = fig6.all_at(2).unwrap_or(0.0);
    let all32 = fig6.all_at(32).unwrap_or(0.0);
    claims.push(Claim {
        id: "F6.decline",
        description: "EDPSE collapses by 32 GPMs (paper 94% -> 36%)",
        paper: "94 -> 36".into(),
        measured: format!("{all2:.1} -> {all32:.1}"),
        pass: all2 >= 85.0 && (20.0..=50.0).contains(&all32),
    });
    let compute_wins = fig6.rows.iter().filter(|r| r.0 >= 16).all(|r| r.1 > r.2);
    claims.push(Claim {
        id: "F6.categories",
        description: "compute-intensive apps out-scale memory-intensive ones",
        paper: "compute > memory at high counts".into(),
        measured: format!("holds at 16 & 32: {compute_wins}"),
        pass: compute_wins,
    });

    // --- Figure 7 ---------------------------------------------------------
    let fig7 = Fig7::run(lab, suite)?;
    let last = fig7.steps.last().ok_or_else(|| {
        ArtifactError::new("repro_report", "fig7 steps", ArtifactErrorKind::EmptyMean)
    })?;
    let constant_dominates = last.components_pct.iter().all(|&(c, v)| {
        c == EnergyComponent::ConstantOverhead
            || v <= last
                .components_pct
                .iter()
                .find(|&&(cc, _)| cc == EnergyComponent::ConstantOverhead)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
    });
    claims.push(Claim {
        id: "F7.constant",
        description: "constant energy overhead dominates the 16->32 energy increase",
        paper: "dominant component".into(),
        measured: format!(
            "constant {:+.1}pp of {:+.1}% total",
            last.components_pct
                .iter()
                .find(|&&(c, _)| c == EnergyComponent::ConstantOverhead)
                .map(|&(_, v)| v)
                .unwrap_or(0.0),
            last.energy_increase_pct
        ),
        pass: constant_dominates && last.energy_increase_pct > 0.0,
    });
    let inter_small = last
        .components_pct
        .iter()
        .find(|&&(c, _)| c == EnergyComponent::InterModule)
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    claims.push(Claim {
        id: "F7.inter",
        description: "inter-module transfer energy is a minor component",
        paper: "'relatively low'".into(),
        measured: format!("{inter_small:+.2}pp at 16->32"),
        pass: inter_small.abs() < 3.0,
    });
    let ring_last = fig7.step_speedup(32).unwrap_or(0.0);
    claims.push(Claim {
        id: "F7.monolithic",
        description: "a monolithic GPU keeps scaling where the NUMA ring stops",
        paper: "1.808 vs 1.47".into(),
        measured: format!("{:.2} vs {:.2}", fig7.monolithic_16_to_32, ring_last),
        pass: fig7.monolithic_16_to_32 > ring_last,
    });

    // --- Figure 8 ---------------------------------------------------------
    let fig8 = Fig8::run(lab, suite)?;
    let x1 = fig8.at(BwSetting::X1, 32).unwrap_or(0.0);
    let x4 = fig8.at(BwSetting::X4, 32).unwrap_or(0.0);
    claims.push(Claim {
        id: "F8.bandwidth",
        description: "4x inter-GPM bandwidth multiplies 32-GPM EDPSE ~3x",
        paper: "~3x".into(),
        measured: format!("{:.1}x ({x1:.1} -> {x4:.1})", x4 / x1.max(1e-9)),
        pass: x4 >= 2.0 * x1,
    });

    // --- Figure 9 ---------------------------------------------------------
    let fig9 = Fig9::run(lab, suite)?;
    let ring = fig9.at("Ring (1x-BW)", 32).unwrap_or(0.0);
    let switch = fig9.at("Switch (1x-BW)", 32).unwrap_or(0.0);
    claims.push(Claim {
        id: "F9.switch",
        description: "a high-radix switch ~doubles 32-GPM EDPSE at equal link BW",
        paper: "~2x".into(),
        measured: format!("{:.1}x ({ring:.1} -> {switch:.1})", switch / ring.max(1e-9)),
        pass: switch >= 1.5 * ring,
    });

    // --- Figure 10 --------------------------------------------------------
    let fig10 = Fig10::run(lab, suite)?;
    let (s16, e16) = fig10.at(16, BwSetting::X2).unwrap_or((0.0, f64::MAX));
    let (s32, e32b) = fig10.at(32, BwSetting::X1).unwrap_or((f64::MAX, 0.0));
    claims.push(Claim {
        id: "F10.crossover",
        description: "16-GPM @2x-BW beats 32-GPM @1x-BW at a fraction of the energy",
        paper: "outperforms at ~half the energy".into(),
        measured: format!("{s16:.1}x@{e16:.2} vs {s32:.1}x@{e32b:.2}"),
        pass: s16 > s32 && e16 < e32b,
    });

    // --- Point studies ----------------------------------------------------
    let ps = PointStudies::run(lab, suite)?;
    let (base, quad) = (
        ps.link_energy_edpse.first().map(|&(_, e)| e).unwrap_or(0.0),
        ps.link_energy_edpse.last().map(|&(_, e)| e).unwrap_or(0.0),
    );
    let rel = (base - quad).abs() / base.max(1e-9);
    claims.push(Claim {
        id: "P.link-energy",
        description: "4x link energy barely moves EDPSE",
        paper: "<1%".into(),
        measured: format!("{:.1}% relative", rel * 100.0),
        pass: rel < 0.05,
    });
    let (slow_cheap, fast_hot) = ps.energy_for_bandwidth_edpse;
    claims.push(Claim {
        id: "P.energy-for-bw",
        description: "spending 4x link energy for 2x bandwidth raises EDPSE",
        paper: "+8.8%".into(),
        measured: format!("{slow_cheap:.1} -> {fast_hot:.1}"),
        pass: fast_hot > slow_cheap,
    });
    if let Some(&(_, save50, gain50)) = ps.amortization.iter().find(|&&(f, _, _)| f == 0.5) {
        claims.push(Claim {
            id: "P.amortization",
            description: "50% constant-energy amortization saves ~22% energy, ~+8pp EDPSE",
            paper: "-22.3% / +8.1pp".into(),
            measured: format!("-{save50:.1}% / {gain50:+.1}pp"),
            pass: (10.0..=40.0).contains(&save50) && gain50 > 3.0,
        });
    }
    claims.push(Claim {
        id: "P.reduction",
        description: "1x->4x BW then on-package amortization slashes 32-GPM energy",
        paper: "-27.4% then -45%".into(),
        measured: format!(
            "-{:.1}% then -{:.1}%",
            ps.energy_reduction_bw_only_pct, ps.energy_reduction_package_pct
        ),
        pass: ps.energy_reduction_bw_only_pct > 10.0
            && ps.energy_reduction_package_pct > ps.energy_reduction_bw_only_pct,
    });

    // --- Headline -----------------------------------------------------------
    let h = Headline::run(lab, suite)?;
    claims.push(Claim {
        id: "H.optimized",
        description: "the optimized 32-GPM design approaches 1-GPM energy at >10x speedup",
        paper: "~1.1x energy, ~18x speedup".into(),
        measured: format!(
            "{:.2}x energy, {:.1}x speedup",
            h.optimized_energy_ratio, h.optimized_speedup
        ),
        pass: h.optimized_energy_ratio < 1.5 && h.optimized_speedup > 8.0,
    });
    claims.push(Claim {
        id: "H.naive",
        description: "naive scaling is on track for a ~2x energy penalty",
        paper: ">2x".into(),
        measured: format!("{:.2}x", h.naive_energy_ratio),
        pass: h.naive_energy_ratio > 1.7,
    });

    Ok(claims)
}

/// Every configuration the scaling claims simulate — the union of the
/// individual figure plans, for the artifact registry's batch prime.
pub fn scaling_claims_plan() -> Vec<crate::configs::ExpConfig> {
    let mut cfgs = Fig2::plan_configs();
    cfgs.extend(Fig6::plan_configs());
    cfgs.extend(Fig7::plan_configs());
    cfgs.extend(Fig8::plan_configs());
    cfgs.extend(Fig9::plan_configs());
    cfgs.extend(Fig10::plan_configs());
    cfgs.extend(PointStudies::plan_configs());
    cfgs.extend(Headline::plan_configs());
    cfgs
}

/// Evaluates the §IV validation claims (Table Ib recovery, Fig. 4a band,
/// Fig. 4b error structure). Runs the full fitting pipeline, so this is
/// the expensive half of the report.
pub fn evaluate_validation_claims(scale: workloads::Scale) -> Vec<Claim> {
    use gpujoule::{EpiTable, EptTable};
    use silicon::VirtualK40;

    let hw = VirtualK40::new();
    let fitted = crate::validation::fit_model_cached(scale);
    let mut claims = Vec::new();

    let epi_err = fitted.epi.max_relative_error(&EpiTable::k40());
    let ept_err = fitted.ept.max_relative_error(&EptTable::k40());
    claims.push(Claim {
        id: "T1b.recovery",
        description: "fitting through the sensor recovers Table Ib",
        paper: "accurate within 10%".into(),
        measured: format!(
            "max EPI err {:.1}%, max EPT err {:.1}%",
            epi_err * 100.0,
            ept_err * 100.0
        ),
        pass: epi_err < 0.10 && ept_err < 0.10,
    });

    let model = fitted.to_energy_model();
    let fig4a = crate::validation::fig4a(&hw, &model, scale);
    let in_band = fig4a
        .items()
        .iter()
        .all(|i| i.error_percent() < 5.0 && i.error_percent() > -9.0);
    claims.push(Claim {
        id: "F4a.band",
        description: "mixed microbenchmarks validate within the Fig. 4a band",
        paper: "+2.5% .. -6%".into(),
        measured: format!(
            "all in band: {in_band} (mean |err| {:.1}%)",
            fig4a.mean_abs_error_percent()
        ),
        pass: in_band,
    });

    let suite = workloads::suite();
    let fig4b = crate::validation::fig4b(&hw, &model, &suite, scale);
    let mae = fig4b.mean_abs_error_percent();
    let outliers: Vec<String> = fig4b
        .outliers(30.0)
        .iter()
        .map(|i| i.name.clone())
        .collect();
    let expected = ["RSBench", "CoMD", "BFS", "MiniAMR"];
    let outliers_ok =
        outliers.len() >= 3 && outliers.iter().all(|o| expected.contains(&o.as_str()));
    claims.push(Claim {
        id: "F4b.errors",
        description: "application validation matches the paper's error structure",
        paper: "9.4% MAE; outliers RSBench/CoMD/BFS/MiniAMR".into(),
        measured: format!("{mae:.1}% MAE; outliers {}", outliers.join("/")),
        pass: (5.0..=16.0).contains(&mae) && outliers_ok,
    });

    claims
}

/// The JSON form of a claim list: one object per claim plus a summary.
pub fn claims_to_json(claims: &[Claim]) -> Json {
    let mut rows = Json::array();
    for c in claims {
        let mut o = Json::object();
        o.insert("id", c.id);
        o.insert("description", c.description);
        o.insert("paper", c.paper.as_str());
        o.insert("measured", c.measured.as_str());
        o.insert("pass", c.pass);
        rows.push(o);
    }
    let mut summary = Json::object();
    summary.insert("passed", claims.iter().filter(|c| c.pass).count());
    summary.insert("total", claims.len());
    let mut o = Json::object();
    o.insert("claims", rows);
    o.insert("summary", summary);
    o
}

/// Renders claims as a verdict table.
pub fn render_claims(claims: &[Claim]) -> TextTable {
    let mut t = TextTable::new(["claim", "paper", "measured", "verdict"]);
    for c in claims {
        t.row([
            format!("{} — {}", c.id, c.description),
            c.paper.clone(),
            c.measured.clone(),
            if c.pass {
                "PASS".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{by_name, Scale};

    #[test]
    fn smoke_claims_mostly_pass() {
        // At smoke scale the magnitudes drift but the directional claims
        // must survive; require a clear majority and no crash.
        let lab = Lab::new(Scale::Smoke);
        let suite: Vec<WorkloadSpec> = ["Hotspot", "CoMD", "Stream", "Nekbone-12", "Kmeans"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect();
        let claims = evaluate_scaling_claims(&lab, &suite).unwrap();
        assert!(claims.len() >= 12);
        let passed = claims.iter().filter(|c| c.pass).count();
        assert!(
            passed * 3 >= claims.len() * 2,
            "only {passed}/{} claims pass at smoke scale: {:?}",
            claims.len(),
            claims
                .iter()
                .filter(|c| !c.pass)
                .map(|c| c.id)
                .collect::<Vec<_>>()
        );
        assert!(render_claims(&claims).render().contains("PASS"));
    }
}
