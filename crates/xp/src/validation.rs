//! GPUJoule validation experiments (Table Ib and Figs. 4a/4b).
//!
//! The full paper workflow: fit the model through the virtual K40's power
//! sensor, check it against mixed-instruction microbenchmarks, then
//! against the 18-application suite, replaying each app's simulated
//! kernel timeline (with host gaps and the app's counter-invisible
//! behavior) on the virtual silicon.

use common::json::Json;
use common::table::TextTable;
use common::units::Time;
use gpujoule::{EnergyModel, EpiTable, EptTable, ValidationItem, ValidationReport};
use isa::{Opcode, Transaction};
use microbench::{fit, FitConfig, FittedModel};
use silicon::{HiddenBehavior, KernelActivity, RunProfile, VirtualK40};
use sim::{GpuConfig, GpuSim};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use workloads::{Scale, WorkloadSpec};

/// Fitting setup matched to the problem scale.
pub fn fit_config(scale: Scale) -> FitConfig {
    match scale {
        Scale::Full => FitConfig::default(),
        Scale::Smoke => FitConfig::fast(),
    }
}

/// Runs the fitting pipeline once and returns the fitted model.
pub fn fit_model(hw: &VirtualK40, scale: Scale) -> FittedModel {
    fit(hw, &fit_config(scale))
}

/// Process-wide cache of fitted models for the standard virtual K40,
/// keyed by scale. The fitting pipeline is deterministic, so the first
/// fit's result is identical to any refit; artifacts that each need the
/// fitted model (Table Ib, Figs. 4a/4b, the validation claims) share one
/// run instead of refitting per artifact.
static FIT_CACHE: OnceLock<Mutex<HashMap<Scale, Arc<FittedModel>>>> = OnceLock::new();

/// Fits (or returns the cached fit of) the standard [`VirtualK40`] at
/// `scale`. Holding the cache lock across the fit intentionally
/// serializes concurrent first fits of the same scale.
pub fn fit_model_cached(scale: Scale) -> Arc<FittedModel> {
    let cache = FIT_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap();
    Arc::clone(
        map.entry(scale)
            .or_insert_with(|| Arc::new(fit_model(&VirtualK40::new(), scale))),
    )
}

/// Table Ib: the fitted EPI/EPT values side by side with the paper's
/// published measurements.
pub fn table1b(fitted: &FittedModel) -> TextTable {
    let paper_epi = EpiTable::k40();
    let paper_ept = EptTable::k40();
    let mut t = TextTable::new(["operation", "fitted", "paper (Table Ib)", "err %"]);
    for op in Opcode::ALL {
        if !op.in_paper_table() {
            continue;
        }
        let fit_nj = fitted.epi.get(op).nanojoules();
        let ref_nj = paper_epi.get(op).nanojoules();
        t.row([
            op.mnemonic().to_string(),
            format!("{fit_nj:.3} nJ"),
            format!("{ref_nj:.2} nJ"),
            format!("{:+.1}", (fit_nj - ref_nj) / ref_nj * 100.0),
        ]);
    }
    for txn in Transaction::ALL {
        if !txn.is_intra_gpm() {
            continue;
        }
        let fit_nj = fitted.ept.get(txn).nanojoules();
        let ref_nj = paper_ept.get(txn).nanojoules();
        t.row([
            txn.label().to_string(),
            format!(
                "{fit_nj:.3} nJ ({:.2} pJ/bit)",
                fitted.ept.per_bit(txn).pj_per_bit()
            ),
            format!(
                "{ref_nj:.2} nJ ({:.2} pJ/bit)",
                paper_ept.per_bit(txn).pj_per_bit()
            ),
            format!("{:+.1}", (fit_nj - ref_nj) / ref_nj * 100.0),
        ]);
    }
    t
}

/// Figure 4a: mixed-instruction microbenchmark validation.
pub fn fig4a(hw: &VirtualK40, model: &EnergyModel, scale: Scale) -> ValidationReport {
    let cfg = fit_config(scale);
    let target = match scale {
        Scale::Full => Time::from_millis(600.0),
        Scale::Smoke => Time::from_millis(250.0),
    };
    microbench::validate_mixed(hw, model, &cfg.gpu, target)
}

/// Figure 4b: end-to-end application validation against the virtual
/// silicon. Returns one item per Table II application.
pub fn fig4b(
    hw: &VirtualK40,
    model: &EnergyModel,
    suite: &[WorkloadSpec],
    scale: Scale,
) -> ValidationReport {
    let target = match scale {
        Scale::Full => Time::from_millis(400.0),
        Scale::Smoke => Time::from_millis(120.0),
    };
    let sim_cfg = match scale {
        Scale::Full => GpuConfig::single_gpm(),
        Scale::Smoke => GpuConfig::tiny(1),
    };

    suite
        .iter()
        .map(|w| {
            let mut sim = GpuSim::new(&sim_cfg);
            let result = sim.run_workload(&w.launches(scale));

            let behavior = HiddenBehavior {
                lane_utilization: w.lane_utilization,
                interaction_scale: 1.0,
                floor_scale: w.floor_scale,
            };

            // The simulator runs scaled-down problem instances, so kernel
            // durations are artificially short. For normal applications
            // the realistic timeline has *long* kernels: stretch each
            // kernel (counts and duration together) to the target run
            // length. Apps that are inherently many-short-launch (BFS,
            // MiniAMR) keep their sub-millisecond kernels and replay the
            // launch/gap timeline instead — that is their real shape, and
            // the sensor's inability to resolve it is the effect under
            // study.
            let mut profile = RunProfile::new(w.name);
            if w.short_kernels {
                let rep_time = result.total_duration() + w.host_gap * result.kernels.len() as f64;
                let reps = (target.secs() / rep_time.secs()).ceil().max(1.0) as usize;
                for _ in 0..reps {
                    for k in &result.kernels {
                        profile = profile
                            .kernel(KernelActivity::new(
                                k.duration(),
                                k.counts.clone(),
                                behavior,
                            ))
                            .idle(w.host_gap);
                    }
                }
            } else {
                let stretch = (target.secs() / result.total_duration().secs())
                    .ceil()
                    .max(1.0) as u64;
                for k in &result.kernels {
                    let mut counts = k.counts.clone();
                    counts.scale(stretch);
                    profile = profile
                        .kernel(KernelActivity::new(counts.elapsed, counts, behavior))
                        .idle(w.host_gap);
                }
            }

            // Kernel-attributed measurement (what NVML-polling scripts
            // report): gaps excluded from both sides.
            let measurement = hw.measure_active(&profile);
            let mut counts = profile.aggregate_counts();
            counts.elapsed = measurement.duration;
            let modeled = model.estimate_total(&counts);
            ValidationItem::new(w.name, modeled, measurement.measured_energy)
        })
        .collect()
}

/// The JSON form of Table Ib: fitted vs paper energy for each published
/// opcode and intra-GPM transaction.
pub fn table1b_to_json(fitted: &FittedModel) -> Json {
    let paper_epi = EpiTable::k40();
    let paper_ept = EptTable::k40();
    let mut rows = Json::array();
    for op in Opcode::ALL {
        if !op.in_paper_table() {
            continue;
        }
        let fit_nj = fitted.epi.get(op).nanojoules();
        let ref_nj = paper_epi.get(op).nanojoules();
        let mut r = Json::object();
        r.insert("operation", op.mnemonic());
        r.insert("kind", "instruction");
        r.insert("fitted_nj", fit_nj);
        r.insert("paper_nj", ref_nj);
        r.insert("error_pct", (fit_nj - ref_nj) / ref_nj * 100.0);
        rows.push(r);
    }
    for txn in Transaction::ALL {
        if !txn.is_intra_gpm() {
            continue;
        }
        let fit_nj = fitted.ept.get(txn).nanojoules();
        let ref_nj = paper_ept.get(txn).nanojoules();
        let mut r = Json::object();
        r.insert("operation", txn.label());
        r.insert("kind", "transaction");
        r.insert("fitted_nj", fit_nj);
        r.insert("paper_nj", ref_nj);
        r.insert("error_pct", (fit_nj - ref_nj) / ref_nj * 100.0);
        r.insert("fitted_pj_per_bit", fitted.ept.per_bit(txn).pj_per_bit());
        r.insert("paper_pj_per_bit", paper_ept.per_bit(txn).pj_per_bit());
        rows.push(r);
    }
    let mut o = Json::object();
    o.insert("rows", rows);
    o
}

/// The JSON form of a Fig. 4-style validation report.
pub fn validation_to_json(report: &ValidationReport) -> Json {
    let mut items = Json::array();
    for item in report.items() {
        let mut r = Json::object();
        r.insert("name", item.name.as_str());
        r.insert("modeled_joules", item.modeled.joules());
        r.insert("measured_joules", item.measured.joules());
        r.insert("error_pct", item.error_percent());
        items.push(r);
    }
    let mut o = Json::object();
    o.insert("items", items);
    o.insert("geomean_abs_error_pct", report.geomean_abs_error_percent());
    o.insert("mean_abs_error_pct", report.mean_abs_error_percent());
    o
}

/// Renders a validation report as a Fig. 4-style table.
pub fn render_validation(report: &ValidationReport) -> TextTable {
    let mut t = TextTable::new(["benchmark", "modeled", "measured", "error (%)"]);
    for item in report.items() {
        t.row([
            item.name.clone(),
            item.modeled.to_string(),
            item.measured.to_string(),
            format!("{:+.1}", item.error_percent()),
        ]);
    }
    t.row([
        "GeoMean |err|".to_string(),
        String::new(),
        String::new(),
        format!("{:.1}", report.geomean_abs_error_percent()),
    ]);
    t.row([
        "Mean |err|".to_string(),
        String::new(),
        String::new(),
        format!("{:.1}", report.mean_abs_error_percent()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::by_name;

    #[test]
    fn table1b_lists_19_ops_and_4_levels() {
        let hw = VirtualK40::new();
        let fitted = fit_model(&hw, Scale::Smoke);
        let t = table1b(&fitted);
        assert_eq!(t.len(), 19 + 4);
        let s = t.render();
        assert!(s.contains("fma.rn.f32"));
        assert!(s.contains("DRAM -> L2"));
    }

    #[test]
    fn fig4b_smoke_produces_items_with_bounded_error() {
        let hw = VirtualK40::new();
        let fitted = fit_model(&hw, Scale::Smoke);
        let model = fitted.to_energy_model();
        let suite: Vec<_> = ["Stream", "Hotspot"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect();
        let report = fig4b(&hw, &model, &suite, Scale::Smoke);
        assert_eq!(report.len(), 2);
        for item in report.items() {
            assert!(item.modeled.joules() > 0.0);
            assert!(item.measured.joules() > 0.0);
            assert!(
                item.error_percent().abs() < 60.0,
                "{}: {:+.1}%",
                item.name,
                item.error_percent()
            );
        }
        let rendered = render_validation(&report);
        assert!(rendered.render().contains("Mean |err|"));
    }
}
