//! The artifact layer: every paper figure, table, and study is an
//! [`Artifact`] — a declarative sweep plan plus an evaluation that
//! produces both the historical text rendering and a structured JSON
//! payload.
//!
//! The split matters for performance and for correctness:
//!
//! * [`Artifact::plan`] declares *what to sweep* as data. The `xp`
//!   driver unions the plans of every requested artifact and primes the
//!   whole batch through the `runtime::SweepExecutor` in one parallel
//!   sweep, so per-artifact evaluation runs against a warm cache.
//! * [`Artifact::evaluate`] is the serial, deterministic half: it reads
//!   cached simulations and computes the figure's numbers, so output is
//!   byte-identical no matter how many worker threads ran the sweep.
//!
//! Statistics over sweep results go through the fallible [`mean_of`] /
//! [`geomean_of`] helpers, which turn an empty or out-of-domain sample
//! set into a typed [`ArtifactError`] naming the artifact and sweep
//! point instead of panicking mid-run.

use crate::configs::ExpConfig;
use crate::lab::Lab;
use common::json::Json;
use common::stats;
use std::fmt;
use workloads::WorkloadSpec;

/// A typed evaluation failure: which artifact, at which sweep point,
/// and what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactError {
    /// The artifact id ("fig6", "repro_report", ...).
    pub artifact: String,
    /// The sweep point being evaluated ("32-GPM 2x-BW", ...).
    pub point: String,
    /// The failure itself.
    pub kind: ArtifactErrorKind,
}

/// What failed inside an artifact evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactErrorKind {
    /// An arithmetic mean was requested over an empty sample set
    /// (e.g. a category with no workloads in the suite).
    EmptyMean,
    /// A geometric mean was requested over an empty sample set or one
    /// containing non-positive / non-finite values.
    GeomeanDomain,
    /// The underlying sweep failed (a simulation point panicked).
    Sweep(String),
    /// Writing results to disk failed.
    Io(String),
}

impl ArtifactError {
    /// A new error for `artifact` at `point`.
    pub fn new(
        artifact: impl Into<String>,
        point: impl Into<String>,
        kind: ArtifactErrorKind,
    ) -> Self {
        ArtifactError {
            artifact: artifact.into(),
            point: point.into(),
            kind,
        }
    }

    /// Wraps a failed sweep prime, naming the artifact whose plan was
    /// being simulated.
    pub fn from_sweep(artifact: impl Into<String>, err: runtime::SweepError) -> Self {
        ArtifactError::new(
            artifact,
            "sweep prime",
            ArtifactErrorKind::Sweep(err.message),
        )
    }

    /// The serialized form recorded in run manifests.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.insert("artifact", self.artifact.as_str());
        o.insert("point", self.point.as_str());
        o.insert("message", self.to_string());
        o
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            ArtifactErrorKind::EmptyMean => "mean over an empty sample set".to_string(),
            ArtifactErrorKind::GeomeanDomain => {
                "geometric mean over an empty or non-positive sample set".to_string()
            }
            ArtifactErrorKind::Sweep(msg) => format!("sweep failed: {msg}"),
            ArtifactErrorKind::Io(msg) => format!("io error: {msg}"),
        };
        write!(f, "artifact {} at {}: {what}", self.artifact, self.point)
    }
}

impl std::error::Error for ArtifactError {}

/// Arithmetic mean that reports failure as a typed error naming the
/// artifact and sweep point (the paper's figure sweeps are never empty,
/// but a filtered suite can be).
pub fn mean_of(artifact: &str, point: &str, values: &[f64]) -> Result<f64, ArtifactError> {
    stats::mean(values)
        .ok_or_else(|| ArtifactError::new(artifact, point, ArtifactErrorKind::EmptyMean))
}

/// Geometric mean with the same typed-error contract as [`mean_of`].
pub fn geomean_of(artifact: &str, point: &str, values: &[f64]) -> Result<f64, ArtifactError> {
    stats::geomean(values)
        .ok_or_else(|| ArtifactError::new(artifact, point, ArtifactErrorKind::GeomeanDomain))
}

/// What an artifact needs simulated before it can evaluate: a list of
/// experiment configurations (swept against the workload suite; the
/// 1-GPM baseline is always primed alongside) plus whether the §IV
/// fitting pipeline is required.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// Configurations to prime for every suite workload.
    pub configs: Vec<ExpConfig>,
    /// Whether the artifact runs the microbenchmark fitting pipeline
    /// (not part of the simulation sweep cache).
    pub needs_fit: bool,
}

impl SweepPlan {
    /// A plan with no sweep and no fit (static artifacts like Table III).
    pub fn none() -> Self {
        SweepPlan::default()
    }

    /// A pure sweep plan.
    pub fn sweep(configs: Vec<ExpConfig>) -> Self {
        SweepPlan {
            configs,
            needs_fit: false,
        }
    }

    /// A fitting-pipeline-only plan (Table Ib, Figs. 4a/4b).
    pub fn fit() -> Self {
        SweepPlan {
            configs: Vec::new(),
            needs_fit: true,
        }
    }

    /// Marks the plan as also needing the fitting pipeline.
    pub fn with_fit(mut self) -> Self {
        self.needs_fit = true;
        self
    }

    /// Folds another plan into this one.
    pub fn merge(&mut self, other: SweepPlan) {
        self.configs.extend(other.configs);
        self.needs_fit |= other.needs_fit;
    }
}

/// The evaluated result of one artifact: the exact text the historical
/// binary printed, plus the structured JSON payload the `xp` driver
/// writes to disk.
#[derive(Debug, Clone)]
pub struct ArtifactData {
    /// Full text rendering (what the pre-registry binary printed to
    /// stdout, byte for byte).
    pub text: String,
    /// Structured payload, including the `id`/`title` envelope.
    pub json: Json,
}

/// One paper artifact: identity, a declarative sweep plan, and an
/// evaluation producing [`ArtifactData`].
pub trait Artifact: Send + Sync {
    /// Stable identifier (`fig6`, `table1b`, `repro_report`, ...); the
    /// CLI name and the JSON file stem.
    fn id(&self) -> &'static str;

    /// One-line human title shown by `xp list`.
    fn title(&self) -> &'static str;

    /// What to sweep (and whether the fitting pipeline is needed)
    /// before [`Artifact::evaluate`] can run from a warm cache.
    fn plan(&self) -> SweepPlan;

    /// Runs the artifact against the lab and workload suite.
    fn evaluate(&self, lab: &Lab, suite: &[WorkloadSpec]) -> Result<ArtifactData, ArtifactError>;

    /// Whether this artifact is a composite wrapper over other
    /// artifacts (excluded from `xp run all` to avoid double work).
    fn composite(&self) -> bool {
        false
    }

    /// The text rendering of an evaluation.
    fn render_text(&self, data: &ArtifactData) -> String {
        data.text.clone()
    }

    /// The JSON payload of an evaluation.
    fn to_json(&self, data: &ArtifactData) -> Json {
        data.json.clone()
    }
}

/// Builds the standard `{"id": ..., "title": ...}` envelope and appends
/// the payload object's fields to it.
pub fn enveloped(id: &str, title: &str, payload: Json) -> Json {
    let mut o = Json::object();
    o.insert("id", id);
    o.insert("title", title);
    match payload {
        Json::Object(pairs) => {
            for (k, v) in pairs {
                o.insert(k, v);
            }
        }
        other => {
            o.insert("data", other);
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_helpers_name_the_failure_site() {
        let err = mean_of("fig6", "32-GPM compute", &[]).unwrap_err();
        assert_eq!(err.artifact, "fig6");
        assert_eq!(err.point, "32-GPM compute");
        assert_eq!(err.kind, ArtifactErrorKind::EmptyMean);
        assert!(err.to_string().contains("fig6"));
        assert!(err.to_string().contains("32-GPM compute"));

        let err = geomean_of("fig7", "step 16->32", &[1.0, -2.0]).unwrap_err();
        assert_eq!(err.kind, ArtifactErrorKind::GeomeanDomain);
        assert!(mean_of("fig2", "2-GPM", &[1.0, 3.0]).is_ok());
        assert_eq!(geomean_of("fig2", "2-GPM", &[4.0, 1.0]).unwrap(), 2.0);
    }

    #[test]
    fn plans_merge() {
        use sim::BwSetting;
        let mut a = SweepPlan::sweep(vec![ExpConfig::paper_default(2, BwSetting::X1)]);
        a.merge(SweepPlan::fit());
        a.merge(SweepPlan::sweep(vec![ExpConfig::paper_default(
            4,
            BwSetting::X2,
        )]));
        assert_eq!(a.configs.len(), 2);
        assert!(a.needs_fit);
    }

    #[test]
    fn envelope_flattens_payload_objects() {
        let mut payload = Json::object();
        payload.insert("rows", Json::array());
        let j = enveloped("fig2", "Figure 2", payload);
        assert_eq!(j.keys(), vec!["id", "title", "rows"]);
        assert_eq!(j.get("id").and_then(Json::as_str), Some("fig2"));
    }

    #[test]
    fn error_json_names_the_site() {
        let err = ArtifactError::new("fig9", "32-GPM", ArtifactErrorKind::Sweep("boom".into()));
        let j = err.to_json();
        assert_eq!(j.get("artifact").and_then(Json::as_str), Some("fig9"));
        assert!(j
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("boom"));
    }
}
