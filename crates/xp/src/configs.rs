//! Experiment configurations: the cross product of Table III (GPM counts),
//! Table IV (bandwidth settings), topology, and integration domain.

use gpujoule::{ConstantEnergyAmortization, IntegrationDomain, MultiGpmEnergyConfig};
use sim::{BwSetting, CtaSchedule, GpuConfig, L2Mode, PagePolicy, Topology, WarpScheduler};
use std::fmt;

/// GPM counts swept by the paper (Table III).
pub const GPM_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// GPM counts of the scaled configurations (2–32).
pub const SCALED_GPM_COUNTS: [usize; 5] = [2, 4, 8, 16, 32];

/// One fully specified experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Number of GPU modules.
    pub gpms: usize,
    /// Inter-GPM bandwidth setting.
    pub bw: BwSetting,
    /// Network topology.
    pub topology: Topology,
    /// Integration domain (drives link energy, latency, amortization).
    pub domain: IntegrationDomain,
    /// Constant-energy amortization override (`None` = domain default).
    pub amortization: Option<ConstantEnergyAmortization>,
    /// Multiplier on the per-bit link energy (the §V-C point study uses
    /// 2× and 4×).
    pub link_energy_mult: f64,
    /// CTA scheduling ablation.
    pub cta_schedule: CtaSchedule,
    /// Page-placement ablation.
    pub page_policy: PagePolicy,
    /// L2-organization ablation.
    pub l2_mode: L2Mode,
    /// Per-warp memory-level-parallelism override.
    pub mlp_per_warp: Option<usize>,
    /// Inter-GPM link compression ratio (§V-E extension; 1.0 = off).
    pub link_compression: f64,
    /// GPM clock scale for the DVFS extension (1.0 = nominal 1 GHz).
    pub clock_scale: f64,
    /// Warp-scheduling policy ablation.
    pub warp_scheduler: WarpScheduler,
}

impl ExpConfig {
    /// The paper's default pairing: 1x-BW is on-board, 2x/4x-BW are
    /// on-package (Table IV), ring topology.
    pub fn paper_default(gpms: usize, bw: BwSetting) -> Self {
        let domain = match bw {
            BwSetting::X1 => IntegrationDomain::OnBoard,
            BwSetting::X2 | BwSetting::X4 => IntegrationDomain::OnPackage,
        };
        ExpConfig {
            gpms,
            bw,
            topology: Topology::Ring,
            domain,
            amortization: None,
            link_energy_mult: 1.0,
            cta_schedule: CtaSchedule::Contiguous,
            page_policy: PagePolicy::FirstTouch,
            l2_mode: L2Mode::ModuleSide,
            mlp_per_warp: None,
            link_compression: 1.0,
            clock_scale: 1.0,
            warp_scheduler: WarpScheduler::LooseRoundRobin,
        }
    }

    /// An on-board configuration at any bandwidth setting (used by the
    /// Fig. 9 switch study, which stays on board even at 2x-BW).
    pub fn on_board(gpms: usize, bw: BwSetting, topology: Topology) -> Self {
        ExpConfig {
            topology,
            domain: IntegrationDomain::OnBoard,
            ..Self::paper_default(gpms, bw)
        }
    }

    /// Overrides the amortization.
    pub fn with_amortization(mut self, a: ConstantEnergyAmortization) -> Self {
        self.amortization = Some(a);
        self
    }

    /// Multiplies the link energy (leaves bandwidth unchanged).
    pub fn with_link_energy_mult(mut self, m: f64) -> Self {
        self.link_energy_mult = m;
        self
    }

    /// Uses the ideal (monolithic) interconnect.
    pub fn monolithic(mut self) -> Self {
        self.topology = Topology::Ideal;
        self
    }

    /// Overrides the CTA schedule (ablation).
    pub fn with_cta_schedule(mut self, s: CtaSchedule) -> Self {
        self.cta_schedule = s;
        self
    }

    /// Overrides the page-placement policy (ablation).
    pub fn with_page_policy(mut self, p: PagePolicy) -> Self {
        self.page_policy = p;
        self
    }

    /// Overrides the L2 organization (ablation).
    pub fn with_l2_mode(mut self, m: L2Mode) -> Self {
        self.l2_mode = m;
        self
    }

    /// Overrides per-warp memory-level parallelism (ablation).
    pub fn with_mlp(mut self, mlp: usize) -> Self {
        self.mlp_per_warp = Some(mlp);
        self
    }

    /// Overrides the warp-scheduling policy (ablation).
    pub fn with_warp_scheduler(mut self, s: WarpScheduler) -> Self {
        self.warp_scheduler = s;
        self
    }

    /// Enables inter-GPM link compression at the given ratio (§V-E
    /// extension).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is below 1.
    pub fn with_link_compression(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "compression ratio must be >= 1, got {ratio}");
        self.link_compression = ratio;
        self
    }

    /// Scales the GPM core clock (DVFS extension).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not within `(0, 1]`.
    pub fn with_clock_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "clock scale must be in (0, 1], got {scale}"
        );
        self.clock_scale = scale;
        self
    }

    /// The performance-simulator configuration for this point. Per-hop
    /// latency follows the integration domain, not the bandwidth setting.
    pub fn sim_config(&self) -> GpuConfig {
        let mut cfg = GpuConfig::paper(self.gpms, self.bw, self.topology);
        cfg.link_latency = match self.domain {
            IntegrationDomain::OnBoard => 180,
            IntegrationDomain::OnPackage => 60,
        };
        cfg.cta_schedule = self.cta_schedule;
        cfg.warp_scheduler = self.warp_scheduler;
        cfg.page_policy = self.page_policy;
        cfg.l2_mode = self.l2_mode;
        cfg.link_compression = self.link_compression;
        if let Some(mlp) = self.mlp_per_warp {
            cfg.gpm.mlp_per_warp = mlp;
        }
        if self.clock_scale != 1.0 {
            cfg.gpm.clock =
                common::units::Frequency::from_hz(cfg.gpm.clock.hz() * self.clock_scale);
        }
        cfg
    }

    /// The energy-model configuration for this point.
    pub fn energy_config(&self) -> MultiGpmEnergyConfig {
        let mut cfg = MultiGpmEnergyConfig::new(self.gpms, self.domain);
        cfg.link_energy = cfg.link_energy * self.link_energy_mult;
        if self.topology == Topology::Switch {
            cfg = cfg.with_switch();
        }
        if let Some(a) = self.amortization {
            cfg = cfg.with_amortization(a);
        }
        cfg
    }

    /// The single-GPM baseline every scaling metric normalizes against.
    pub fn baseline() -> Self {
        // Domain details are irrelevant at one module (no links, no
        // replication); use the on-package defaults.
        let mut cfg = Self::paper_default(1, BwSetting::X2);
        // A single module shares nothing.
        cfg.amortization = Some(ConstantEnergyAmortization::none());
        cfg
    }
}

impl fmt::Display for ExpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-GPM {} {} {}",
            self.gpms, self.bw, self.topology, self.domain
        )?;
        if self.link_energy_mult != 1.0 {
            write!(f, " linkE x{}", self.link_energy_mult)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_setting_implies_domain() {
        assert_eq!(
            ExpConfig::paper_default(8, BwSetting::X1).domain,
            IntegrationDomain::OnBoard
        );
        assert_eq!(
            ExpConfig::paper_default(8, BwSetting::X2).domain,
            IntegrationDomain::OnPackage
        );
        assert_eq!(
            ExpConfig::paper_default(8, BwSetting::X4).domain,
            IntegrationDomain::OnPackage
        );
    }

    #[test]
    fn sim_config_latency_tracks_domain() {
        let board = ExpConfig::on_board(8, BwSetting::X2, Topology::Switch);
        assert_eq!(board.sim_config().link_latency, 180);
        let pkg = ExpConfig::paper_default(8, BwSetting::X2);
        assert_eq!(pkg.sim_config().link_latency, 60);
    }

    #[test]
    fn energy_config_reflects_overrides() {
        let cfg = ExpConfig::paper_default(32, BwSetting::X1).with_link_energy_mult(4.0);
        let e = cfg.energy_config();
        assert!((e.link_energy.pj_per_bit() - 40.0).abs() < 1e-9);

        let sw = ExpConfig::on_board(32, BwSetting::X1, Topology::Switch);
        assert!(sw.energy_config().switch_energy.pj_per_bit() > 0.0);

        let amort = ExpConfig::paper_default(32, BwSetting::X2)
            .with_amortization(ConstantEnergyAmortization::new(0.25));
        assert!((amort.energy_config().amortization.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn baseline_is_single_gpm() {
        let b = ExpConfig::baseline();
        assert_eq!(b.gpms, 1);
        assert_eq!(b.energy_config().total_const_power().watts(), 62.0);
    }

    #[test]
    fn display_shows_point() {
        let s = ExpConfig::paper_default(16, BwSetting::X4).to_string();
        assert!(s.contains("16-GPM"));
        assert!(s.contains("4x-BW"));
    }
}
