//! The artifact registry: every figure, table, and study the workspace
//! can reproduce, addressable by id. The `xp` CLI driver resolves ids
//! against [`ArtifactRegistry::standard`], unions the artifacts' sweep
//! plans into one batch prime, and evaluates each artifact against the
//! warm cache.
//!
//! Artifact text output is byte-identical to what the historical one-off
//! binaries (`cargo run -p xp --bin fig6` and friends) printed.

use crate::artifact::{enveloped, mean_of, Artifact, ArtifactData, ArtifactError, SweepPlan};
use crate::configs::ExpConfig;
use crate::figures::{Fig10, Fig2, Fig6, Fig7, Fig8, Fig9, Headline, PointStudies};
use crate::lab::Lab;
use crate::{ablation::AblationStudy, extensions, report, validation};
use common::json::Json;
use common::table::TextTable;
use common::units::{Bytes, EnergyPerBit, Power, Time};
use gpujoule::{EnergyComponent, EpiTable, EptTable};
use isa::{Opcode, Transaction};
use microbench::{fit, FitConfig};
use silicon::{TruthModel, VirtualK40};
use sim::{BwSetting, GpmConfig, GpuConfig, GpuSim, Topology};
use std::fmt::Write as _;
use workloads::{Scale, WorkloadSpec};

/// Options controlling which work the standard registry's artifacts do.
#[derive(Debug, Clone)]
pub struct RegistryOptions {
    /// Whether `repro_report` and `all_figures` include the §IV
    /// validation experiments (the fitting pipeline). Maps to the
    /// historical `--no-validation` flag.
    pub validation: bool,
}

impl Default for RegistryOptions {
    fn default() -> Self {
        RegistryOptions { validation: true }
    }
}

/// An [`Artifact`] assembled from plain functions — the registry's
/// uniform wrapper around the figure/table/study generators.
struct DynArtifact {
    id: &'static str,
    title: &'static str,
    composite: bool,
    plan: Box<dyn Fn() -> SweepPlan + Send + Sync>,
    eval: EvalFn,
}

type EvalFn =
    Box<dyn Fn(&Lab, &[WorkloadSpec]) -> Result<ArtifactData, ArtifactError> + Send + Sync>;

impl Artifact for DynArtifact {
    fn id(&self) -> &'static str {
        self.id
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn plan(&self) -> SweepPlan {
        (self.plan)()
    }

    fn evaluate(&self, lab: &Lab, suite: &[WorkloadSpec]) -> Result<ArtifactData, ArtifactError> {
        (self.eval)(lab, suite)
    }

    fn composite(&self) -> bool {
        self.composite
    }
}

/// Builds an [`ArtifactData`] with the standard id/title JSON envelope.
fn data(id: &'static str, title: &'static str, text: String, payload: Json) -> ArtifactData {
    ArtifactData {
        text,
        json: enveloped(id, title, payload),
    }
}

// ---------------------------------------------------------------------------
// Figure artifacts
// ---------------------------------------------------------------------------

fn fig2_artifact() -> DynArtifact {
    let (id, title) = ("fig2", "Figure 2: on-board strong-scaling energy");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Fig2::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let fig = Fig2::run(lab, suite)?;
            let text = format!(
                "Figure 2: energy of strong scaling, on-board integration (ideal = 1.0)\n{}\n",
                fig.render()
            );
            Ok(data(id, title, text, fig.to_json()))
        }),
    }
}

fn fig6_artifact() -> DynArtifact {
    let (id, title) = ("fig6", "Figure 6: EDPSE by workload category at 2x-BW");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Fig6::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let fig = Fig6::run(lab, suite)?;
            let text = format!(
                "Figure 6: EDPSE, on-package baseline (2x-BW); paper avg: 94% @2-GPM -> 36% @32-GPM\n{}\n",
                fig.render()
            );
            Ok(data(id, title, text, fig.to_json()))
        }),
    }
}

fn fig7_artifact() -> DynArtifact {
    let (id, title) = ("fig7", "Figure 7: per-step speedup and energy breakdown");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Fig7::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let fig = Fig7::run(lab, suite)?;
            let text = format!(
                "Figure 7: per-step speedup and energy increase breakdown (2x-BW)\n{}\nmonolithic (ideal interconnect) 16->32 speedup: {:.2} (paper: 1.808)\n",
                fig.render(),
                fig.monolithic_16_to_32
            );
            Ok(data(id, title, text, fig.to_json()))
        }),
    }
}

fn fig8_artifact() -> DynArtifact {
    let (id, title) = ("fig8", "Figure 8: EDPSE vs interconnect bandwidth");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Fig8::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let fig = Fig8::run(lab, suite)?;
            let text = format!(
                "Figure 8: EDPSE vs interconnect bandwidth (paper: ~3x EDPSE from 4x BW at 32-GPM)\n{}\n",
                fig.render()
            );
            Ok(data(id, title, text, fig.to_json()))
        }),
    }
}

fn fig9_artifact() -> DynArtifact {
    let (id, title) = ("fig9", "Figure 9: on-board ring vs high-radix switch");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Fig9::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let fig = Fig9::run(lab, suite)?;
            let text = format!(
                "Figure 9: on-board ring vs switch (paper: switch ~2x EDPSE at 32-GPM)\n{}\n",
                fig.render()
            );
            Ok(data(id, title, text, fig.to_json()))
        }),
    }
}

fn fig10_artifact() -> DynArtifact {
    let (id, title) = ("fig10", "Figure 10: speedup and energy across settings");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Fig10::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let fig = Fig10::run(lab, suite)?;
            let text = format!(
                "Figure 10: speedup and energy vs 1-GPM across bandwidth settings\n{}\n",
                fig.render()
            );
            Ok(data(id, title, text, fig.to_json()))
        }),
    }
}

fn point_studies_artifact() -> DynArtifact {
    let (id, title) = ("point_studies", "§V-C/§V-D point studies at 32-GPM");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(PointStudies::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let studies = PointStudies::run(lab, suite)?;
            let text = format!(
                "Point studies (paper: <1% EDPSE impact of 4x link energy; +8.8% EDPSE for 4x-energy/2x-BW;\n               22.3%/10.4% energy saving at 50%/25% amortization; 27.4% -> 45% energy reduction)\n{}\n",
                studies.render()
            );
            Ok(data(id, title, text, studies.to_json()))
        }),
    }
}

fn headline_artifact() -> DynArtifact {
    let (id, title) = ("headline", "§VII headline: naive vs optimized 32-GPM");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(Headline::plan_configs())),
        eval: Box::new(move |lab, suite| {
            let h = Headline::run(lab, suite)?;
            let text = format!("Headline comparison (paper §VII)\n{}\n", h.render());
            Ok(data(id, title, text, h.to_json()))
        }),
    }
}

// ---------------------------------------------------------------------------
// Study artifacts
// ---------------------------------------------------------------------------

fn ablation_artifact() -> DynArtifact {
    let (id, title) = ("ablation", "Design-choice ablations at 8/32-GPM");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| {
            let mut cfgs = AblationStudy::plan_configs(8);
            cfgs.extend(AblationStudy::plan_configs(32));
            SweepPlan::sweep(cfgs)
        }),
        eval: Box::new(move |lab, suite| {
            let mut text = String::new();
            let mut payload = Json::object();
            let mut studies = Json::array();
            for gpms in [8usize, 32] {
                let study = AblationStudy::run(lab, suite, gpms)?;
                let _ = writeln!(
                    text,
                    "Design-choice ablations at {gpms}-GPM, 2x-BW on-package"
                );
                let _ = writeln!(text, "{}", study.render());
                studies.push(study.to_json());
            }
            payload.insert("studies", studies);
            Ok(data(id, title, text, payload))
        }),
    }
}

fn extensions_artifact() -> DynArtifact {
    let (id, title) = (
        "extensions",
        "§V-E extensions: gating, compression, DVFS, metrics",
    );
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| {
            let mut cfgs = extensions::GatingStudy::plan_configs(32);
            cfgs.extend(extensions::CompressionStudy::plan_configs(32));
            cfgs.extend(extensions::DvfsStudy::plan_configs(32));
            cfgs.extend(extensions::MetricWeightStudy::plan_configs());
            SweepPlan::sweep(cfgs)
        }),
        eval: Box::new(move |lab, suite| {
            let gating = extensions::GatingStudy::run(lab, suite, 32)?;
            let compression = extensions::CompressionStudy::run(lab, suite, 32)?;
            let dvfs = extensions::DvfsStudy::run(lab, suite, 32)?;
            let metrics = extensions::MetricWeightStudy::run(lab, suite)?;
            let text = format!(
                "Idle-aware power gating at 32-GPM, 2x-BW (§V-E):\n{}\nInter-GPM link compression at 32-GPM, 1x-BW on-board (§V-E):\n{}\nModule DVFS at 32-GPM, 2x-BW (bracketed out in §V-A2):\n{}\nMetric weighting (ED^iPSE) at 2x-BW (§III):\n{}\n",
                gating.render(),
                compression.render(),
                dvfs.render(),
                metrics.render()
            );
            let mut payload = Json::object();
            payload.insert("gating", gating.to_json());
            payload.insert("compression", compression.to_json());
            payload.insert("dvfs", dvfs.to_json());
            payload.insert("metric_weights", metrics.to_json());
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Static tables
// ---------------------------------------------------------------------------

fn tables_artifact() -> DynArtifact {
    let (id, title) = ("tables", "Tables III/IV: the simulated configuration space");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(SweepPlan::none),
        eval: Box::new(move |_lab, _suite| {
            let mut t = TextTable::new([
                "configuration",
                "modules",
                "total SMs",
                "L1/SM",
                "total L2",
                "total DRAM BW",
            ]);
            let mut t3_rows = Json::array();
            for n in [1usize, 2, 4, 8, 16, 32] {
                let cfg = GpuConfig::paper(n, BwSetting::X2, Topology::Ring);
                t.row([
                    format!("{n}-GPM"),
                    n.to_string(),
                    cfg.total_sms().to_string(),
                    format!("{}", cfg.gpm.l1_bytes),
                    format!("{}", cfg.total_l2_bytes()),
                    format!("{}", cfg.total_dram_bw()),
                ]);
                let mut r = Json::object();
                r.insert("gpms", n);
                r.insert("total_sms", cfg.total_sms());
                r.insert("l1_per_sm", format!("{}", cfg.gpm.l1_bytes).as_str());
                r.insert("total_l2", format!("{}", cfg.total_l2_bytes()).as_str());
                r.insert("total_dram_bw", format!("{}", cfg.total_dram_bw()).as_str());
                t3_rows.push(r);
            }

            let mut t2 = TextTable::new([
                "setting",
                "inter-GPM BW",
                "inter-GPM:DRAM",
                "integration domain",
            ]);
            let mut t4_rows = Json::array();
            for (bw, ratio, domain) in [
                (BwSetting::X1, "1:2", "on-board"),
                (BwSetting::X2, "1:1", "on-package"),
                (BwSetting::X4, "2:1", "on-package"),
            ] {
                let cfg = GpuConfig::paper(8, bw, Topology::Ring);
                t2.row([
                    bw.label().to_string(),
                    format!("{}", cfg.inter_gpm_bw),
                    ratio.to_string(),
                    domain.to_string(),
                ]);
                let mut r = Json::object();
                r.insert("setting", bw.label());
                r.insert("inter_gpm_bw", format!("{}", cfg.inter_gpm_bw).as_str());
                r.insert("inter_gpm_to_dram", ratio);
                r.insert("domain", domain);
                t4_rows.push(r);
            }

            let text = format!(
                "Table III: simulated multi-module GPU configurations\n{t}\nTable IV: per-GPM I/O bandwidth settings\n{t2}\n"
            );
            let mut payload = Json::object();
            payload.insert("table3", t3_rows);
            payload.insert("table4", t4_rows);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Validation artifacts (§IV — fitting pipeline)
// ---------------------------------------------------------------------------

fn table1b_artifact() -> DynArtifact {
    let (id, title) = ("table1b", "Table Ib: fitted vs published energy per op");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(SweepPlan::fit),
        eval: Box::new(move |lab, _suite| {
            let fitted = validation::fit_model_cached(lab.scale());
            let text = format!(
                "Table Ib: fitted vs published energy per operation\n{}\nconst power (fitted idle): {}\nEPStall (fitted): {:.3} nJ\n",
                validation::table1b(&fitted),
                fitted.const_power,
                fitted.ep_stall.nanojoules()
            );
            let mut payload = validation::table1b_to_json(&fitted);
            payload.insert("const_power_watts", fitted.const_power.watts());
            payload.insert("ep_stall_nj", fitted.ep_stall.nanojoules());
            Ok(data(id, title, text, payload))
        }),
    }
}

fn fig4a_artifact() -> DynArtifact {
    let (id, title) = ("fig4a", "Figure 4a: mixed-microbenchmark validation");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(SweepPlan::fit),
        eval: Box::new(move |lab, _suite| {
            let scale = lab.scale();
            let hw = VirtualK40::new();
            let fitted = validation::fit_model_cached(scale);
            let model = fitted.to_energy_model();
            let report = validation::fig4a(&hw, &model, scale);
            let text = format!(
                "Figure 4a: mixed-microbenchmark validation (paper band: +2.5% .. -6%)\n{}\n",
                validation::render_validation(&report)
            );
            Ok(data(
                id,
                title,
                text,
                validation::validation_to_json(&report),
            ))
        }),
    }
}

fn fig4b_artifact() -> DynArtifact {
    let (id, title) = ("fig4b", "Figure 4b: application-suite validation");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(SweepPlan::fit),
        eval: Box::new(move |lab, _suite| {
            let scale = lab.scale();
            let hw = VirtualK40::new();
            let fitted = validation::fit_model_cached(scale);
            let model = fitted.to_energy_model();
            let suite = workloads::suite();
            let report = validation::fig4b(&hw, &model, &suite, scale);
            let outliers = report.outliers(30.0);
            let outlier_names: Vec<&str> = outliers.iter().map(|i| i.name.as_str()).collect();
            let text = format!(
                "Figure 4b: application validation (paper: 9.4% mean |err|, 4 outliers >30%)\n{}\noutliers beyond 30%: {}\n",
                validation::render_validation(&report),
                outlier_names.join(", ")
            );
            let mut payload = validation::validation_to_json(&report);
            let mut out = Json::array();
            for name in outlier_names {
                out.push(name);
            }
            payload.insert("outliers_beyond_30pct", out);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Sensitivity (energy-model anchors)
// ---------------------------------------------------------------------------

/// EDPSE and energy ratio with an overridden energy model at 32-GPM
/// 2x-BW (the sensitivity study's probe).
fn sensitivity_point(
    lab: &Lab,
    suite: &[WorkloadSpec],
    const_per_gpm: Power,
    dram_pj_per_bit: f64,
    point: &str,
) -> Result<(f64, f64), ArtifactError> {
    let cfg = ExpConfig::paper_default(32, BwSetting::X2);
    let mut ept = EptTable::k40();
    ept.set(
        Transaction::DramToL2,
        EnergyPerBit::from_pj_per_bit(dram_pj_per_bit)
            .energy_for(Bytes::new(Transaction::DramToL2.bytes_per_txn())),
    );
    let mut base_ecfg = ExpConfig::baseline().energy_config();
    let mut scaled_ecfg = cfg.energy_config();
    scaled_ecfg.const_power_per_gpm = const_per_gpm;
    base_ecfg.const_power_per_gpm = const_per_gpm;

    let base_model = base_ecfg.build_model_with_tables(EpiTable::k40(), ept.clone());
    let scaled_model = scaled_ecfg.build_model_with_tables(EpiTable::k40(), ept);

    let mut edpses = Vec::new();
    let mut energies = Vec::new();
    for w in suite {
        let base_counts = lab.counts(w, &ExpConfig::baseline());
        let counts = lab.counts(w, &cfg);
        let e_base = base_model.estimate(&base_counts).total();
        let e = scaled_model.estimate(&counts).total();
        let edp_base = e_base.joules() * base_counts.elapsed.secs();
        let edp = e.joules() * counts.elapsed.secs();
        edpses.push(edp_base * 100.0 / (32.0 * edp));
        energies.push(e.joules() / e_base.joules());
    }
    Ok((
        mean_of("sensitivity", point, &edpses)?,
        mean_of("sensitivity", point, &energies)?,
    ))
}

fn sensitivity_artifact() -> DynArtifact {
    let (id, title) = ("sensitivity", "Energy-model anchor sensitivity at 32-GPM");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| SweepPlan::sweep(vec![ExpConfig::paper_default(32, BwSetting::X2)])),
        eval: Box::new(move |lab, suite| {
            lab.prime_suite(suite, &[ExpConfig::paper_default(32, BwSetting::X2)])
                .map_err(|e| ArtifactError::from_sweep("sensitivity", e))?;
            let mut text = String::from("Sensitivity of the 32-GPM (2x-BW) conclusions:\n\n");

            let mut t = TextTable::new(["per-GPM constant power", "energy vs 1-GPM", "EDPSE (%)"]);
            let mut const_rows = Json::array();
            for watts in [40.0, 62.0, 85.0] {
                let (edpse, energy) = sensitivity_point(
                    lab,
                    suite,
                    Power::from_watts(watts),
                    21.1,
                    &format!("const power {watts:.0} W"),
                )?;
                t.row([
                    format!("{watts:.0} W"),
                    format!("{energy:.2}"),
                    format!("{edpse:.1}"),
                ]);
                let mut r = Json::object();
                r.insert("const_power_watts", watts);
                r.insert("energy_ratio", energy);
                r.insert("edpse_pct", edpse);
                const_rows.push(r);
            }
            let _ = writeln!(text, "constant-power anchor (baseline 62 W):");
            let _ = writeln!(text, "{t}");

            let mut t =
                TextTable::new(["DRAM technology", "pJ/bit", "energy vs 1-GPM", "EDPSE (%)"]);
            let mut dram_rows = Json::array();
            for (label, pj) in [
                ("GDDR5 (K40)", 30.55),
                ("HBM (paper)", 21.1),
                ("HBM2-class", 15.0),
            ] {
                let (edpse, energy) =
                    sensitivity_point(lab, suite, Power::from_watts(62.0), pj, label)?;
                t.row([
                    label.to_string(),
                    format!("{pj:.2}"),
                    format!("{energy:.2}"),
                    format!("{edpse:.1}"),
                ]);
                let mut r = Json::object();
                r.insert("technology", label);
                r.insert("pj_per_bit", pj);
                r.insert("energy_ratio", energy);
                r.insert("edpse_pct", edpse);
                dram_rows.push(r);
            }
            let _ = writeln!(
                text,
                "DRAM per-bit cost (the paper's §V-A2 HBM adjustment):"
            );
            let _ = writeln!(text, "{t}");

            let mut payload = Json::object();
            payload.insert("const_power", const_rows);
            payload.insert("dram", dram_rows);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Calibration diagnostics
// ---------------------------------------------------------------------------

fn calibrate_artifact() -> DynArtifact {
    let (id, title) = ("calibrate", "Per-workload scaling calibration diagnostics");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(|| {
            let mut cfgs = Vec::new();
            for n in [2usize, 4, 8, 16, 32] {
                cfgs.push(ExpConfig::paper_default(n, BwSetting::X2));
                cfgs.push(ExpConfig::paper_default(n, BwSetting::X1));
            }
            SweepPlan::sweep(cfgs)
        }),
        eval: Box::new(move |lab, suite| {
            let mut t = TextTable::new([
                "workload", "cat", "1G kcyc", "s2", "s4", "s8", "s16", "s32", "E32/E1", "edpse32",
                "idle32", "hop32GB", "const32",
            ]);
            let mut rows = Json::array();
            for w in suite {
                let base = lab.baseline(w);
                let mut row = vec![
                    w.name.to_string(),
                    w.category.to_string(),
                    format!("{:.0}", base.counts.elapsed.nanos() / 1000.0),
                ];
                let mut speedups = Json::array();
                for n in [2usize, 4, 8, 16, 32] {
                    let cfg = ExpConfig::paper_default(n, BwSetting::X2);
                    let s = lab.speedup(w, &cfg);
                    row.push(format!("{s:.1}"));
                    let mut sp = Json::object();
                    sp.insert("gpms", n);
                    sp.insert("speedup", s);
                    speedups.push(sp);
                }
                let cfg32 = ExpConfig::paper_default(32, BwSetting::X2);
                let p32 = lab.point(w, &cfg32);
                let energy32 = lab.energy_ratio(w, &cfg32);
                let edpse32 = lab.edpse(w, &cfg32);
                let idle32 = p32.counts.idle_fraction();
                let hop_gb = p32.counts.inter_gpm_hop_bytes.count() as f64 / 1e9;
                let const_frac = p32.breakdown.fraction(EnergyComponent::ConstantOverhead);
                row.push(format!("{energy32:.2}"));
                row.push(format!("{edpse32:.0}"));
                row.push(format!("{idle32:.2}"));
                row.push(format!("{hop_gb:.2}"));
                row.push(format!("{const_frac:.2}"));
                t.row(row);

                let mut r = Json::object();
                r.insert("workload", w.name);
                r.insert("category", w.category.to_string().as_str());
                r.insert("baseline_kcycles", base.counts.elapsed.nanos() / 1000.0);
                r.insert("speedups", speedups);
                r.insert("energy_ratio_32", energy32);
                r.insert("edpse_pct_32", edpse32);
                r.insert("idle_fraction_32", idle32);
                r.insert("inter_gpm_hop_gb_32", hop_gb);
                r.insert("const_energy_fraction_32", const_frac);
                rows.push(r);
            }

            // On-board 1x-BW energy growth (Fig. 2 trajectory).
            let mut t2 = TextTable::new(["workload", "E2", "E4", "E8", "E16", "E32 (1x-BW board)"]);
            let mut onboard = Json::array();
            for w in suite {
                let mut row = vec![w.name.to_string()];
                let mut energies = Json::array();
                for n in [2usize, 4, 8, 16, 32] {
                    let cfg = ExpConfig::paper_default(n, BwSetting::X1);
                    let e = lab.energy_ratio(w, &cfg);
                    row.push(format!("{e:.2}"));
                    let mut ej = Json::object();
                    ej.insert("gpms", n);
                    ej.insert("energy_ratio", e);
                    energies.push(ej);
                }
                t2.row(row);
                let mut r = Json::object();
                r.insert("workload", w.name);
                r.insert("energies", energies);
                onboard.push(r);
            }

            let text = format!("{t}\n{t2}\n");
            let mut payload = Json::object();
            payload.insert("scaling", rows);
            payload.insert("onboard_energy", onboard);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Workload characterization
// ---------------------------------------------------------------------------

fn workload_report_artifact() -> DynArtifact {
    let (id, title) = ("workload_report", "Per-workload simulator characterization");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(SweepPlan::none),
        eval: Box::new(move |lab, _suite| {
            let scale = lab.scale();
            let sim_cfg = |n: usize| match scale {
                Scale::Full => GpuConfig::paper(n, BwSetting::X2, Topology::Ring),
                Scale::Smoke => GpuConfig::tiny(n),
            };

            let mut t = TextTable::new([
                "workload",
                "cat",
                "instrs",
                "fp64 %",
                "B/instr",
                "L1 hit",
                "L2 hit",
                "dram util",
                "link max util (8-GPM)",
                "remote lat (8-GPM)",
            ]);
            let mut rows = Json::array();
            for w in workloads::suite() {
                let mut sim1 = GpuSim::new(&sim_cfg(1));
                let r1 = sim1.run_workload(&w.launches(scale));
                let c = r1.total_counts();
                let u1 = sim1.memory().utilization_report(r1.total_cycles());

                let mut sim8 = GpuSim::new(&sim_cfg(8));
                let r8 = sim8.run_workload(&w.launches(scale));
                let u8r = sim8.memory().utilization_report(r8.total_cycles());
                let lat8 = sim8.memory().latency_stats();

                let instrs = c.total_instructions();
                let fp64: u64 = c
                    .instrs
                    .iter()
                    .filter(|(op, _)| op.is_fp64())
                    .map(|(_, n)| n)
                    .sum();
                let dram_bytes =
                    c.txns.get(Transaction::DramToL2) * Transaction::DramToL2.bytes_per_txn();
                t.row([
                    w.name.to_string(),
                    w.category.to_string(),
                    format!("{:.1}M", instrs as f64 / 1e6),
                    format!("{:.0}", fp64 as f64 / instrs.max(1) as f64 * 100.0),
                    format!("{:.2}", dram_bytes as f64 / instrs.max(1) as f64),
                    format!("{:.2}", u1.l1_hit_rate),
                    format!("{:.2}", u1.l2_hit_rate),
                    format!("{:.2}", u1.dram),
                    format!("{:.2}", u8r.link_max),
                    format!("{:.0} cyc", lat8.mean_remote()),
                ]);

                let mut r = Json::object();
                r.insert("workload", w.name);
                r.insert("category", w.category.to_string().as_str());
                r.insert("instructions", instrs as f64);
                r.insert("fp64_pct", fp64 as f64 / instrs.max(1) as f64 * 100.0);
                r.insert(
                    "bytes_per_instruction",
                    dram_bytes as f64 / instrs.max(1) as f64,
                );
                r.insert("l1_hit_rate", u1.l1_hit_rate);
                r.insert("l2_hit_rate", u1.l2_hit_rate);
                r.insert("dram_utilization", u1.dram);
                r.insert("link_max_utilization_8gpm", u8r.link_max);
                r.insert("mean_remote_latency_cycles_8gpm", lat8.mean_remote());
                rows.push(r);
            }

            let mut text = format!("Workload characterization ({:?} scale):\n{t}\n", scale);
            let _ = writeln!(text, "Surrogate mapping:");
            let mut mapping = Json::array();
            for w in workloads::suite() {
                let _ = writeln!(
                    text,
                    "  {:<11} {}",
                    w.name,
                    w.description.replace('\n', " ")
                );
                let mut m = Json::object();
                m.insert("workload", w.name);
                m.insert("description", w.description.replace('\n', " ").as_str());
                mapping.push(m);
            }

            let mut payload = Json::object();
            payload.insert("rows", rows);
            payload.insert("mapping", mapping);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Portability (§IV-B3 — fit two different virtual boards)
// ---------------------------------------------------------------------------

/// Fits one board and reports recovery of its planted truth. Returns the
/// rendered text plus the JSON row set.
fn portability_board(label: &str, hw: &VirtualK40, cfg: &FitConfig) -> (String, Json) {
    let fitted = fit(hw, cfg);
    let truth = hw.truth();

    let mut t = TextTable::new(["operation", "fitted", "planted truth", "err %"]);
    let mut rows = Json::array();
    for op in [
        Opcode::FAdd32,
        Opcode::FFma32,
        Opcode::IMad32,
        Opcode::FAdd64,
        Opcode::FFma64,
        Opcode::FRcp32,
    ] {
        let got = fitted.epi.get(op).nanojoules();
        let want = truth.true_epi(op).nanojoules();
        t.row([
            op.mnemonic().to_string(),
            format!("{got:.4} nJ"),
            format!("{want:.4} nJ"),
            format!("{:+.1}", (got - want) / want * 100.0),
        ]);
        let mut r = Json::object();
        r.insert("operation", op.mnemonic());
        r.insert("fitted_nj", got);
        r.insert("planted_nj", want);
        r.insert("error_pct", (got - want) / want * 100.0);
        rows.push(r);
    }
    for txn in Transaction::ALL.iter().filter(|t| t.is_intra_gpm()) {
        let got = fitted.ept.get(*txn).nanojoules();
        let want = truth.true_ept(*txn).nanojoules();
        t.row([
            txn.label().to_string(),
            format!("{got:.3} nJ"),
            format!("{want:.3} nJ (+ floor share)"),
            format!("{:+.1}", (got - want) / want * 100.0),
        ]);
        let mut r = Json::object();
        r.insert("operation", txn.label());
        r.insert("fitted_nj", got);
        r.insert("planted_nj", want);
        r.insert("error_pct", (got - want) / want * 100.0);
        rows.push(r);
    }
    let text = format!(
        "{label}: idle fitted {} (planted {})\n{t}\n",
        fitted.const_power,
        truth.idle_power()
    );
    let mut board = Json::object();
    board.insert("board", label);
    board.insert("idle_fitted_watts", fitted.const_power.watts());
    board.insert("idle_planted_watts", truth.idle_power().watts());
    board.insert("rows", rows);
    (text, board)
}

fn portability_artifact() -> DynArtifact {
    let (id, title) = ("portability", "§IV-B3 portability: fit two virtual boards");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(SweepPlan::none),
        eval: Box::new(move |lab, _suite| {
            let fast = lab.scale() == Scale::Smoke;
            let target = if fast {
                Time::from_millis(300.0)
            } else {
                Time::from_millis(600.0)
            };
            let iterations = if fast { 500 } else { 1200 };

            // Board 1: the K40-class baseline.
            let k40 = VirtualK40::new();
            let k40_cfg = FitConfig {
                gpu: GpuConfig::single_gpm(),
                target_duration: target,
                compute_iterations: iterations,
                rounds: 3,
            };
            let mut text = String::new();
            let mut boards = Json::array();
            let (t1, b1) = portability_board("K40-class board", &k40, &k40_cfg);
            text.push_str(&t1);
            boards.push(b1);

            // Board 2: the Pascal-class part — same pipeline, different
            // silicon.
            let pascal = VirtualK40::new().with_truth(TruthModel::pascal_class());
            let mut gpu = GpuConfig::paper(1, BwSetting::X2, Topology::Ring);
            gpu.gpm = GpmConfig::pascal_class();
            gpu.inter_gpm_bw = BwSetting::X2.inter_gpm_bw(gpu.gpm.dram_bw);
            let pascal_cfg = FitConfig {
                gpu,
                target_duration: target,
                compute_iterations: iterations,
                rounds: 3,
            };
            let (t2, b2) = portability_board("Pascal-class board", &pascal, &pascal_cfg);
            text.push_str(&t2);
            boards.push(b2);

            // The fitted models validate on their own boards.
            let mut checks = Json::array();
            for (label, hw, cfg) in [
                ("K40-class", &k40, &k40_cfg),
                ("Pascal-class", &pascal, &pascal_cfg),
            ] {
                let model = fit(hw, cfg).to_energy_model();
                let report = microbench::validate_mixed(hw, &model, &cfg.gpu, target);
                let _ = writeln!(
                    text,
                    "{label} mixed-instruction validation: mean |err| {:.1}% (paper band +2.5/-6%)",
                    report.mean_abs_error_percent()
                );
                let mut c = Json::object();
                c.insert("board", label);
                c.insert("mean_abs_error_pct", report.mean_abs_error_percent());
                checks.push(c);
            }

            let mut payload = Json::object();
            payload.insert("boards", boards);
            payload.insert("validation", checks);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Reproduction report + composite
// ---------------------------------------------------------------------------

fn repro_report_artifact(validation_on: bool) -> DynArtifact {
    let (id, title) = ("repro_report", "Self-checking reproduction verdicts");
    DynArtifact {
        id,
        title,
        composite: false,
        plan: Box::new(move || {
            let mut plan = SweepPlan::sweep(report::scaling_claims_plan());
            if validation_on {
                plan = plan.with_fit();
            }
            plan
        }),
        eval: Box::new(move |lab, suite| {
            let mut claims = report::evaluate_scaling_claims(lab, suite)?;
            if validation_on {
                claims.extend(report::evaluate_validation_claims(lab.scale()));
            }
            let passed = claims.iter().filter(|c| c.pass).count();
            let text = format!(
                "Reproduction verdicts:\n{}\n{passed}/{} claims PASS\n",
                report::render_claims(&claims),
                claims.len()
            );
            let mut payload = Json::object();
            payload.insert("validation_included", validation_on);
            match report::claims_to_json(&claims) {
                Json::Object(pairs) => {
                    for (k, v) in pairs {
                        payload.insert(k, v);
                    }
                }
                other => {
                    payload.insert("claims", other);
                }
            }
            Ok(data(id, title, text, payload))
        }),
    }
}

fn all_figures_artifact(validation_on: bool) -> DynArtifact {
    let (id, title) = ("all_figures", "Every scaling figure and point study");
    DynArtifact {
        id,
        title,
        composite: true,
        plan: Box::new(move || {
            let mut plan = SweepPlan::sweep(report::scaling_claims_plan());
            if validation_on {
                plan = plan.with_fit();
            }
            plan
        }),
        eval: Box::new(move |lab, suite| {
            let mut text = String::new();
            let mut sections = Json::object();

            let fig2 = Fig2::run(lab, suite)?;
            let _ = writeln!(
                text,
                "\n== Figure 2: on-board scaling energy (paper: ~2x at 32-GPM) =="
            );
            let _ = writeln!(text, "{}", fig2.render());
            sections.insert("fig2", fig2.to_json());

            let fig6 = Fig6::run(lab, suite)?;
            let _ = writeln!(
                text,
                "\n== Figure 6: EDPSE at 2x-BW (paper: 94% @2 -> 36% @32) =="
            );
            let _ = writeln!(text, "{}", fig6.render());
            sections.insert("fig6", fig6.to_json());

            let fig7 = Fig7::run(lab, suite)?;
            let _ = writeln!(
                text,
                "\n== Figure 7: per-step speedup + energy breakdown =="
            );
            let _ = writeln!(text, "{}", fig7.render());
            let _ = writeln!(
                text,
                "monolithic 16->32 step speedup: {:.2} (paper: 1.808)",
                fig7.monolithic_16_to_32
            );
            sections.insert("fig7", fig7.to_json());

            let fig8 = Fig8::run(lab, suite)?;
            let _ = writeln!(text, "\n== Figure 8: EDPSE vs bandwidth ==");
            let _ = writeln!(text, "{}", fig8.render());
            sections.insert("fig8", fig8.to_json());

            let fig9 = Fig9::run(lab, suite)?;
            let _ = writeln!(text, "\n== Figure 9: on-board ring vs switch ==");
            let _ = writeln!(text, "{}", fig9.render());
            sections.insert("fig9", fig9.to_json());

            let fig10 = Fig10::run(lab, suite)?;
            let _ = writeln!(text, "\n== Figure 10: speedup + energy across settings ==");
            let _ = writeln!(text, "{}", fig10.render());
            sections.insert("fig10", fig10.to_json());

            let ps = PointStudies::run(lab, suite)?;
            let _ = writeln!(text, "\n== Point studies ==");
            let _ = writeln!(text, "{}", ps.render());
            sections.insert("point_studies", ps.to_json());

            let h = Headline::run(lab, suite)?;
            let _ = writeln!(text, "\n== Headline ==");
            let _ = writeln!(text, "{}", h.render());
            sections.insert("headline", h.to_json());

            if validation_on {
                let scale = lab.scale();
                let hw = VirtualK40::new();
                let fitted = validation::fit_model_cached(scale);
                let _ = writeln!(text, "\n== Table Ib ==");
                let _ = writeln!(text, "{}", validation::table1b(&fitted));
                sections.insert("table1b", validation::table1b_to_json(&fitted));
                let model = fitted.to_energy_model();
                let r4a = validation::fig4a(&hw, &model, scale);
                let _ = writeln!(text, "\n== Figure 4a ==");
                let _ = writeln!(text, "{}", validation::render_validation(&r4a));
                sections.insert("fig4a", validation::validation_to_json(&r4a));
                let full_suite = workloads::suite();
                let r4b = validation::fig4b(&hw, &model, &full_suite, scale);
                let _ = writeln!(text, "\n== Figure 4b ==");
                let _ = writeln!(text, "{}", validation::render_validation(&r4b));
                sections.insert("fig4b", validation::validation_to_json(&r4b));
            }

            let mut payload = Json::object();
            payload.insert("validation_included", validation_on);
            payload.insert("sections", sections);
            Ok(data(id, title, text, payload))
        }),
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The ordered set of every artifact the workspace can reproduce.
pub struct ArtifactRegistry {
    artifacts: Vec<Box<dyn Artifact>>,
}

impl ArtifactRegistry {
    /// The standard registry: every paper figure, table, and study.
    pub fn standard(options: &RegistryOptions) -> Self {
        let artifacts: Vec<Box<dyn Artifact>> = vec![
            Box::new(fig2_artifact()),
            Box::new(fig6_artifact()),
            Box::new(fig7_artifact()),
            Box::new(fig8_artifact()),
            Box::new(fig9_artifact()),
            Box::new(fig10_artifact()),
            Box::new(point_studies_artifact()),
            Box::new(headline_artifact()),
            Box::new(tables_artifact()),
            Box::new(table1b_artifact()),
            Box::new(fig4a_artifact()),
            Box::new(fig4b_artifact()),
            Box::new(ablation_artifact()),
            Box::new(extensions_artifact()),
            Box::new(sensitivity_artifact()),
            Box::new(calibrate_artifact()),
            Box::new(workload_report_artifact()),
            Box::new(portability_artifact()),
            Box::new(repro_report_artifact(options.validation)),
            Box::new(all_figures_artifact(options.validation)),
        ];
        ArtifactRegistry { artifacts }
    }

    /// Iterates the artifacts in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Artifact> {
        self.artifacts.iter().map(|a| a.as_ref())
    }

    /// Looks an artifact up by id.
    pub fn get(&self, id: &str) -> Option<&dyn Artifact> {
        self.artifacts
            .iter()
            .find(|a| a.id() == id)
            .map(|a| a.as_ref())
    }

    /// All artifact ids, in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.artifacts.iter().map(|a| a.id()).collect()
    }

    /// The ids `run all` expands to: every non-composite artifact.
    pub fn all_ids(&self) -> Vec<&'static str> {
        self.artifacts
            .iter()
            .filter(|a| !a.composite())
            .map(|a| a.id())
            .collect()
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Whether the registry is empty (never true for the standard one).
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_complete_and_unique() {
        let reg = ArtifactRegistry::standard(&RegistryOptions::default());
        let ids = reg.ids();
        for expected in [
            "fig2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "point_studies",
            "headline",
            "tables",
            "table1b",
            "fig4a",
            "fig4b",
            "ablation",
            "extensions",
            "sensitivity",
            "calibrate",
            "workload_report",
            "portability",
            "repro_report",
            "all_figures",
        ] {
            assert!(ids.contains(&expected), "missing artifact {expected}");
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate artifact ids");
        // The composite wrapper is excluded from `run all`.
        assert!(!reg.all_ids().contains(&"all_figures"));
        assert_eq!(reg.all_ids().len(), reg.len() - 1);
    }

    #[test]
    fn plans_declare_the_expected_sweeps() {
        let reg = ArtifactRegistry::standard(&RegistryOptions::default());
        assert_eq!(reg.get("fig2").unwrap().plan().configs.len(), 5);
        assert!(!reg.get("fig2").unwrap().plan().needs_fit);
        assert!(reg.get("table1b").unwrap().plan().needs_fit);
        assert!(reg.get("table1b").unwrap().plan().configs.is_empty());
        assert!(reg.get("repro_report").unwrap().plan().needs_fit);
        assert!(!reg.get("repro_report").unwrap().plan().configs.is_empty());
        assert!(reg.get("tables").unwrap().plan().configs.is_empty());

        let no_val = ArtifactRegistry::standard(&RegistryOptions { validation: false });
        assert!(!no_val.get("repro_report").unwrap().plan().needs_fit);
    }

    #[test]
    fn tables_artifact_text_matches_historical_binary_shape() {
        let reg = ArtifactRegistry::standard(&RegistryOptions::default());
        let lab = Lab::new(Scale::Smoke);
        let suite = crate::figures::default_suite();
        let art = reg.get("tables").unwrap();
        let d = art.evaluate(&lab, &suite).unwrap();
        assert!(d
            .text
            .starts_with("Table III: simulated multi-module GPU configurations\n"));
        assert!(d.text.contains("Table IV: per-GPM I/O bandwidth settings"));
        assert_eq!(d.json.get("id").and_then(Json::as_str), Some("tables"));
        let t3 = d.json.get("table3").unwrap().as_array().unwrap();
        assert_eq!(t3.len(), 6);
        // Serialized payload survives the strict parser.
        assert!(Json::parse(&d.json.render_pretty()).is_ok());
    }
}
