//! The unified experiment driver. Run `xp list` for the artifact index.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(xp::cli::main(&args));
}
