//! §VII headline: naive vs optimized 32-GPM energy and speedup.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let h = xp::Headline::run(&lab, &suite);
    println!("Headline comparison (paper §VII)");
    println!("{}", h.render());
    lab.print_sweep_summary();
}
