//! §VII headline: naive vs optimized 32-GPM energy and speedup.

fn main() {
    let mut lab = xp::Lab::new(xp::scale_from_args());
    let suite = xp::default_suite();
    let h = xp::Headline::run(&mut lab, &suite);
    println!("Headline comparison (paper §VII)");
    println!("{}", h.render());
}
