//! Figure 2: average energy cost of strong scaling with on-board
//! integration (1x-BW ring), normalized to a single GPU.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let fig = xp::Fig2::run(&lab, &suite);
    println!("Figure 2: energy of strong scaling, on-board integration (ideal = 1.0)");
    println!("{}", fig.render());
    lab.print_sweep_summary();
}
