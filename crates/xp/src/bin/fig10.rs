//! Figure 10: speedup and normalized energy across all GPM counts and
//! bandwidth settings (amortization applied in the on-package domains).

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let fig = xp::Fig10::run(&lab, &suite);
    println!("Figure 10: speedup and energy vs 1-GPM across bandwidth settings");
    println!("{}", fig.render());
    lab.print_sweep_summary();
}
