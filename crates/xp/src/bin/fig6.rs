//! Figure 6: EDPSE of compute-/memory-intensive/all workloads for the
//! baseline on-package (2x-BW) configuration.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let fig = xp::Fig6::run(&lab, &suite);
    println!("Figure 6: EDPSE, on-package baseline (2x-BW); paper avg: 94% @2-GPM -> 36% @32-GPM");
    println!("{}", fig.render());
    lab.print_sweep_summary();
}
