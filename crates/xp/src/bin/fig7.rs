//! Figure 7: incremental speedup and component-wise energy increase at
//! each scaling step (2x-BW on-package).

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let fig = xp::Fig7::run(&lab, &suite);
    println!("Figure 7: per-step speedup and energy increase breakdown (2x-BW)");
    println!("{}", fig.render());
    println!(
        "monolithic (ideal interconnect) 16->32 speedup: {:.2} (paper: 1.808)",
        fig.monolithic_16_to_32
    );
    lab.print_sweep_summary();
}
