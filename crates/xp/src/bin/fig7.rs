//! Figure 7: incremental speedup and component-wise energy increase at
//! each scaling step (2x-BW on-package).

fn main() {
    let mut lab = xp::Lab::new(xp::scale_from_args());
    let suite = xp::default_suite();
    let fig = xp::Fig7::run(&mut lab, &suite);
    println!("Figure 7: per-step speedup and energy increase breakdown (2x-BW)");
    println!("{}", fig.render());
    println!(
        "monolithic (ideal interconnect) 16->32 speedup: {:.2} (paper: 1.808)",
        fig.monolithic_16_to_32
    );
}
