//! Every scaling figure and point study in one run. Thin alias for
//! `xp run all_figures`; accepts the historical `--smoke`,
//! `--threads N`, and `--no-validation` flags unchanged.

fn main() {
    let mut args = vec!["run".to_string(), "all_figures".to_string()];
    args.extend(std::env::args().skip(1));
    std::process::exit(xp::cli::main(&args));
}
