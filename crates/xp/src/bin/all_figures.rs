//! Runs every scaling figure and point study with one shared simulation
//! cache, printing all results. The validation experiments (Table Ib,
//! Figs. 4a/4b) are included unless `--no-validation` is passed.

use silicon::VirtualK40;

fn main() {
    let scale = xp::scale_from_args();
    let skip_validation = std::env::args().any(|a| a == "--no-validation");
    let lab = xp::Lab::with_threads(scale, xp::threads_from_args());
    let suite = xp::default_suite();

    let fig2 = xp::Fig2::run(&lab, &suite);
    println!("\n== Figure 2: on-board scaling energy (paper: ~2x at 32-GPM) ==");
    println!("{}", fig2.render());

    let fig6 = xp::Fig6::run(&lab, &suite);
    println!("\n== Figure 6: EDPSE at 2x-BW (paper: 94% @2 -> 36% @32) ==");
    println!("{}", fig6.render());

    let fig7 = xp::Fig7::run(&lab, &suite);
    println!("\n== Figure 7: per-step speedup + energy breakdown ==");
    println!("{}", fig7.render());
    println!(
        "monolithic 16->32 step speedup: {:.2} (paper: 1.808)",
        fig7.monolithic_16_to_32
    );

    let fig8 = xp::Fig8::run(&lab, &suite);
    println!("\n== Figure 8: EDPSE vs bandwidth ==");
    println!("{}", fig8.render());

    let fig9 = xp::Fig9::run(&lab, &suite);
    println!("\n== Figure 9: on-board ring vs switch ==");
    println!("{}", fig9.render());

    let fig10 = xp::Fig10::run(&lab, &suite);
    println!("\n== Figure 10: speedup + energy across settings ==");
    println!("{}", fig10.render());

    let ps = xp::PointStudies::run(&lab, &suite);
    println!("\n== Point studies ==");
    println!("{}", ps.render());

    let h = xp::Headline::run(&lab, &suite);
    println!("\n== Headline ==");
    println!("{}", h.render());

    if !skip_validation {
        let hw = VirtualK40::new();
        let fitted = xp::validation::fit_model(&hw, scale);
        println!("\n== Table Ib ==");
        println!("{}", xp::validation::table1b(&fitted));
        let model = fitted.to_energy_model();
        let r4a = xp::validation::fig4a(&hw, &model, scale);
        println!("\n== Figure 4a ==");
        println!("{}", xp::validation::render_validation(&r4a));
        let full_suite = workloads::suite();
        let r4b = xp::validation::fig4b(&hw, &model, &full_suite, scale);
        println!("\n== Figure 4b ==");
        println!("{}", xp::validation::render_validation(&r4b));
    }
    lab.print_sweep_summary();
}
