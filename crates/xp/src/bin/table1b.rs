//! Table Ib: fit GPUJoule against the virtual K40 and print the recovered
//! EPI/EPT table next to the paper's published values.

use silicon::VirtualK40;

fn main() {
    let scale = xp::scale_from_args();
    let hw = VirtualK40::new();
    let fitted = xp::validation::fit_model(&hw, scale);
    println!("Table Ib: fitted vs published energy per operation");
    println!("{}", xp::validation::table1b(&fitted));
    println!("const power (fitted idle): {}", fitted.const_power);
    println!("EPStall (fitted): {:.3} nJ", fitted.ep_stall.nanojoules());
}
