//! §IV-B3: "the GPUJoule methodology has been designed to be easily
//! applicable to any current or future GPUs." Demonstrated by fitting the
//! same pipeline, unchanged, against two different virtual boards — the
//! K40-class baseline and a 16 nm Pascal-class part with different
//! energies, clocks, cache sizes, and idle floor — and reporting how well
//! each board's (hidden) planted parameters are recovered.

use common::table::TextTable;
use common::units::Time;
use isa::{Opcode, Transaction};
use microbench::{fit, FitConfig};
use silicon::{TruthModel, VirtualK40};
use sim::{BwSetting, GpmConfig, GpuConfig, Topology};
use workloads::Scale;

fn fit_and_report(label: &str, hw: &VirtualK40, cfg: &FitConfig) {
    let fitted = fit(hw, cfg);
    let truth = hw.truth();

    let mut t = TextTable::new(["operation", "fitted", "planted truth", "err %"]);
    for op in [
        Opcode::FAdd32,
        Opcode::FFma32,
        Opcode::IMad32,
        Opcode::FAdd64,
        Opcode::FFma64,
        Opcode::FRcp32,
    ] {
        let got = fitted.epi.get(op).nanojoules();
        let want = truth.true_epi(op).nanojoules();
        t.row([
            op.mnemonic().to_string(),
            format!("{got:.4} nJ"),
            format!("{want:.4} nJ"),
            format!("{:+.1}", (got - want) / want * 100.0),
        ]);
    }
    for txn in Transaction::ALL.iter().filter(|t| t.is_intra_gpm()) {
        let got = fitted.ept.get(*txn).nanojoules();
        let want = truth.true_ept(*txn).nanojoules();
        t.row([
            txn.label().to_string(),
            format!("{got:.3} nJ"),
            format!("{want:.3} nJ (+ floor share)"),
            format!("{:+.1}", (got - want) / want * 100.0),
        ]);
    }
    println!(
        "{label}: idle fitted {} (planted {})",
        fitted.const_power,
        truth.idle_power()
    );
    println!("{t}");
}

fn main() {
    let fast = std::env::args().any(|a| a == "--smoke");
    let target = if fast {
        Time::from_millis(300.0)
    } else {
        Time::from_millis(600.0)
    };
    let iterations = if fast { 500 } else { 1200 };

    // Board 1: the K40-class baseline.
    let k40 = VirtualK40::new();
    let k40_cfg = FitConfig {
        gpu: GpuConfig::single_gpm(),
        target_duration: target,
        compute_iterations: iterations,
        rounds: 3,
    };
    fit_and_report("K40-class board", &k40, &k40_cfg);

    // Board 2: the Pascal-class part — same pipeline, different silicon.
    let pascal = VirtualK40::new().with_truth(TruthModel::pascal_class());
    let mut gpu = GpuConfig::paper(1, BwSetting::X2, Topology::Ring);
    gpu.gpm = GpmConfig::pascal_class();
    gpu.inter_gpm_bw = BwSetting::X2.inter_gpm_bw(gpu.gpm.dram_bw);
    let pascal_cfg = FitConfig {
        gpu,
        target_duration: target,
        compute_iterations: iterations,
        rounds: 3,
    };
    fit_and_report("Pascal-class board", &pascal, &pascal_cfg);

    // The fitted models validate on their own boards.
    for (label, hw, cfg) in [
        ("K40-class", &k40, &k40_cfg),
        ("Pascal-class", &pascal, &pascal_cfg),
    ] {
        let model = fit(hw, cfg).to_energy_model();
        let report = microbench::validate_mixed(hw, &model, &cfg.gpu, target);
        println!(
            "{label} mixed-instruction validation: mean |err| {:.1}% (paper band +2.5/-6%)",
            report.mean_abs_error_percent()
        );
    }

    let _ = Scale::Full;
}
