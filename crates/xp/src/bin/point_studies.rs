//! §V-C/§V-D point studies: interconnect energy sensitivity, energy-for-
//! bandwidth trade, constant-energy amortization, and the §V-D energy
//! reduction chain.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let studies = xp::PointStudies::run(&lab, &suite);
    println!("Point studies (paper: <1% EDPSE impact of 4x link energy; +8.8% EDPSE for 4x-energy/2x-BW;");
    println!("               22.3%/10.4% energy saving at 50%/25% amortization; 27.4% -> 45% energy reduction)");
    println!("{}", studies.render());
    lab.print_sweep_summary();
}
