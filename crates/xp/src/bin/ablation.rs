//! Ablations of the adopted multi-module design choices: CTA scheduling,
//! page placement, L2 organization, and warp MLP.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    for gpms in [8usize, 32] {
        let study = xp::AblationStudy::run(&lab, &suite, gpms);
        println!("Design-choice ablations at {gpms}-GPM, 2x-BW on-package");
        println!("{}", study.render());
    }
    lab.print_sweep_summary();
}
