//! Figure 4b: energy-estimation error for the 18-application suite.

use silicon::VirtualK40;

fn main() {
    let scale = xp::scale_from_args();
    let hw = VirtualK40::new();
    let fitted = xp::validation::fit_model(&hw, scale);
    let model = fitted.to_energy_model();
    let suite = workloads::suite();
    let report = xp::validation::fig4b(&hw, &model, &suite, scale);
    println!("Figure 4b: application validation (paper: 9.4% mean |err|, 4 outliers >30%)");
    println!("{}", xp::validation::render_validation(&report));
    let outliers = report.outliers(30.0);
    println!(
        "outliers beyond 30%: {}",
        outliers
            .iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
