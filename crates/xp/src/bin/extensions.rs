//! The paper's §V-E future-work directions quantified: power gating,
//! link compression, and metric weighting.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();

    let gating = xp::GatingStudy::run(&lab, &suite, 32);
    println!("Idle-aware power gating at 32-GPM, 2x-BW (§V-E):");
    println!("{}", gating.render());

    let compression = xp::CompressionStudy::run(&lab, &suite, 32);
    println!("Inter-GPM link compression at 32-GPM, 1x-BW on-board (§V-E):");
    println!("{}", compression.render());

    let dvfs = xp::DvfsStudy::run(&lab, &suite, 32);
    println!("Module DVFS at 32-GPM, 2x-BW (bracketed out in §V-A2):");
    println!("{}", dvfs.render());

    let metrics = xp::MetricWeightStudy::run(&lab, &suite);
    println!("Metric weighting (ED^iPSE) at 2x-BW (§III):");
    println!("{}", metrics.render());
    lab.print_sweep_summary();
}
