//! Per-workload characterization: what each Table II surrogate actually
//! does on the simulator — instruction mix, cache behaviour, DRAM and
//! link pressure, and how the behaviour shifts from 1 to 8 modules.

use common::table::TextTable;
use isa::Transaction;
use sim::{BwSetting, GpuConfig, GpuSim, Topology};
use workloads::{suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let sim_cfg = |n: usize| match scale {
        Scale::Full => GpuConfig::paper(n, BwSetting::X2, Topology::Ring),
        Scale::Smoke => GpuConfig::tiny(n),
    };

    let mut t = TextTable::new([
        "workload",
        "cat",
        "instrs",
        "fp64 %",
        "B/instr",
        "L1 hit",
        "L2 hit",
        "dram util",
        "link max util (8-GPM)",
        "remote lat (8-GPM)",
    ]);
    for w in suite() {
        let mut sim1 = GpuSim::new(&sim_cfg(1));
        let r1 = sim1.run_workload(&w.launches(scale));
        let c = r1.total_counts();
        let u1 = sim1.memory().utilization_report(r1.total_cycles());

        let mut sim8 = GpuSim::new(&sim_cfg(8));
        let r8 = sim8.run_workload(&w.launches(scale));
        let u8r = sim8.memory().utilization_report(r8.total_cycles());
        let lat8 = sim8.memory().latency_stats();

        let instrs = c.total_instructions();
        let fp64: u64 = c
            .instrs
            .iter()
            .filter(|(op, _)| op.is_fp64())
            .map(|(_, n)| n)
            .sum();
        let dram_bytes = c.txns.get(Transaction::DramToL2) * Transaction::DramToL2.bytes_per_txn();
        t.row([
            w.name.to_string(),
            w.category.to_string(),
            format!("{:.1}M", instrs as f64 / 1e6),
            format!("{:.0}", fp64 as f64 / instrs.max(1) as f64 * 100.0),
            format!("{:.2}", dram_bytes as f64 / instrs.max(1) as f64),
            format!("{:.2}", u1.l1_hit_rate),
            format!("{:.2}", u1.l2_hit_rate),
            format!("{:.2}", u1.dram),
            format!("{:.2}", u8r.link_max),
            format!("{:.0} cyc", lat8.mean_remote()),
        ]);
    }
    println!("Workload characterization ({:?} scale):", scale);
    println!("{t}");

    println!("Surrogate mapping:");
    for w in suite() {
        println!("  {:<11} {}", w.name, w.description.replace('\n', " "));
    }
}
