//! Sensitivity of the scaling conclusions to the energy model's anchor
//! parameters: per-GPM constant power and the DRAM technology (the
//! paper's HBM adjustment, §V-A2).
//!
//! The paper's conclusions rest on the constant-power term dominating at
//! scale; this study shows how the 32-GPM EDPSE moves as that anchor and
//! the DRAM per-bit cost vary.

use common::stats;
use common::table::TextTable;
use common::units::{Bytes, EnergyPerBit, Power};
use gpujoule::{EpiTable, EptTable};
use isa::Transaction;
use sim::BwSetting;
use workloads::WorkloadSpec;
use xp::{ExpConfig, Lab};

fn mean(v: &[f64]) -> f64 {
    stats::mean(v).expect("non-empty")
}

/// EDPSE with an overridden energy model at 32-GPM 2x-BW.
fn edpse_with(
    lab: &Lab,
    suite: &[WorkloadSpec],
    const_per_gpm: Power,
    dram_pj_per_bit: f64,
) -> (f64, f64) {
    let cfg = ExpConfig::paper_default(32, BwSetting::X2);
    let mut ept = EptTable::k40();
    ept.set(
        Transaction::DramToL2,
        EnergyPerBit::from_pj_per_bit(dram_pj_per_bit)
            .energy_for(Bytes::new(Transaction::DramToL2.bytes_per_txn())),
    );
    let base_ecfg = ExpConfig::baseline().energy_config();
    let mut scaled_ecfg = cfg.energy_config();
    scaled_ecfg.const_power_per_gpm = const_per_gpm;
    let mut base_ecfg = base_ecfg;
    base_ecfg.const_power_per_gpm = const_per_gpm;

    let base_model = base_ecfg.build_model_with_tables(EpiTable::k40(), ept.clone());
    let scaled_model = scaled_ecfg.build_model_with_tables(EpiTable::k40(), ept);

    let mut edpses = Vec::new();
    let mut energies = Vec::new();
    for w in suite {
        let base_counts = lab.counts(w, &ExpConfig::baseline());
        let counts = lab.counts(w, &cfg);
        let e_base = base_model.estimate(&base_counts).total();
        let e = scaled_model.estimate(&counts).total();
        let edp_base = e_base.joules() * base_counts.elapsed.secs();
        let edp = e.joules() * counts.elapsed.secs();
        edpses.push(edp_base * 100.0 / (32.0 * edp));
        energies.push(e.joules() / e_base.joules());
    }
    (mean(&edpses), mean(&energies))
}

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();

    println!("Sensitivity of the 32-GPM (2x-BW) conclusions:\n");

    let mut t = TextTable::new(["per-GPM constant power", "energy vs 1-GPM", "EDPSE (%)"]);
    for watts in [40.0, 62.0, 85.0] {
        let (edpse, energy) = edpse_with(&lab, &suite, Power::from_watts(watts), 21.1);
        t.row([
            format!("{watts:.0} W"),
            format!("{energy:.2}"),
            format!("{edpse:.1}"),
        ]);
    }
    println!("constant-power anchor (baseline 62 W):");
    println!("{t}");

    let mut t = TextTable::new(["DRAM technology", "pJ/bit", "energy vs 1-GPM", "EDPSE (%)"]);
    for (label, pj) in [
        ("GDDR5 (K40)", 30.55),
        ("HBM (paper)", 21.1),
        ("HBM2-class", 15.0),
    ] {
        let (edpse, energy) = edpse_with(&lab, &suite, Power::from_watts(62.0), pj);
        t.row([
            label.to_string(),
            format!("{pj:.2}"),
            format!("{energy:.2}"),
            format!("{edpse:.1}"),
        ]);
    }
    println!("DRAM per-bit cost (the paper's §V-A2 HBM adjustment):");
    println!("{t}");
    lab.print_sweep_summary();
}
