//! The self-checking reproduction verdict. Thin alias for
//! `xp run repro_report`; accepts the historical `--smoke`,
//! `--threads N`, and `--no-validation` flags unchanged.

fn main() {
    let mut args = vec!["run".to_string(), "repro_report".to_string()];
    args.extend(std::env::args().skip(1));
    std::process::exit(xp::cli::main(&args));
}
