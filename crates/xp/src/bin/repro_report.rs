//! The self-checking reproduction verdict: re-evaluates every scaling
//! claim the paper makes against this repository's measurements.

fn main() {
    let scale = xp::scale_from_args();
    let skip_validation = std::env::args().any(|a| a == "--no-validation");
    let lab = xp::Lab::with_threads(scale, xp::threads_from_args());
    let suite = xp::default_suite();
    let mut claims = xp::evaluate_scaling_claims(&lab, &suite);
    if !skip_validation {
        claims.extend(xp::report::evaluate_validation_claims(scale));
    }
    println!("Reproduction verdicts:");
    println!("{}", xp::render_claims(&claims));
    let passed = claims.iter().filter(|c| c.pass).count();
    println!("{passed}/{} claims PASS", claims.len());
    lab.print_sweep_summary();
}
