//! Figure 4a: energy-estimation error for mixed-instruction
//! microbenchmarks.

use silicon::VirtualK40;

fn main() {
    let scale = xp::scale_from_args();
    let hw = VirtualK40::new();
    let fitted = xp::validation::fit_model(&hw, scale);
    let model = fitted.to_energy_model();
    let report = xp::validation::fig4a(&hw, &model, scale);
    println!("Figure 4a: mixed-microbenchmark validation (paper band: +2.5% .. -6%)");
    println!("{}", xp::validation::render_validation(&report));
}
