//! Figure 8: EDPSE as a function of the interconnect bandwidth setting.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let fig = xp::Fig8::run(&lab, &suite);
    println!("Figure 8: EDPSE vs interconnect bandwidth (paper: ~3x EDPSE from 4x BW at 32-GPM)");
    println!("{}", fig.render());
    lab.print_sweep_summary();
}
