//! Tables III and IV: the simulated configuration space.

use common::table::TextTable;
use sim::{BwSetting, GpuConfig, Topology};

fn main() {
    println!("Table III: simulated multi-module GPU configurations");
    let mut t = TextTable::new([
        "configuration",
        "modules",
        "total SMs",
        "L1/SM",
        "total L2",
        "total DRAM BW",
    ]);
    for n in [1usize, 2, 4, 8, 16, 32] {
        let cfg = GpuConfig::paper(n, BwSetting::X2, Topology::Ring);
        t.row([
            format!("{n}-GPM"),
            n.to_string(),
            cfg.total_sms().to_string(),
            format!("{}", cfg.gpm.l1_bytes),
            format!("{}", cfg.total_l2_bytes()),
            format!("{}", cfg.total_dram_bw()),
        ]);
    }
    println!("{t}");

    println!("Table IV: per-GPM I/O bandwidth settings");
    let mut t = TextTable::new([
        "setting",
        "inter-GPM BW",
        "inter-GPM:DRAM",
        "integration domain",
    ]);
    for (bw, ratio, domain) in [
        (BwSetting::X1, "1:2", "on-board"),
        (BwSetting::X2, "1:1", "on-package"),
        (BwSetting::X4, "2:1", "on-package"),
    ] {
        let cfg = GpuConfig::paper(8, bw, Topology::Ring);
        t.row([
            bw.label().to_string(),
            format!("{}", cfg.inter_gpm_bw),
            ratio.to_string(),
            domain.to_string(),
        ]);
    }
    println!("{t}");
}
