//! Figure 9: EDPSE for on-board ring vs high-radix switch networks.

fn main() {
    let lab = xp::lab_from_args();
    let suite = xp::default_suite();
    let fig = xp::Fig9::run(&lab, &suite);
    println!("Figure 9: on-board ring vs switch (paper: switch ~2x EDPSE at 32-GPM)");
    println!("{}", fig.render());
    lab.print_sweep_summary();
}
