//! Calibration diagnostics: per-workload scaling behavior at full scale.

use common::table::TextTable;
use gpujoule::EnergyComponent;
use sim::BwSetting;
use workloads::{scaling_suite, Scale};
use xp::{ExpConfig, Lab};

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let lab = Lab::with_threads(scale, xp::threads_from_args());
    let suite = scaling_suite();

    let mut t = TextTable::new([
        "workload", "cat", "1G kcyc", "s2", "s4", "s8", "s16", "s32", "E32/E1", "edpse32",
        "idle32", "hop32GB", "const32",
    ]);
    for w in &suite {
        let base = lab.baseline(w);
        let mut row = vec![
            w.name.to_string(),
            w.category.to_string(),
            format!("{:.0}", base.counts.elapsed.nanos() / 1000.0),
        ];
        for n in [2usize, 4, 8, 16, 32] {
            let cfg = ExpConfig::paper_default(n, BwSetting::X2);
            row.push(format!("{:.1}", lab.speedup(w, &cfg)));
        }
        let cfg32 = ExpConfig::paper_default(32, BwSetting::X2);
        let p32 = lab.point(w, &cfg32);
        row.push(format!("{:.2}", lab.energy_ratio(w, &cfg32)));
        row.push(format!("{:.0}", lab.edpse(w, &cfg32)));
        row.push(format!("{:.2}", p32.counts.idle_fraction()));
        row.push(format!(
            "{:.2}",
            p32.counts.inter_gpm_hop_bytes.count() as f64 / 1e9
        ));
        row.push(format!(
            "{:.2}",
            p32.breakdown.fraction(EnergyComponent::ConstantOverhead)
        ));
        t.row(row);
    }
    println!("{t}");

    // On-board 1x-BW energy growth (Fig. 2 trajectory).
    let mut t2 = TextTable::new(["workload", "E2", "E4", "E8", "E16", "E32 (1x-BW board)"]);
    for w in &suite {
        let mut row = vec![w.name.to_string()];
        for n in [2usize, 4, 8, 16, 32] {
            let cfg = ExpConfig::paper_default(n, BwSetting::X1);
            row.push(format!("{:.2}", lab.energy_ratio(w, &cfg)));
        }
        t2.row(row);
    }
    println!("{t2}");
    lab.print_sweep_summary();
}
