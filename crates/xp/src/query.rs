//! Config-delta queries: the harness side of the `xpd` daemon.
//!
//! This module owns three things:
//!
//! * **The digest code path.** [`config_digest`] (run manifests),
//!   [`artifact_digest`] (`--resume` journal freshness), and
//!   [`query_digest`] (the daemon's store keys) all build on
//!   [`common::digest::Fnv1a`], and `query_digest` *contains*
//!   `artifact_digest`: anything that would invalidate a journaled
//!   result also invalidates every stored answer derived from it.
//! * **Config deltas.** [`apply_sets`] maps `--set key=value` pairs
//!   ("fig6 at 2× inter-GPM bandwidth") onto an [`ExpConfig`].
//! * **[`RegistryEngine`]**, the [`xpd::QueryEngine`] implementation
//!   over the artifact registry and a [`Lab`]: batches of cold queries
//!   union their sweep plans into one executor prime (the same trick
//!   `xp run` plays across artifacts), then evaluate serially against
//!   the warm cache.
//!
//! Payload bytes are produced by [`artifact_file_bytes`] — the exact
//! bytes `xp run --out` writes — so a daemon answer for a plain query
//! is byte-identical to the file a local run would have produced.

use crate::artifact::{geomean_of, mean_of, Artifact, SweepPlan};
use crate::configs::ExpConfig;
use crate::figures::default_suite;
use crate::lab::Lab;
use crate::registry::{ArtifactRegistry, RegistryOptions};
use crate::validation;
use common::digest::Fnv1a;
use common::json::Json;
use common::proto::QueryRequest;
use gpujoule::IntegrationDomain;
use sim::{BwSetting, Topology};
use std::panic::{catch_unwind, AssertUnwindSafe};
use workloads::{Scale, WorkloadSpec};

/// FNV-1a over the Debug form of every planned config: a stable,
/// dependency-free fingerprint of what the sweep covered.
pub fn config_digest(configs: &[ExpConfig]) -> String {
    let mut h = Fnv1a::new();
    for cfg in configs {
        h.update(&format!("{cfg:?}\n"));
    }
    h.hex()
}

/// Per-artifact fingerprint over everything its journaled result depends
/// on: problem scale, validation mode, and the artifact's own sweep plan.
/// `--resume` only trusts a journal record whose digest still matches.
pub fn artifact_digest(plan: &SweepPlan, scale: Scale, validation: bool) -> String {
    let mut h = Fnv1a::new();
    h.update(&format!("{scale:?}|{validation}|{}\n", plan.needs_fit));
    for cfg in &plan.configs {
        h.update(&format!("{cfg:?}\n"));
    }
    h.hex()
}

/// The `xpd` store key for one query: the artifact id, the normalized
/// (key-sorted) config deltas, and the full [`artifact_digest`] of the
/// artifact's plan. Including the id keeps two artifacts with identical
/// plans from colliding in the store; including the artifact digest
/// keeps stored answers exactly as fresh as `--resume` journal records.
pub fn query_digest(
    artifact_id: &str,
    sets: &[(String, String)],
    plan: &SweepPlan,
    scale: Scale,
    validation: bool,
) -> String {
    let mut h = Fnv1a::new();
    h.update(&format!("query|{artifact_id}|"));
    let mut sorted: Vec<&(String, String)> = sets.iter().collect();
    sorted.sort();
    for (k, v) in sorted {
        h.update(&format!("{k}={v}|"));
    }
    h.update(&artifact_digest(plan, scale, validation));
    h.hex()
}

/// The exact bytes `xp run --out` writes for an artifact payload: the
/// pretty rendering plus the driver's own trailing newline. The daemon
/// serves these bytes verbatim, which is what makes warm answers
/// byte-identical to a local run.
pub fn artifact_file_bytes(json: &Json) -> String {
    format!("{}\n", json.render_pretty())
}

/// The `--set` keys [`apply_sets`] understands, for error messages and
/// usage text.
pub const SET_KEYS: &str = "gpms, bw (1x|2x|4x), topology (ring|switch|ideal), link_energy_mult, \
     link_compression, clock_scale, mlp";

/// Applies `key=value` config deltas to one experiment configuration.
/// Setting `bw` also re-derives the paper's default integration domain
/// for that bandwidth (1x is on-board, 2x/4x are on-package), matching
/// [`ExpConfig::paper_default`].
pub fn apply_sets(base: &ExpConfig, sets: &[(String, String)]) -> Result<ExpConfig, String> {
    let mut cfg = base.clone();
    for (key, value) in sets {
        match key.as_str() {
            "gpms" => {
                cfg.gpms = match value.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(format!(
                            "set gpms: expected a positive integer, got {value:?}"
                        ))
                    }
                };
            }
            "bw" => {
                cfg.bw = match value.as_str() {
                    "1x" => BwSetting::X1,
                    "2x" => BwSetting::X2,
                    "4x" => BwSetting::X4,
                    _ => return Err(format!("set bw: expected 1x, 2x, or 4x, got {value:?}")),
                };
                cfg.domain = match cfg.bw {
                    BwSetting::X1 => IntegrationDomain::OnBoard,
                    BwSetting::X2 | BwSetting::X4 => IntegrationDomain::OnPackage,
                };
            }
            "topology" => {
                cfg.topology = match value.as_str() {
                    "ring" => Topology::Ring,
                    "switch" => Topology::Switch,
                    "ideal" => Topology::Ideal,
                    _ => {
                        return Err(format!(
                            "set topology: expected ring, switch, or ideal, got {value:?}"
                        ))
                    }
                };
            }
            "link_energy_mult" => {
                cfg.link_energy_mult = match value.parse::<f64>() {
                    Ok(m) if m > 0.0 && m.is_finite() => m,
                    _ => {
                        return Err(format!(
                            "set link_energy_mult: expected a positive number, got {value:?}"
                        ))
                    }
                };
            }
            "link_compression" => {
                cfg.link_compression = match value.parse::<f64>() {
                    Ok(r) if r >= 1.0 && r.is_finite() => r,
                    _ => {
                        return Err(format!(
                            "set link_compression: expected a ratio >= 1, got {value:?}"
                        ))
                    }
                };
            }
            "clock_scale" => {
                cfg.clock_scale = match value.parse::<f64>() {
                    Ok(s) if s > 0.0 && s <= 1.0 => s,
                    _ => {
                        return Err(format!(
                            "set clock_scale: expected a number in (0, 1], got {value:?}"
                        ))
                    }
                };
            }
            "mlp" => {
                cfg.mlp_per_warp = match value.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        return Err(format!(
                            "set mlp: expected a positive integer, got {value:?}"
                        ))
                    }
                };
            }
            other => {
                return Err(format!(
                    "set {other}: unknown config key (known keys: {SET_KEYS})"
                ))
            }
        }
    }
    Ok(cfg)
}

/// The what-if sweep for one query: the artifact's planned configs with
/// the deltas applied, deduplicated. Errors when the artifact has no
/// sweep to re-parameterize (static tables, fit-only artifacts).
fn delta_configs(
    artifact: &dyn Artifact,
    sets: &[(String, String)],
) -> Result<Vec<ExpConfig>, String> {
    let plan = artifact.plan();
    if plan.configs.is_empty() {
        return Err(format!(
            "artifact {} has no sweep plan to re-parameterize with --set",
            artifact.id()
        ));
    }
    let mut configs: Vec<ExpConfig> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for cfg in &plan.configs {
        let cfg = apply_sets(cfg, sets)?;
        if seen.insert(format!("{cfg:?}")) {
            configs.push(cfg);
        }
    }
    Ok(configs)
}

/// The [`xpd::QueryEngine`] over the artifact registry: digests queries
/// with [`query_digest`] and evaluates cold batches through one shared
/// [`Lab`].
pub struct RegistryEngine {
    registry: ArtifactRegistry,
    lab: Lab,
    suite: Vec<WorkloadSpec>,
    scale: Scale,
    validation: bool,
}

impl RegistryEngine {
    /// An engine at the given problem scale and sweep parallelism. The
    /// lab's stderr progress line is disabled: the daemon's logs must
    /// stay line-atomic, and there is no TTY to watch a progress bar.
    pub fn new(scale: Scale, threads: usize, validation: bool) -> RegistryEngine {
        let mut lab = Lab::with_threads(scale, threads);
        lab.set_progress(false);
        RegistryEngine {
            registry: ArtifactRegistry::standard(&RegistryOptions { validation }),
            lab,
            suite: default_suite(),
            scale,
            validation,
        }
    }

    fn artifact(&self, id: &str) -> Result<&dyn Artifact, String> {
        self.registry
            .get(id)
            .ok_or_else(|| format!("unknown artifact {id:?} (try `xp list`)"))
    }

    /// Renders the what-if payload for delta'd configurations: per
    /// (config × workload) EDPSE / speedup / energy ratio, with the
    /// suite mean and geomean per configuration.
    fn whatif_payload(
        &self,
        artifact: &dyn Artifact,
        sets: &[(String, String)],
        configs: &[ExpConfig],
    ) -> Result<Json, String> {
        let id = artifact.id();
        let mut o = Json::object();
        o.insert("id", id);
        o.insert("title", artifact.title());
        o.insert("kind", "whatif");
        let mut set_json = Json::object();
        let mut sorted: Vec<&(String, String)> = sets.iter().collect();
        sorted.sort();
        for (k, v) in sorted {
            set_json.insert(k.as_str(), v.as_str());
        }
        o.insert("set", set_json);
        o.insert("scale", format!("{:?}", self.scale).as_str());

        let mut rows = Json::array();
        for cfg in configs {
            let point = cfg.to_string();
            let mut edpses = Vec::with_capacity(self.suite.len());
            let mut speedups = Vec::with_capacity(self.suite.len());
            let mut ratios = Vec::with_capacity(self.suite.len());
            let mut per = Json::array();
            for w in &self.suite {
                let edpse = self.lab.edpse(w, cfg);
                let speedup = self.lab.speedup(w, cfg);
                let ratio = self.lab.energy_ratio(w, cfg);
                edpses.push(edpse);
                speedups.push(speedup);
                ratios.push(ratio);
                let mut wj = Json::object();
                wj.insert("workload", w.name);
                wj.insert("edpse_pct", edpse);
                wj.insert("speedup", speedup);
                wj.insert("energy_ratio", ratio);
                per.push(wj);
            }
            let mut cj = Json::object();
            cj.insert("config", point.as_str());
            cj.insert("gpms", cfg.gpms);
            cj.insert("per_workload", per);
            cj.insert(
                "mean_edpse_pct",
                mean_of(id, &point, &edpses).map_err(|e| e.to_string())?,
            );
            cj.insert(
                "geomean_speedup",
                geomean_of(id, &point, &speedups).map_err(|e| e.to_string())?,
            );
            cj.insert(
                "mean_energy_ratio",
                mean_of(id, &point, &ratios).map_err(|e| e.to_string())?,
            );
            rows.push(cj);
        }
        o.insert("configs", rows);
        Ok(o)
    }

    /// Evaluates one request against the (already primed) lab.
    fn evaluate_one(&self, req: &QueryRequest) -> Result<String, String> {
        let artifact = self.artifact(&req.artifact)?;
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Json, String> {
            if req.sets.is_empty() {
                artifact
                    .evaluate(&self.lab, &self.suite)
                    .map(|data| data.json)
                    .map_err(|e| e.to_string())
            } else {
                let configs = delta_configs(artifact, &req.sets)?;
                self.whatif_payload(artifact, &req.sets, &configs)
            }
        }));
        match outcome {
            Ok(result) => result.map(|json| artifact_file_bytes(&json)),
            Err(payload) => Err(format!(
                "artifact {} panicked: {}",
                req.artifact,
                runtime::cache::panic_message(payload.as_ref())
            )),
        }
    }
}

impl xpd::QueryEngine for RegistryEngine {
    fn digest(&self, req: &QueryRequest) -> Result<String, String> {
        let artifact = self.artifact(&req.artifact)?;
        // Validate deltas at digest time so a bad `--set` fails fast,
        // before anything is enqueued.
        if !req.sets.is_empty() {
            delta_configs(artifact, &req.sets)?;
        }
        Ok(query_digest(
            artifact.id(),
            &req.sets,
            &artifact.plan(),
            self.scale,
            self.validation,
        ))
    }

    fn evaluate(&self, reqs: &[QueryRequest]) -> Vec<Result<String, String>> {
        let _span = trace::span("xp.query.batch");
        // Union every request's sweep into one executor prime — the
        // batching win: shared points across queries simulate once.
        let mut needs_fit = false;
        let mut configs: Vec<ExpConfig> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for req in reqs {
            let Ok(artifact) = self.artifact(&req.artifact) else {
                continue; // surfaced per-request by evaluate_one
            };
            let plan = artifact.plan();
            needs_fit |= plan.needs_fit;
            let planned = if req.sets.is_empty() {
                plan.configs
            } else {
                delta_configs(artifact, &req.sets).unwrap_or_default()
            };
            for cfg in planned {
                if seen.insert(format!("{cfg:?}")) {
                    configs.push(cfg);
                }
            }
        }
        if needs_fit {
            let _ = validation::fit_model_cached(self.scale);
        }
        if !configs.is_empty() {
            let mut points = Vec::with_capacity(self.suite.len() * (configs.len() + 1));
            for w in &self.suite {
                points.push((w.clone(), ExpConfig::baseline()));
                for cfg in &configs {
                    points.push((w.clone(), cfg.clone()));
                }
            }
            let _ = self.lab.prime(&points);
        }
        reqs.iter().map(|req| self.evaluate_one(req)).collect()
    }

    fn describe(&self) -> Json {
        let mut o = Json::object();
        let mut ids = Json::array();
        for id in self.registry.ids() {
            ids.push(id);
        }
        o.insert("artifacts", ids);
        o.insert("scale", format!("{:?}", self.scale).as_str());
        o.insert("validation", self.validation);
        o.insert("threads", self.lab.threads());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpd::QueryEngine as _;

    #[test]
    fn query_digest_separates_artifacts_with_identical_plans() {
        let plan = SweepPlan::sweep(vec![ExpConfig::baseline()]);
        let a = query_digest("fig7", &[], &plan, Scale::Smoke, true);
        let b = query_digest("fig8", &[], &plan, Scale::Smoke, true);
        assert_ne!(a, b, "store keys must be artifact-qualified");
    }

    #[test]
    fn query_digest_normalizes_set_order_and_tracks_values() {
        let plan = SweepPlan::sweep(vec![ExpConfig::baseline()]);
        let ab = vec![
            ("bw".to_string(), "4x".to_string()),
            ("gpms".to_string(), "16".to_string()),
        ];
        let ba: Vec<(String, String)> = ab.iter().rev().cloned().collect();
        assert_eq!(
            query_digest("fig6", &ab, &plan, Scale::Smoke, true),
            query_digest("fig6", &ba, &plan, Scale::Smoke, true)
        );
        let other = vec![("bw".to_string(), "2x".to_string())];
        assert_ne!(
            query_digest("fig6", &ab, &plan, Scale::Smoke, true),
            query_digest("fig6", &other, &plan, Scale::Smoke, true)
        );
        // The artifact digest is embedded: scale changes the key.
        assert_ne!(
            query_digest("fig6", &ab, &plan, Scale::Smoke, true),
            query_digest("fig6", &ab, &plan, Scale::Full, true)
        );
    }

    #[test]
    fn apply_sets_maps_knobs_and_rejects_garbage() {
        let base = ExpConfig::paper_default(4, BwSetting::X2);
        let sets = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        let cfg = apply_sets(&base, &sets(&[("gpms", "16"), ("bw", "4x")])).unwrap();
        assert_eq!(cfg.gpms, 16);
        assert_eq!(cfg.bw, BwSetting::X4);
        assert_eq!(cfg.domain, IntegrationDomain::OnPackage);
        // 1x re-derives the on-board pairing.
        let cfg = apply_sets(&base, &sets(&[("bw", "1x")])).unwrap();
        assert_eq!(cfg.domain, IntegrationDomain::OnBoard);
        let cfg = apply_sets(
            &base,
            &sets(&[
                ("topology", "switch"),
                ("link_energy_mult", "2.5"),
                ("link_compression", "1.5"),
                ("clock_scale", "0.8"),
                ("mlp", "8"),
            ]),
        )
        .unwrap();
        assert_eq!(cfg.topology, Topology::Switch);
        assert_eq!(cfg.link_energy_mult, 2.5);
        assert_eq!(cfg.link_compression, 1.5);
        assert_eq!(cfg.clock_scale, 0.8);
        assert_eq!(cfg.mlp_per_warp, Some(8));

        for bad in [
            ("gpms", "0"),
            ("gpms", "four"),
            ("bw", "8x"),
            ("topology", "torus"),
            ("link_energy_mult", "-1"),
            ("link_compression", "0.5"),
            ("clock_scale", "1.5"),
            ("clock_scale", "0"),
            ("mlp", "0"),
            ("frobnicate", "1"),
        ] {
            assert!(
                apply_sets(&base, &sets(&[bad])).is_err(),
                "expected rejection: {bad:?}"
            );
        }
    }

    #[test]
    fn artifact_file_bytes_match_the_run_driver() {
        // `xp run --out` writes format!("{}\n", json.render_pretty());
        // the daemon payload must be those exact bytes.
        let mut j = Json::object();
        j.insert("id", "fig2");
        assert_eq!(artifact_file_bytes(&j), format!("{}\n", j.render_pretty()));
        assert!(artifact_file_bytes(&j).ends_with("}\n\n"));
    }

    #[test]
    fn engine_digests_validate_requests() {
        let engine = RegistryEngine::new(Scale::Smoke, 1, false);
        let err = engine
            .digest(&QueryRequest::query("no_such_artifact"))
            .unwrap_err();
        assert!(err.contains("unknown artifact"));
        let err = engine
            .digest(&QueryRequest::query("fig2").with_set("bw", "9x"))
            .unwrap_err();
        assert!(err.contains("set bw"));
        let d = engine.digest(&QueryRequest::query("fig2")).unwrap();
        assert!(common::digest::is_hex_digest(&d));
        // Stable across engine instances (store keys survive restarts).
        let again = RegistryEngine::new(Scale::Smoke, 1, false);
        assert_eq!(d, again.digest(&QueryRequest::query("fig2")).unwrap());
    }

    #[test]
    fn describe_lists_artifacts() {
        let engine = RegistryEngine::new(Scale::Smoke, 1, false);
        let d = engine.describe();
        let ids = d.get("artifacts").and_then(Json::as_array).unwrap();
        assert!(!ids.is_empty());
        assert_eq!(d.get("scale").and_then(Json::as_str), Some("Smoke"));
    }
}
