//! Ablations of the design choices the paper (and the prior work it
//! builds on) bakes into the multi-module GPU: locality-aware CTA
//! scheduling, first-touch page placement, module-side L2 caching, and
//! warp-level memory parallelism.
//!
//! Each study compares the adopted design against its naive alternative
//! on the same workloads and reports speedup and EDPSE deltas — the
//! quantified version of DESIGN.md's "modelling notes".

use crate::artifact::{mean_of, ArtifactError};
use crate::configs::ExpConfig;
use crate::lab::Lab;
use common::json::Json;
use common::table::TextTable;
use sim::{BwSetting, CtaSchedule, L2Mode, PagePolicy, WarpScheduler};
use workloads::WorkloadSpec;

/// One ablation row: the same configuration with one design knob flipped.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Knob label ("CTA schedule", ...).
    pub knob: &'static str,
    /// Variant label ("contiguous", "round-robin", ...).
    pub variant: String,
    /// GPM count of the comparison.
    pub gpms: usize,
    /// Mean speedup over the 1-GPM baseline.
    pub speedup: f64,
    /// Mean EDPSE in percent.
    pub edpse: f64,
    /// Mean energy normalized to the 1-GPM baseline.
    pub energy: f64,
}

/// The full ablation study.
#[derive(Debug, Clone)]
pub struct AblationStudy {
    /// All rows, grouped by knob.
    pub rows: Vec<AblationRow>,
}

/// Every `(knob, variant, config)` triple the study compares at `gpms`
/// modules, 2x-BW on-package.
fn variants(gpms: usize) -> Vec<(&'static str, String, ExpConfig)> {
    let base = ExpConfig::paper_default(gpms, BwSetting::X2);
    let mut variants: Vec<(&'static str, String, ExpConfig)> = Vec::new();

    // CTA scheduling: locality-aware contiguous vs naive round-robin.
    for s in [CtaSchedule::Contiguous, CtaSchedule::RoundRobin] {
        variants.push((
            "CTA schedule",
            s.to_string(),
            base.clone().with_cta_schedule(s),
        ));
    }

    // Page placement: first-touch vs static interleaving.
    for p in [PagePolicy::FirstTouch, PagePolicy::Interleaved] {
        variants.push((
            "page placement",
            p.to_string(),
            base.clone().with_page_policy(p),
        ));
    }

    // L2 organization: module-side vs memory-side.
    for m in [L2Mode::ModuleSide, L2Mode::MemorySide] {
        variants.push((
            "L2 organization",
            m.to_string(),
            base.clone().with_l2_mode(m),
        ));
    }

    // Warp scheduling policy (should be near-neutral — the paper's
    // §II abstraction argument).
    for ws in [
        WarpScheduler::LooseRoundRobin,
        WarpScheduler::GreedyThenOldest,
    ] {
        variants.push((
            "warp scheduler",
            ws.to_string(),
            base.clone().with_warp_scheduler(ws),
        ));
    }

    // Warp memory-level parallelism.
    for mlp in [1usize, 2, 4, 8] {
        variants.push((
            "MLP per warp",
            format!("{mlp} outstanding"),
            base.clone().with_mlp(mlp),
        ));
    }

    variants
}

impl AblationStudy {
    /// The sweep plan at `gpms` modules (shared by `run` and the artifact
    /// registry).
    pub fn plan_configs(gpms: usize) -> Vec<ExpConfig> {
        variants(gpms).into_iter().map(|(_, _, c)| c).collect()
    }

    /// Runs every ablation at `gpms` modules, 2x-BW on-package.
    pub fn run(lab: &Lab, suite: &[WorkloadSpec], gpms: usize) -> Result<Self, ArtifactError> {
        let variants = variants(gpms);
        let cfgs: Vec<ExpConfig> = variants.iter().map(|(_, _, c)| c.clone()).collect();
        lab.prime_suite(suite, &cfgs)
            .map_err(|e| ArtifactError::from_sweep("ablation", e))?;

        let rows = variants
            .into_iter()
            .map(|(knob, variant, cfg)| {
                let point = format!("{knob} {variant} @ {gpms}-GPM");
                let speedups: Vec<f64> = suite.iter().map(|w| lab.speedup(w, &cfg)).collect();
                let edpses: Vec<f64> = suite.iter().map(|w| lab.edpse(w, &cfg)).collect();
                let energies: Vec<f64> = suite.iter().map(|w| lab.energy_ratio(w, &cfg)).collect();
                Ok(AblationRow {
                    knob,
                    variant,
                    gpms,
                    speedup: mean_of("ablation", &point, &speedups)?,
                    edpse: mean_of("ablation", &point, &edpses)?,
                    energy: mean_of("ablation", &point, &energies)?,
                })
            })
            .collect::<Result<_, ArtifactError>>()?;

        Ok(AblationStudy { rows })
    }

    /// The row for a `(knob, variant)` pair, if present.
    pub fn get(&self, knob: &str, variant: &str) -> Option<&AblationRow> {
        self.rows
            .iter()
            .find(|r| r.knob == knob && r.variant == variant)
    }

    /// Renders the study as a table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["design knob", "variant", "speedup", "energy", "EDPSE (%)"]);
        for r in &self.rows {
            t.row([
                r.knob.to_string(),
                r.variant.clone(),
                format!("{:.2}", r.speedup),
                format!("{:.2}", r.energy),
                format!("{:.1}", r.edpse),
            ]);
        }
        t
    }

    /// The JSON payload: one object per `(knob, variant)` row.
    pub fn to_json(&self) -> Json {
        let mut rows = Json::array();
        for r in &self.rows {
            let mut o = Json::object();
            o.insert("knob", r.knob);
            o.insert("variant", r.variant.as_str());
            o.insert("gpms", r.gpms);
            o.insert("speedup", r.speedup);
            o.insert("energy_ratio", r.energy);
            o.insert("edpse_pct", r.edpse);
            rows.push(o);
        }
        let mut o = Json::object();
        o.insert("rows", rows);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{by_name, Scale};

    fn mini_suite() -> Vec<WorkloadSpec> {
        ["Stream", "Hotspot"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn ablation_produces_all_rows() {
        let lab = Lab::new(Scale::Smoke);
        let study = AblationStudy::run(&lab, &mini_suite(), 8).unwrap();
        assert_eq!(study.rows.len(), 2 + 2 + 2 + 2 + 4);
        assert!(study.render().render().contains("round-robin"));
    }

    #[test]
    fn first_touch_beats_interleaving_for_private_streams() {
        let lab = Lab::new(Scale::Smoke);
        let suite = vec![by_name("Stream").unwrap()];
        let study = AblationStudy::run(&lab, &suite, 8).unwrap();
        let ft = study.get("page placement", "first-touch").unwrap();
        let il = study.get("page placement", "interleaved").unwrap();
        assert!(
            ft.speedup >= il.speedup,
            "first-touch {:.2} should be at least interleaved {:.2}",
            ft.speedup,
            il.speedup
        );
    }

    #[test]
    fn mlp_monotonically_helps_memory_bound_work() {
        let lab = Lab::new(Scale::Smoke);
        let suite = vec![by_name("Stream").unwrap()];
        let study = AblationStudy::run(&lab, &suite, 8).unwrap();
        let one = study.get("MLP per warp", "1 outstanding").unwrap();
        let eight = study.get("MLP per warp", "8 outstanding").unwrap();
        assert!(
            eight.speedup >= one.speedup,
            "mlp8 {:.2} vs mlp1 {:.2}",
            eight.speedup,
            one.speedup
        );
    }
}
