#![deny(missing_docs)]

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Every experiment is an [`artifact::Artifact`] registered in the
//! [`registry::ArtifactRegistry`] and addressable through the single `xp`
//! driver binary (`cargo run --release -p xp --bin xp -- list`). Each
//! artifact declares its (workload × configuration) sweep as data, runs
//! through the `sim` + `gpujoule` stack via a shared [`lab::Lab`] cache,
//! and renders both the historical text tables and a structured JSON
//! payload. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured comparisons.

pub mod ablation;
pub mod artifact;
pub mod bench;
pub mod cli;
pub mod configs;
pub mod extensions;
pub mod figures;
pub mod lab;
pub mod query;
pub mod registry;
pub mod report;
pub mod validation;

pub use ablation::AblationStudy;
pub use artifact::{Artifact, ArtifactData, ArtifactError, ArtifactErrorKind, SweepPlan};
pub use configs::{ExpConfig, GPM_COUNTS, SCALED_GPM_COUNTS};
pub use extensions::{CompressionStudy, DvfsStudy, GatingStudy, MetricWeightStudy};
pub use figures::{default_suite, Fig10, Fig2, Fig6, Fig7, Fig8, Fig9, Headline, PointStudies};
pub use lab::{Lab, RunPoint};
pub use query::{apply_sets, artifact_digest, config_digest, query_digest, RegistryEngine};
pub use registry::{ArtifactRegistry, RegistryOptions};
pub use report::{evaluate_scaling_claims, evaluate_validation_claims, render_claims, Claim};

/// Parses the common `--smoke` flag used by the experiment binaries.
pub fn scale_from_args() -> workloads::Scale {
    if std::env::args().any(|a| a == "--smoke") {
        workloads::Scale::Smoke
    } else {
        workloads::Scale::Full
    }
}

/// Resolves the sweep worker-thread count for the experiment binaries:
/// `--threads N` (or `--threads=N`) beats the `MMGPU_THREADS` environment
/// variable, which beats the machine's available parallelism.
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    let mut requested = None;
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            requested = args.next().and_then(|v| v.parse().ok());
            if requested.is_none() {
                eprintln!("warning: --threads expects a positive integer");
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            requested = v.parse().ok();
            if requested.is_none() {
                eprintln!("warning: --threads expects a positive integer, got {v:?}");
            }
        }
    }
    runtime::resolve_threads(requested)
}

/// A [`Lab`] configured from the common CLI flags: `--smoke` for the
/// problem scale, `--threads N` / `MMGPU_THREADS` for sweep parallelism.
pub fn lab_from_args() -> Lab {
    Lab::with_threads(scale_from_args(), threads_from_args())
}
