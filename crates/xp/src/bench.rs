//! `xp bench`: the simulator hot-path benchmark suite.
//!
//! Times [`sim::GpuSim::run_kernel`] on representative compute-, memory-,
//! and NoC-bound workloads at 1, 8, and 32 GPMs — each under the
//! event-driven loop, the naive per-cycle loop, and the sharded parallel
//! engine — and writes the results as a machine-readable
//! `BENCH_sim.json`: wall time per run, simulated cycles per second, the
//! event-vs-naive speedup, and the parallel-vs-event speedup.
//!
//! Before any timing, every scenario is run once in all three modes and
//! the simulated cycle counts are asserted equal: the bench doubles as a
//! cheap determinism smoke for the parallel engine (DESIGN.md §17).
//!
//! Regression gating is two-tiered, both against a recorded baseline
//! file (the committed `BENCH_sim.json` at the repository root):
//!
//! * **Speedup ratios** — how much the event-driven loop beats the naive
//!   loop on the same host. Raw seconds vary wildly across CI machines,
//!   but this ratio is stable. A scenario whose speedup falls more than
//!   10% below the baseline prints a warning; more than 25% fails.
//! * **Machine-calibrated absolute throughput** — simulated cycles per
//!   second. A direct comparison would gate the CI machine, not the
//!   code, so local numbers are first divided by a calibration factor:
//!   the median, across scenarios, of local naive cycles/sec over
//!   baseline naive cycles/sec. The naive loop is the stable yardstick —
//!   same code shape on both sides — so the factor captures how fast
//!   *this host* is relative to the host that recorded the baseline, and
//!   the calibrated event-loop throughput is then held to the same
//!   warn/fail drops. This is the gate that catches "everything got
//!   uniformly slower", which a pure ratio can never see.
//!
//! `--baseline-update` re-measures and rewrites the baseline file. The
//! recorded numbers are a *lower envelope* — the throughput floor the
//! repo has demonstrated — so the update refuses to overwrite a
//! scenario with lower numbers unless `--allow-regress` is given
//! (intended flow: regressions are either fixed, or consciously
//! accepted with the flag and explained in the commit).

use common::json::Json;
use common::{CtaId, WarpId};
use isa::{GridShape, KernelProgram, MemRef, Opcode, WarpInstr, WarpInstrStream};
use sim::{EngineMode, GpuConfig, GpuSim};
use std::path::PathBuf;
use std::time::Duration;

/// Options for `xp bench` (parsed by the CLI).
#[derive(Debug, Default)]
pub struct BenchOptions {
    /// Where to write the JSON report (default `BENCH_sim.json`).
    pub out: Option<PathBuf>,
    /// Recorded baseline to gate against (no baseline, no gate).
    pub baseline: Option<PathBuf>,
    /// Shorter measurement budgets (CI).
    pub quick: bool,
    /// Only run scenarios whose name contains this substring.
    pub filter: Option<String>,
    /// Rewrite the baseline file with the freshly measured numbers
    /// (refusing to lower the recorded envelope unless `allow_regress`).
    pub baseline_update: bool,
    /// With `baseline_update`: permit writing numbers below the
    /// recorded envelope.
    pub allow_regress: bool,
    /// Worker-thread budget for the parallel engine (`None` = the
    /// simulator default: `MMGPU_SIM_THREADS` or the host parallelism).
    pub threads: Option<usize>,
}

/// Speedup-ratio drop (vs baseline) that prints a warning.
const WARN_DROP: f64 = 0.10;
/// Speedup-ratio drop (vs baseline) that fails the run.
const FAIL_DROP: f64 = 0.25;
/// Baseline speedups below this are measurement noise around parity
/// (nothing for fast-forward to skip), so they are reported but not
/// gated — compute-bound kernels sit here by design.
const GATE_MIN_SPEEDUP: f64 = 1.5;
/// Parallel-vs-event speedups below this in the *baseline* disable the
/// parallel gate for that scenario: a single-core recording host
/// measures barrier overhead, not scaling, and its ~1x (or worse)
/// numbers must never gate a multi-core CI machine. The gate arms
/// itself only once a committed baseline demonstrates real speedup.
const GATE_MIN_PAR_SPEEDUP: f64 = 1.2;

/// The workload flavor a scenario stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// FMA-dense, latency-bound: little for fast-forward to skip.
    Compute,
    /// Streaming loads saturating DRAM: the fast-forward sweet spot.
    Memory,
    /// Remote reads crossing the inter-GPM network.
    Noc,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Compute => "compute",
            Kind::Memory => "memory",
            Kind::Noc => "noc",
        }
    }
}

/// FMA-dense kernel (compute-bound).
struct ComputeBound {
    ctas: u32,
    warps: u32,
    len: u32,
}

impl KernelProgram for ComputeBound {
    fn name(&self) -> &str {
        "bench-compute"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps)
    }
    fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
        Box::new((0..self.len).map(|_| WarpInstr::Compute(Opcode::FFma32)))
    }
    fn uniform_warp_program(&self) -> Option<Vec<WarpInstr>> {
        // Every warp runs the identical FMA sequence; let the engine
        // decode it once instead of once per warp.
        Some(vec![WarpInstr::Compute(Opcode::FFma32); self.len as usize])
    }
}

/// Private-stream kernel (memory-bound: every warp stalls on DRAM).
struct MemoryBound {
    ctas: u32,
    warps: u32,
    lines_per_warp: u32,
}

impl KernelProgram for MemoryBound {
    fn name(&self) -> &str {
        "bench-memory"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps)
    }
    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let wpc = self.warps as u64;
        let stride = self.lines_per_warp as u64 * 128;
        let base = (cta.0 as u64 * wpc + warp.0 as u64) * stride;
        Box::new(
            (0..self.lines_per_warp as u64)
                .map(move |i| WarpInstr::Mem(MemRef::global_load(base + i * 128))),
        )
    }
    fn data_regions(&self) -> Vec<(u64, u64)> {
        // Declared so prefault places pages per CTA ownership in O(pages)
        // instead of walking the whole trace inside the timed loop.
        let total = self.ctas as u64 * self.warps as u64 * self.lines_per_warp as u64 * 128;
        vec![(0, total)]
    }
}

/// Shared-region scatter reads (NoC-bound: pages are spread across the
/// modules by the prefault pass, so most accesses are remote).
struct NocBound {
    ctas: u32,
    warps: u32,
    loads_per_warp: u32,
    region_lines: u64,
}

impl KernelProgram for NocBound {
    fn name(&self) -> &str {
        "bench-noc"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps)
    }
    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let seed = cta.0 as u64 * self.warps as u64 + warp.0 as u64;
        let lines = self.region_lines;
        Box::new((0..self.loads_per_warp as u64).map(move |i| {
            let line = (seed.wrapping_mul(97) + i.wrapping_mul(131)) % lines;
            WarpInstr::Mem(MemRef::global_load(line * 128))
        }))
    }
    fn data_regions(&self) -> Vec<(u64, u64)> {
        vec![(0, self.region_lines * 128)]
    }
}

/// One (workload, GPM count) point of the suite.
struct Scenario {
    name: String,
    kind: Kind,
    gpms: usize,
}

impl Scenario {
    fn program(&self) -> Box<dyn KernelProgram> {
        let g = self.gpms as u32;
        match self.kind {
            Kind::Compute => Box::new(ComputeBound {
                ctas: g * 16,
                warps: 8,
                len: 96,
            }),
            Kind::Memory => Box::new(MemoryBound {
                ctas: g * 32,
                warps: 8,
                lines_per_warp: 8,
            }),
            Kind::Noc => Box::new(NocBound {
                ctas: g * 16,
                warps: 4,
                loads_per_warp: 32,
                region_lines: 8192,
            }),
        }
    }

    /// Paper-class modules (16 SMs per GPM sharing one HBM stack): the
    /// regime where bandwidth-bound kernels leave most SMs stalled —
    /// exactly what the §V sweeps simulate and what fast-forward exists
    /// to accelerate.
    fn config(&self) -> GpuConfig {
        let mut cfg = GpuConfig::paper(self.gpms, sim::BwSetting::X2, sim::Topology::Ring);
        if self.kind == Kind::Memory {
            // The paper's premise (§I) is that bandwidth scales slower
            // than compute: starve DRAM 4x so the suite includes the
            // deeply bandwidth-bound regime where nearly every SM sleeps
            // between DRAM drains — the state the §V sweeps live in.
            cfg.gpm.dram_bw = cfg.gpm.dram_bw * 0.25;
        }
        cfg
    }

    /// One full simulator run (fresh machine, prefault, one kernel);
    /// returns the simulated cycle count so the caller can report
    /// cycles-per-second.
    fn run(&self, mode: EngineMode) -> u64 {
        self.run_with(mode, None)
    }

    /// Like [`Scenario::run`], with an explicit worker-thread budget for
    /// the parallel engine (ignored by the serial modes).
    fn run_with(&self, mode: EngineMode, threads: Option<usize>) -> u64 {
        let cfg = self.config();
        let mut sim = GpuSim::with_mode(&cfg, mode);
        sim.set_sim_threads(threads);
        let program = self.program();
        if self.kind != Kind::Compute {
            sim.prefault(program.as_ref());
        }
        sim.run_kernel(program.as_ref()).cycles
    }
}

/// The full suite: compute/memory/noc × 1/8/32 GPMs.
fn suite() -> Vec<Scenario> {
    let mut s = Vec::new();
    for kind in [Kind::Compute, Kind::Memory, Kind::Noc] {
        for gpms in [1usize, 8, 32] {
            s.push(Scenario {
                name: format!("{}/{}gpm", kind.as_str(), gpms),
                kind,
                gpms,
            });
        }
    }
    s
}

/// One timed side (event-driven or naive) of a scenario.
struct Timing {
    iters: u64,
    total_secs: f64,
    mean_secs: f64,
    cycles_per_sec: f64,
}

fn time_mode(
    s: &Scenario,
    mode: EngineMode,
    threads: Option<usize>,
    warm: Duration,
    budget: Duration,
    cycles: u64,
) -> Timing {
    let m = criterion::measure(warm, budget, || {
        criterion::black_box(s.run_with(mode, threads))
    });
    Timing {
        iters: m.iters,
        total_secs: m.total_secs,
        mean_secs: m.mean_secs,
        cycles_per_sec: cycles as f64 / m.mean_secs,
    }
}

fn timing_json(t: &Timing) -> Json {
    let mut j = Json::object();
    j.insert("iters", t.iters);
    j.insert("total_secs", t.total_secs);
    j.insert("mean_secs", t.mean_secs);
    j.insert("cycles_per_sec", t.cycles_per_sec);
    j
}

fn format_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// One scenario of a recorded `BENCH_sim.json` baseline.
#[derive(Debug, Clone, PartialEq)]
struct BaselineEntry {
    name: String,
    speedup: f64,
    /// Parallel-vs-event speedup, when the baseline records it (older
    /// files predate the parallel engine).
    par_speedup: Option<f64>,
    /// Absolute event-loop throughput, when the baseline records it
    /// (older files may predate the field).
    event_cps: Option<f64>,
    /// Absolute naive-loop throughput (the machine-calibration
    /// yardstick), when recorded.
    naive_cps: Option<f64>,
}

/// Baseline entries by scenario name, from a prior `BENCH_sim.json`.
fn load_baseline(path: &std::path::Path) -> Result<Vec<BaselineEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("xp bench: cannot read baseline {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| {
        format!(
            "xp bench: baseline {} is not valid JSON: {e}",
            path.display()
        )
    })?;
    let scenarios = json
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or_else(|| {
            format!(
                "xp bench: baseline {} has no `scenarios` array",
                path.display()
            )
        })?;
    let mut out = Vec::new();
    for s in scenarios {
        let (Some(name), Some(speedup)) = (
            s.get("name").and_then(Json::as_str),
            s.get("speedup").and_then(Json::as_f64),
        ) else {
            return Err(format!(
                "xp bench: baseline {}: scenario missing name/speedup",
                path.display()
            ));
        };
        let cps = |side: &str| {
            s.get(side)
                .and_then(|t| t.get("cycles_per_sec"))
                .and_then(Json::as_f64)
        };
        out.push(BaselineEntry {
            name: name.to_string(),
            speedup,
            par_speedup: s.get("par_speedup").and_then(Json::as_f64),
            event_cps: cps("event"),
            naive_cps: cps("naive"),
        });
    }
    Ok(out)
}

/// The host-speed calibration factor: median over scenarios of local
/// naive throughput divided by baseline naive throughput. `None` when
/// no scenario has both sides (an old baseline without absolute
/// numbers, or disjoint scenario sets).
fn calibration_factor(baseline: &[BaselineEntry], measured: &[Measured]) -> Option<f64> {
    let mut ratios: Vec<f64> = measured
        .iter()
        .filter_map(|m| {
            let base = baseline.iter().find(|b| b.name == m.name)?;
            let b_naive = base.naive_cps?;
            (b_naive > 0.0).then_some(m.naive_cps / b_naive)
        })
        .collect();
    if ratios.is_empty() {
        return None;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    Some(ratios[ratios.len() / 2])
}

/// Scenario names whose measured event throughput falls below the
/// recorded envelope (what `--baseline-update` refuses to overwrite
/// without `--allow-regress`).
fn envelope_regressions(baseline: &[BaselineEntry], measured: &[Measured]) -> Vec<String> {
    measured
        .iter()
        .filter(|m| {
            baseline
                .iter()
                .find(|b| b.name == m.name)
                .and_then(|b| b.event_cps)
                .is_some_and(|floor| m.event_cps < floor)
        })
        .map(|m| m.name.clone())
        .collect()
}

/// The measured numbers for one scenario, kept for post-table gating.
struct Measured {
    name: String,
    event_cps: f64,
    naive_cps: f64,
    par_speedup: f64,
}

/// Entry point for `xp bench`. Returns the process exit code: 0 on
/// success (warnings allowed), 1 on a hard regression or IO failure.
pub fn run(opts: &BenchOptions) -> i32 {
    let (warm, budget) = if opts.quick {
        (Duration::from_millis(30), Duration::from_millis(200))
    } else {
        (Duration::from_millis(100), Duration::from_millis(600))
    };

    let baseline = match &opts.baseline {
        Some(path) => match load_baseline(path) {
            Ok(b) => Some(b),
            Err(msg) => {
                eprintln!("{msg}");
                return 1;
            }
        },
        None => None,
    };

    let scenarios: Vec<Scenario> = suite()
        .into_iter()
        .filter(|s| match &opts.filter {
            Some(pat) => s.name.contains(pat.as_str()),
            None => true,
        })
        .collect();
    if scenarios.is_empty() {
        eprintln!(
            "xp bench: no scenario matches filter {:?}",
            opts.filter.as_deref().unwrap_or("")
        );
        return 1;
    }

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>9} {:>7} {:>12}  vs baseline",
        "scenario", "event", "naive", "parallel", "speedup", "par", "Mcycles/s"
    );
    let mut rows = Json::array();
    let mut measured = Vec::new();
    let mut warnings = 0usize;
    let mut failures = 0usize;
    for s in &scenarios {
        // Correctness first: all three engines must simulate the same
        // cycles (the parallel engine's determinism contract makes this
        // bit-exact, not approximate).
        let cycles = s.run(EngineMode::EventDriven);
        let naive_cycles = s.run(EngineMode::Naive);
        assert_eq!(
            cycles, naive_cycles,
            "{}: event-driven and naive loops disagree on simulated cycles",
            s.name
        );
        let par_cycles = s.run_with(EngineMode::Parallel, opts.threads);
        assert_eq!(
            cycles, par_cycles,
            "{}: parallel engine disagrees with the event-driven loop on simulated cycles",
            s.name
        );

        let event = time_mode(s, EngineMode::EventDriven, None, warm, budget, cycles);
        let naive = time_mode(s, EngineMode::Naive, None, warm, budget, cycles);
        let par = time_mode(s, EngineMode::Parallel, opts.threads, warm, budget, cycles);
        let speedup = naive.mean_secs / event.mean_secs;
        let par_speedup = event.mean_secs / par.mean_secs;

        let verdict = match baseline
            .as_ref()
            .and_then(|b| b.iter().find(|e| e.name == s.name))
        {
            Some(entry) if entry.speedup >= GATE_MIN_SPEEDUP => {
                let base = entry.speedup;
                let drop = 1.0 - speedup / base;
                if drop > FAIL_DROP {
                    failures += 1;
                    format!("FAIL ({speedup:.2}x vs {base:.2}x, -{:.0}%)", drop * 100.0)
                } else if drop > WARN_DROP {
                    warnings += 1;
                    format!("warn ({speedup:.2}x vs {base:.2}x, -{:.0}%)", drop * 100.0)
                } else {
                    format!("ok ({base:.2}x recorded)")
                }
            }
            Some(entry) => format!("parity ({:.2}x recorded; not gated)", entry.speedup),
            None if baseline.is_some() => "not in baseline".to_string(),
            None => "-".to_string(),
        };

        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>8.2}x {:>6.2}x {:>12.1}  {verdict}",
            s.name,
            format_secs(event.mean_secs),
            format_secs(naive.mean_secs),
            format_secs(par.mean_secs),
            speedup,
            par_speedup,
            event.cycles_per_sec / 1e6,
        );

        let mut row = Json::object();
        row.insert("name", s.name.as_str());
        row.insert("kind", s.kind.as_str());
        row.insert("gpms", s.gpms);
        row.insert("cycles", cycles);
        row.insert("event", timing_json(&event));
        row.insert("naive", timing_json(&naive));
        row.insert("parallel", timing_json(&par));
        row.insert("speedup", speedup);
        row.insert("par_speedup", par_speedup);
        rows.push(row);
        measured.push(Measured {
            name: s.name.clone(),
            event_cps: event.cycles_per_sec,
            naive_cps: naive.cycles_per_sec,
            par_speedup,
        });
    }

    // Parallel-engine scaling gate: armed per scenario only when the
    // committed baseline itself demonstrates a real multi-thread
    // speedup (recorded on a multi-core host). A baseline recorded on a
    // single-core machine stores ~1x parallel speedups, which leaves
    // this gate disarmed rather than punishing faster hosts — the
    // machine-independence rule the speedup-ratio gate already follows.
    if let Some(b) = &baseline {
        for m in &measured {
            let Some(base_par) = b
                .iter()
                .find(|e| e.name == m.name)
                .and_then(|e| e.par_speedup)
            else {
                continue;
            };
            if base_par < GATE_MIN_PAR_SPEEDUP {
                continue;
            }
            let drop = 1.0 - m.par_speedup / base_par;
            if drop > FAIL_DROP {
                failures += 1;
                println!(
                    "{:<16} FAIL parallel: {:.2}x vs {base_par:.2}x recorded (-{:.0}%)",
                    m.name,
                    m.par_speedup,
                    drop * 100.0
                );
            } else if drop > WARN_DROP {
                warnings += 1;
                println!(
                    "{:<16} warn parallel: {:.2}x vs {base_par:.2}x recorded (-{:.0}%)",
                    m.name,
                    m.par_speedup,
                    drop * 100.0
                );
            }
        }
    }

    // Machine-calibrated absolute throughput gate: normalize this
    // host's event-loop throughput by how its naive loop compares to
    // the baseline host's, then hold it to the same drop thresholds.
    if let Some(b) = &baseline {
        if let Some(calib) = calibration_factor(b, &measured) {
            println!("host calibration: {calib:.2}x the baseline machine (naive-loop median)");
            for m in &measured {
                let Some(base_cps) = b
                    .iter()
                    .find(|e| e.name == m.name)
                    .and_then(|e| e.event_cps)
                else {
                    continue;
                };
                let calibrated = m.event_cps / calib;
                let drop = 1.0 - calibrated / base_cps;
                if drop > FAIL_DROP {
                    failures += 1;
                    println!(
                        "{:<16} FAIL absolute: {:.0} calibrated cycles/s vs {:.0} recorded (-{:.0}%)",
                        m.name,
                        calibrated,
                        base_cps,
                        drop * 100.0
                    );
                } else if drop > WARN_DROP {
                    warnings += 1;
                    println!(
                        "{:<16} warn absolute: {:.0} calibrated cycles/s vs {:.0} recorded (-{:.0}%)",
                        m.name,
                        calibrated,
                        base_cps,
                        drop * 100.0
                    );
                }
            }
        } else {
            println!("host calibration unavailable (baseline lacks absolute throughput)");
        }
    }

    let mut report = Json::object();
    report.insert("schema_version", 1usize);
    report.insert("suite", "sim_hotpath");
    report.insert("quick", opts.quick);
    report.insert("warn_drop", WARN_DROP);
    report.insert("fail_drop", FAIL_DROP);
    report.insert("gate_min_speedup", GATE_MIN_SPEEDUP);
    report.insert("gate_min_par_speedup", GATE_MIN_PAR_SPEEDUP);
    match opts.threads {
        Some(t) => report.insert("sim_threads", t),
        None => report.insert("sim_threads", "auto"),
    };
    report.insert("scenarios", rows);

    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_sim.json"));
    if opts.baseline_update {
        // The recorded baseline is a lower envelope: refuse to replace
        // it with worse numbers unless the regression is explicitly
        // accepted.
        // A missing or unreadable existing report means there is no envelope
        // to protect.
        let envelope = load_baseline(&out).unwrap_or_default();
        let regressed = envelope_regressions(&envelope, &measured);
        if !regressed.is_empty() && !opts.allow_regress {
            eprintln!(
                "xp bench: refusing to lower the recorded envelope in {} for: {} \
                 (pass --allow-regress to accept the regression)",
                out.display(),
                regressed.join(", ")
            );
            return 1;
        }
        if !regressed.is_empty() {
            eprintln!(
                "xp bench: --allow-regress: lowering the envelope for {}",
                regressed.join(", ")
            );
        }
    }
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("xp bench: cannot create {}: {e}", dir.display());
            return 1;
        }
    }
    if let Err(e) = std::fs::write(&out, format!("{}\n", report.render_pretty())) {
        eprintln!("xp bench: cannot write {}: {e}", out.display());
        return 1;
    }
    eprintln!("wrote {}", out.display());

    if failures > 0 {
        eprintln!(
            "xp bench: {failures} scenario(s) regressed more than {:.0}% vs baseline",
            FAIL_DROP * 100.0
        );
        return 1;
    }
    if warnings > 0 {
        eprintln!(
            "xp bench: {warnings} scenario(s) slipped more than {:.0}% vs baseline (soft warning)",
            WARN_DROP * 100.0
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_three_kinds_at_three_scales() {
        let s = suite();
        assert_eq!(s.len(), 9);
        for kind in ["compute", "memory", "noc"] {
            for gpms in [1, 8, 32] {
                assert!(s.iter().any(|x| x.name == format!("{kind}/{gpms}gpm")));
            }
        }
    }

    #[test]
    fn scenarios_simulate_identically_in_both_modes() {
        // The smallest point of each kind; the larger points are the same
        // kernels scaled up (and the full matrix runs in `xp bench`).
        for s in suite().into_iter().filter(|s| s.gpms == 1) {
            assert_eq!(
                s.run(EngineMode::EventDriven),
                s.run(EngineMode::Naive),
                "{} diverged",
                s.name
            );
        }
    }

    #[test]
    fn parallel_scenarios_simulate_identically_to_event_driven() {
        // The multi-GPM points actually shard; 1 GPM exercises the
        // degenerate inline path. Both must hold the bit-identity
        // contract the full `xp bench` run asserts before timing.
        for s in suite().into_iter().filter(|s| s.gpms <= 8) {
            assert_eq!(
                s.run(EngineMode::EventDriven),
                s.run_with(EngineMode::Parallel, Some(4)),
                "{} diverged under the parallel engine",
                s.name
            );
        }
    }

    #[test]
    fn baseline_parsing_rejects_malformed_files() {
        let dir = std::env::temp_dir().join("xp-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(
            &good,
            r#"{"scenarios": [{"name": "memory/8gpm", "speedup": 3.5}]}"#,
        )
        .unwrap();
        assert_eq!(
            load_baseline(&good).unwrap(),
            vec![BaselineEntry {
                name: "memory/8gpm".to_string(),
                speedup: 3.5,
                par_speedup: None,
                event_cps: None,
                naive_cps: None,
            }]
        );

        let bad = dir.join("bad.json");
        std::fs::write(&bad, r#"{"scenarios": [{"name": "x"}]}"#).unwrap();
        assert!(load_baseline(&bad).is_err());
        assert!(load_baseline(&dir.join("missing.json")).is_err());
    }

    #[test]
    fn baseline_parsing_reads_absolute_throughput() {
        let dir = std::env::temp_dir().join("xp-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("abs.json");
        std::fs::write(
            &p,
            r#"{"scenarios": [{"name": "noc/1gpm", "speedup": 2.0,
                "event": {"cycles_per_sec": 50000.0},
                "naive": {"cycles_per_sec": 25000.0}}]}"#,
        )
        .unwrap();
        let b = load_baseline(&p).unwrap();
        assert_eq!(b[0].event_cps, Some(50000.0));
        assert_eq!(b[0].naive_cps, Some(25000.0));
        assert_eq!(b[0].par_speedup, None);
    }

    #[test]
    fn baseline_parsing_reads_parallel_speedup() {
        let dir = std::env::temp_dir().join("xp-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("par.json");
        std::fs::write(
            &p,
            r#"{"scenarios": [{"name": "compute/32gpm", "speedup": 1.0,
                "par_speedup": 4.2}]}"#,
        )
        .unwrap();
        let b = load_baseline(&p).unwrap();
        assert_eq!(b[0].par_speedup, Some(4.2));
    }

    fn entry(name: &str, event: f64, naive: f64) -> BaselineEntry {
        BaselineEntry {
            name: name.to_string(),
            speedup: event / naive,
            par_speedup: None,
            event_cps: Some(event),
            naive_cps: Some(naive),
        }
    }

    fn m(name: &str, event: f64, naive: f64) -> Measured {
        Measured {
            name: name.to_string(),
            event_cps: event,
            naive_cps: naive,
            par_speedup: 1.0,
        }
    }

    #[test]
    fn calibration_factor_is_the_median_naive_ratio() {
        let base = vec![
            entry("a", 100.0, 100.0),
            entry("b", 100.0, 100.0),
            entry("c", 100.0, 100.0),
        ];
        // A 2x-faster host with one outlier scenario: the median ignores
        // the outlier.
        let local = vec![
            m("a", 150.0, 200.0),
            m("b", 150.0, 200.0),
            m("c", 150.0, 800.0),
        ];
        assert_eq!(calibration_factor(&base, &local), Some(2.0));
        // No overlap or no absolute numbers: no calibration.
        assert_eq!(calibration_factor(&base, &[m("zzz", 1.0, 1.0)]), None);
        let old = vec![BaselineEntry {
            name: "a".into(),
            speedup: 1.0,
            par_speedup: None,
            event_cps: None,
            naive_cps: None,
        }];
        assert_eq!(calibration_factor(&old, &local), None);
    }

    #[test]
    fn envelope_regressions_flag_only_lowered_scenarios() {
        let base = vec![entry("a", 100.0, 50.0), entry("b", 100.0, 50.0)];
        let local = vec![m("a", 99.0, 50.0), m("b", 101.0, 50.0), m("new", 1.0, 1.0)];
        assert_eq!(envelope_regressions(&base, &local), vec!["a".to_string()]);
        // Equal-or-better everywhere: nothing to refuse.
        let better = vec![m("a", 100.0, 50.0), m("b", 120.0, 50.0)];
        assert!(envelope_regressions(&base, &better).is_empty());
        // An empty or absolute-free envelope never blocks.
        assert!(envelope_regressions(&[], &local).is_empty());
    }
}
