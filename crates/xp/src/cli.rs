//! The `xp` driver: one CLI for every experiment artifact.
//!
//! ```text
//! xp list                                   # what can be reproduced
//! xp run fig6 fig8                          # run two artifacts (text)
//! xp run all --format json --out results/   # everything, as JSON files
//! xp check results/                         # CI: re-parse emitted JSON
//! ```
//!
//! `run` unions the selected artifacts' sweep plans into one batch prime
//! through the runtime executor, then evaluates each artifact against the
//! warm cache; per-artifact internal primes become cache hits. With
//! `--out`, the driver writes one `<id>.json` per artifact plus a
//! `manifest.json` recording the configuration digest, suite, thread
//! count, wall time, and the prime sweep's report and metrics.

use crate::artifact::SweepPlan;
use crate::configs::ExpConfig;
use crate::figures::default_suite;
use crate::lab::Lab;
use crate::registry::{ArtifactRegistry, RegistryOptions};
use crate::validation;
use common::json::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;
use workloads::Scale;

/// Output format for `xp run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Historical text tables on stdout (the default).
    Text,
    /// Structured JSON (stdout, or files with `--out`).
    Json,
    /// Both text on stdout and JSON files/stdout.
    Both,
}

impl Format {
    fn wants_text(self) -> bool {
        matches!(self, Format::Text | Format::Both)
    }

    fn wants_json(self) -> bool {
        matches!(self, Format::Json | Format::Both)
    }
}

/// A parsed `xp` invocation.
#[derive(Debug)]
enum Command {
    List,
    Run(RunOptions),
    Check { dir: PathBuf },
}

/// Options for `xp run`.
#[derive(Debug)]
struct RunOptions {
    ids: Vec<String>,
    scale: Scale,
    threads: usize,
    validation: bool,
    format: Format,
    out: Option<PathBuf>,
}

const USAGE: &str = "usage: xp <command> [options]

commands:
  list                     list every artifact id and title
  run <id>... | run all    evaluate artifacts (see options below)
  check <dir>              re-parse JSON results emitted by `run --out`

run options:
  --smoke                  smoke-scale problems (fast; CI default)
  --threads N              sweep worker threads (default: auto)
  --no-validation          skip the fitting pipeline in repro_report/all_figures
  --format text|json|both  output format (default: text)
  --out DIR                write one <id>.json per artifact plus manifest.json
";

fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(|| USAGE.to_string())?;
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "check" => {
            let dir = it
                .next()
                .ok_or_else(|| "xp check: missing results directory".to_string())?;
            Ok(Command::Check {
                dir: PathBuf::from(dir),
            })
        }
        "run" => {
            let mut opts = RunOptions {
                ids: Vec::new(),
                scale: Scale::Full,
                threads: runtime::resolve_threads(None),
                validation: true,
                format: Format::Text,
                out: None,
            };
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--smoke" => opts.scale = Scale::Smoke,
                    "--no-validation" => opts.validation = false,
                    "--threads" => {
                        // Lenient like the historical binaries: a missing
                        // or unparsable value warns and keeps the default.
                        let requested = it.next().and_then(|v| v.parse().ok());
                        if requested.is_none() {
                            eprintln!("warning: --threads expects a positive integer");
                        }
                        opts.threads = runtime::resolve_threads(requested);
                    }
                    "--format" => {
                        let f = it
                            .next()
                            .ok_or_else(|| "--format: missing value".to_string())?;
                        opts.format = match f.as_str() {
                            "text" => Format::Text,
                            "json" => Format::Json,
                            "both" => Format::Both,
                            other => return Err(format!("--format: unknown format {other:?}")),
                        };
                    }
                    "--out" => {
                        let dir = it
                            .next()
                            .ok_or_else(|| "--out: missing directory".to_string())?;
                        opts.out = Some(PathBuf::from(dir));
                    }
                    other if other.starts_with("--threads=") => {
                        let v = &other["--threads=".len()..];
                        let requested = v.parse().ok();
                        if requested.is_none() {
                            eprintln!("warning: --threads expects a positive integer, got {v:?}");
                        }
                        opts.threads = runtime::resolve_threads(requested);
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("xp run: unknown option {other}"));
                    }
                    id => opts.ids.push(id.to_string()),
                }
            }
            if opts.ids.is_empty() {
                return Err(
                    "xp run: no artifact ids given (try `xp list`, or `xp run all`)".to_string(),
                );
            }
            Ok(Command::Run(opts))
        }
        other => Err(format!("xp: unknown command {other:?}\n\n{USAGE}")),
    }
}

/// FNV-1a over the Debug form of every planned config: a stable,
/// dependency-free fingerprint of what the sweep covered.
fn config_digest(configs: &[ExpConfig]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cfg in configs {
        for b in format!("{cfg:?}\n").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Entry point for the `xp` binary. Returns the process exit code:
/// 0 on success, 1 on evaluation/IO failure, 2 on usage errors
/// (including unknown artifact ids).
pub fn main(args: &[String]) -> i32 {
    match parse(args) {
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
        Ok(Command::List) => {
            let registry = ArtifactRegistry::standard(&RegistryOptions::default());
            for artifact in registry.iter() {
                let marker = if artifact.composite() { "*" } else { " " };
                println!("{:<16}{marker} {}", artifact.id(), artifact.title());
            }
            println!("\n* composite: included in `run <id>` but not in `run all`");
            0
        }
        Ok(Command::Check { dir }) => check(&dir),
        Ok(Command::Run(opts)) => run(&opts),
    }
}

fn run(opts: &RunOptions) -> i32 {
    let registry = ArtifactRegistry::standard(&RegistryOptions {
        validation: opts.validation,
    });

    // Resolve ids; `all` expands to every non-composite artifact.
    let mut ids: Vec<&str> = Vec::new();
    for id in &opts.ids {
        if id == "all" {
            for a in registry.all_ids() {
                if !ids.contains(&a) {
                    ids.push(a);
                }
            }
        } else if registry.get(id).is_some() {
            if !ids.contains(&id.as_str()) {
                ids.push(registry.get(id).unwrap().id());
            }
        } else {
            eprintln!("xp run: unknown artifact {id:?} (try `xp list`)");
            return 2;
        }
    }

    let started = Instant::now();
    let lab = Lab::with_threads(opts.scale, opts.threads);
    let suite = default_suite();

    // Union the selected artifacts' plans into one sweep.
    let mut plan = SweepPlan::none();
    for id in &ids {
        plan.merge(registry.get(id).unwrap().plan());
    }
    let mut configs: Vec<ExpConfig> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for cfg in plan.configs {
        if seen.insert(format!("{cfg:?}")) {
            configs.push(cfg);
        }
    }
    let digest = config_digest(&configs);

    // Pre-warm the shared fit cache so per-artifact fits are lookups.
    if plan.needs_fit {
        let _ = validation::fit_model_cached(opts.scale);
    }

    // One batch prime through the executor; artifact-internal primes
    // against the same points become cache hits.
    let mut points = Vec::with_capacity(suite.len() * (configs.len() + 1));
    for w in &suite {
        points.push((w.clone(), ExpConfig::baseline()));
        for cfg in &configs {
            points.push((w.clone(), cfg.clone()));
        }
    }
    let sweep_report = lab.prime(&points);

    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("xp run: cannot create {}: {e}", dir.display());
            return 1;
        }
    }

    let mut manifest_artifacts = Json::array();
    let multi = ids.len() > 1;
    for id in &ids {
        let artifact = registry.get(id).unwrap();
        let eval_started = Instant::now();
        let data = match artifact.evaluate(&lab, &suite) {
            Ok(data) => data,
            Err(err) => {
                eprintln!("xp run: {err}");
                return 1;
            }
        };
        let elapsed = eval_started.elapsed().as_secs_f64();

        if opts.format.wants_text() {
            if multi {
                println!("== {id} ==");
            }
            print!("{}", data.text);
        }

        let mut entry = Json::object();
        entry.insert("id", artifact.id());
        entry.insert("title", artifact.title());
        entry.insert("eval_secs", elapsed);
        if let Some(dir) = &opts.out {
            let file = format!("{id}.json");
            let path = dir.join(&file);
            if let Err(e) = std::fs::write(&path, format!("{}\n", data.json.render_pretty())) {
                eprintln!("xp run: cannot write {}: {e}", path.display());
                return 1;
            }
            entry.insert("file", file.as_str());
        } else if opts.format.wants_json() {
            println!("{}", data.json.render_pretty());
        }
        manifest_artifacts.push(entry);
    }

    if let Some(dir) = &opts.out {
        let mut manifest = Json::object();
        manifest.insert("schema_version", 1usize);
        manifest.insert("scale", format!("{:?}", opts.scale).as_str());
        manifest.insert("threads", lab.threads());
        manifest.insert("validation", opts.validation);
        manifest.insert("config_digest", digest.as_str());
        manifest.insert("planned_configs", configs.len());
        let mut suite_names = Json::array();
        for w in &suite {
            suite_names.push(w.name);
        }
        manifest.insert("suite", suite_names);
        manifest.insert("artifacts", manifest_artifacts);
        manifest.insert("sweep", sweep_report.to_json());
        let mut history = Json::array();
        for m in lab.sweep_history() {
            history.push(m.to_json());
        }
        manifest.insert("sweeps", history);
        manifest.insert("cached_runs", lab.cached_runs());
        manifest.insert("wall_time_secs", started.elapsed().as_secs_f64());
        let path = dir.join("manifest.json");
        if let Err(e) = std::fs::write(&path, format!("{}\n", manifest.render_pretty())) {
            eprintln!("xp run: cannot write {}: {e}", path.display());
            return 1;
        }
        eprintln!(
            "wrote {} artifact file(s) + manifest.json to {}",
            ids.len(),
            dir.display()
        );
    }

    lab.print_sweep_summary();
    0
}

/// `xp check <dir>`: every JSON file `run --out` emitted must re-parse
/// through the strict parser, and the manifest must reference only files
/// that exist. The CI gate against schema regressions.
fn check(dir: &Path) -> i32 {
    let manifest_path = dir.join("manifest.json");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xp check: cannot read {}: {e}", manifest_path.display());
            return 1;
        }
    };
    let manifest = match Json::parse(&manifest) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "xp check: {} is not valid JSON: {e}",
                manifest_path.display()
            );
            return 1;
        }
    };

    let artifacts = match manifest.get("artifacts").and_then(Json::as_array) {
        Some(a) => a,
        None => {
            eprintln!(
                "xp check: {} has no `artifacts` array",
                manifest_path.display()
            );
            return 1;
        }
    };

    let mut checked = 0usize;
    for entry in artifacts {
        let id = entry.get("id").and_then(Json::as_str).unwrap_or("?");
        let Some(file) = entry.get("file").and_then(Json::as_str) else {
            continue;
        };
        let path = dir.join(file);
        let body = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "xp check: artifact {id}: cannot read {}: {e}",
                    path.display()
                );
                return 1;
            }
        };
        let json = match Json::parse(&body) {
            Ok(j) => j,
            Err(e) => {
                eprintln!(
                    "xp check: artifact {id}: {} is not valid JSON: {e}",
                    path.display()
                );
                return 1;
            }
        };
        if json.get("id").and_then(Json::as_str) != Some(id) {
            eprintln!(
                "xp check: artifact {id}: {} has mismatched `id`",
                path.display()
            );
            return 1;
        }
        checked += 1;
    }
    println!("xp check: manifest.json + {checked} artifact file(s) parse cleanly");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_rejects_unknown_commands_and_empty_runs() {
        assert!(parse(&argv(&["frobnicate"])).is_err());
        assert!(parse(&argv(&["run"])).is_err());
        assert!(parse(&argv(&["run", "--format", "yaml", "fig2"])).is_err());
        assert!(parse(&argv(&["check"])).is_err());
    }

    #[test]
    fn parse_accepts_the_documented_flags() {
        let Ok(Command::Run(opts)) = parse(&argv(&[
            "run",
            "all",
            "--smoke",
            "--threads",
            "2",
            "--no-validation",
            "--format",
            "both",
            "--out",
            "results",
        ])) else {
            panic!("expected a run command");
        };
        assert_eq!(opts.ids, vec!["all"]);
        assert_eq!(opts.scale, Scale::Smoke);
        assert_eq!(opts.threads, 2);
        assert!(!opts.validation);
        assert_eq!(opts.format, Format::Both);
        assert_eq!(opts.out.as_deref(), Some(Path::new("results")));
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let a = vec![ExpConfig::baseline()];
        let b = vec![ExpConfig::baseline()];
        assert_eq!(config_digest(&a), config_digest(&b));
        assert_ne!(config_digest(&a), config_digest(&[]));
    }

    #[test]
    fn unknown_artifact_id_is_a_usage_error() {
        assert_eq!(main(&argv(&["run", "no_such_artifact", "--smoke"])), 2);
    }
}
