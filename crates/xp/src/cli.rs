//! The `xp` driver: one CLI for every experiment artifact.
//!
//! ```text
//! xp list                                   # what can be reproduced
//! xp run fig6 fig8                          # run two artifacts (text)
//! xp run all --format json --out results/   # everything, as JSON files
//! xp check results/                         # CI: re-parse emitted JSON
//! ```
//!
//! `run` unions the selected artifacts' sweep plans into one batch prime
//! through the runtime executor, then evaluates each artifact against the
//! warm cache; per-artifact internal primes become cache hits. With
//! `--out`, the driver writes one `<id>.json` per artifact plus a
//! `manifest.json` recording the configuration digest, suite, thread
//! count, wall time, and the prime sweep's report and metrics.

use crate::artifact::{ArtifactError, ArtifactErrorKind, SweepPlan};
use crate::configs::ExpConfig;
use crate::figures::default_suite;
use crate::lab::Lab;
use crate::query::{artifact_digest, config_digest, RegistryEngine, SET_KEYS};
use crate::registry::{ArtifactRegistry, RegistryOptions};
use crate::validation;
use common::json::Json;
use runtime::{FaultPlan, RetryPolicy};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use workloads::Scale;

/// Output format for `xp run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Historical text tables on stdout (the default).
    Text,
    /// Structured JSON (stdout, or files with `--out`).
    Json,
    /// Both text on stdout and JSON files/stdout.
    Both,
}

impl Format {
    fn wants_text(self) -> bool {
        matches!(self, Format::Text | Format::Both)
    }

    fn wants_json(self) -> bool {
        matches!(self, Format::Json | Format::Both)
    }
}

/// A parsed `xp` invocation.
#[derive(Debug)]
enum Command {
    List,
    Run(RunOptions),
    Check { dir: PathBuf },
    TraceSummary { file: PathBuf },
    Bench(crate::bench::BenchOptions),
    Serve(ServeOptions),
    Query(QueryOptions),
    Top(TopOptions),
}

/// Options for `xp serve`.
#[derive(Debug)]
struct ServeOptions {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    store: PathBuf,
    store_cap_mb: u64,
    queue_cap: usize,
    batch_max: usize,
    batch_window_ms: u64,
    scale: Scale,
    threads: usize,
    validation: bool,
    /// Record the whole serving session and write a Chrome trace here
    /// on shutdown (`xpd.*` counters feed `xp trace summary`).
    trace: Option<PathBuf>,
    /// How hard the result store pushes writes toward disk.
    durability: xpd::store::Durability,
    /// Seeded deterministic fault injection across the daemon's I/O
    /// boundaries (recovery testing only).
    chaos_seed: Option<u64>,
    /// Append requests slower than this to `<store>/slow.jsonl`.
    slow_ms: Option<u64>,
    /// Append one structured JSONL event per request here.
    log: Option<PathBuf>,
    /// Rotation cap for `--log`, in MiB (0 = the daemon default).
    log_cap_mb: u64,
}

/// Options for `xp top`.
#[derive(Debug)]
struct TopOptions {
    endpoint: xpd::client::Endpoint,
    interval: Duration,
    /// Print a single frame and exit (CI and scripting).
    once: bool,
}

/// Options for `xp query`.
#[derive(Debug)]
struct QueryOptions {
    endpoint: xpd::client::Endpoint,
    request: common::proto::QueryRequest,
    timeout: Option<Duration>,
    /// Attempts beyond the first on busy/connect-refused/torn-response.
    retries: u32,
    /// Base of the jittered exponential backoff between attempts.
    backoff: Duration,
}

/// Options for `xp run`.
#[derive(Debug)]
struct RunOptions {
    ids: Vec<String>,
    scale: Scale,
    threads: usize,
    validation: bool,
    format: Format,
    out: Option<PathBuf>,
    /// Skip journaled artifacts whose config digest still matches.
    resume: bool,
    /// Retries per sweep point beyond the first attempt.
    retries: u32,
    /// Cooperative per-point deadline.
    point_timeout: Option<Duration>,
    /// Parsed `--faults` specification, if any.
    faults: Option<FaultSpec>,
    /// Write a Chrome trace-event JSON of the run here.
    trace: Option<PathBuf>,
    /// Write the trace/sweep metrics summary JSON here.
    metrics_out: Option<PathBuf>,
}

const USAGE: &str = "usage: xp <command> [options]

commands:
  list                     list every artifact id and title
  run <id>... | run all    evaluate artifacts (see options below)
  check <dir>              re-parse JSON results emitted by `run --out`
  trace summary <file>     per-span statistics + counters from a --trace file
  bench                    time the simulator hot path (event-driven vs naive
                           cycle loop vs the sharded parallel engine) and
                           write BENCH_sim.json
  serve                    run the xpd what-if daemon: answer artifact queries
                           from a content-addressed disk store, computing cold
                           ones through the sweep executor
  query <id>               ask a running daemon for an artifact's JSON payload,
                           optionally re-parameterized with --set key=value
                           (exit codes: 0 ok, 1 error, 2 usage, 3 busy,
                           4 deadline expired)
  top                      live view of a running daemon (queue depth, rates,
                           hit ratio, latency quantiles), refreshed in place

run options:
  --smoke                  smoke-scale problems (fast; CI default)
  --threads N              sweep worker threads (default: auto)
  --no-validation          skip the fitting pipeline in repro_report/all_figures
  --format text|json|both  output format (default: text)
  --out DIR                write one <id>.json per artifact plus manifest.json
                           and journal.jsonl (one record per finished artifact)
  --resume DIR             like --out DIR, but skip artifacts already recorded
                           in DIR/journal.jsonl with a matching config digest
  --retries N              retry failed sweep points up to N times (default: 0)
  --point-timeout-ms MS    per-point deadline; late points count as timeouts
                           and are retried under --retries
  --faults SPEC            deterministic fault injection, e.g.
                           seed=7,panic=0.1,delay=0.05,delay-ms=100,poison=0.1,nan=0.05,dropout=0.05
  --trace FILE             record spans across runtime/sim/silicon/xp and write
                           Chrome trace-event JSON (perfetto / chrome://tracing)
  --metrics-out FILE       write per-span histograms, counters, and the sweep
                           report as one JSON summary

serve options:
  --socket PATH            listen on a Unix socket
  --tcp ADDR               listen on a TCP address (127.0.0.1:0 = any free
                           port; at least one of --socket/--tcp is required)
  --store DIR              result store directory (default: xpd-store)
  --store-cap-mb N         store size cap before LRU eviction (default: 256)
  --queue-cap N            queued cold queries before `busy` (default: 256)
  --batch-max N            cold queries per executor batch (default: 8)
  --batch-window-ms MS     how long to gather a batch (default: 20)
  --trace FILE             record the serving session; write Chrome trace JSON
                           on shutdown (xpd.* counters feed `trace summary`)
  --durability POLICY      store write durability: none | flush | fsync
                           (default: flush; fsync also syncs the directory so
                           acknowledged answers survive power loss)
  --chaos-seed N           arm seeded fault injection at the daemon's I/O
                           boundaries (torn store writes, dropped responses,
                           delayed accepts) — recovery testing only; same
                           seed, same fault schedule
  --slow-ms MS             append requests slower than MS to <store>/slow.jsonl
                           (one JSONL record per slow request, with the same
                           per-phase timing breakdown --timing reports)
  --log FILE               append one structured JSONL event per request to
                           FILE, rotating once to FILE.1 at the size cap
  --log-cap-mb N           rotation cap for --log, in MiB (default: 4)
  --smoke, --threads N, --no-validation   as for `run`

query options:
  --socket PATH | --tcp ADDR   where the daemon listens (required)
  --set KEY=VALUE          config delta applied to the artifact's whole sweep
                           (repeatable); keys: gpms, bw (1x|2x|4x), topology
                           (ring|switch|ideal), link_energy_mult,
                           link_compression, clock_scale, mlp
  --stats                  print the daemon's live counters instead of a query
  --health                 print the daemon's readiness probe (queue depth,
                           in-flight count, store stats) instead of a query
  --shutdown               ask the daemon to shut down cleanly
  --metrics                print the daemon's continuous metrics as JSON:
                           gauges, cumulative counters, and a one-minute
                           window of rates and latency quantiles
  --prometheus             print the metrics in Prometheus text exposition
                           format instead (implies --metrics; the same body
                           the HTTP bridge serves at GET /metrics)
  --timing                 report the answer's per-phase timing breakdown
                           (queue wait, batch linger, eval, store write) on
                           stderr; the stdout payload stays byte-identical
  --timeout-ms MS          client I/O timeout (default: wait indefinitely;
                           cold queries can take minutes)
  --deadline-ms MS         server-side deadline: work still queued when it
                           expires is answered `timeout` (exit 4), never
                           silently computed
  --retries N              retry busy/connect-refused/torn-response up to N
                           times (default: 0; safe — queries are idempotent)
  --backoff-ms MS          base of the jittered exponential backoff between
                           retries (default: 100)

top options:
  --socket PATH | --tcp ADDR   where the daemon listens (required)
  --interval-ms MS         refresh period (default: 2000)
  --once                   print one frame and exit (scripts and CI; plain
                           output also under NO_COLOR or a piped stdout)

bench options:
  --quick                  short measurement budgets (CI default)
  --out FILE               where to write the report (default: BENCH_sim.json)
  --baseline FILE          recorded BENCH_sim.json to gate against:
                           speedup drop >10% warns, >25% fails the run
  --filter SUBSTR          only scenarios whose name contains SUBSTR
                           (names are kind/gpms, e.g. memory/32gpm)
  --baseline-update        refresh the report in place, treating the existing
                           file as a throughput envelope: refuses to lower a
                           recorded event-loop cycles/sec floor
  --allow-regress          with --baseline-update, accept a lowered envelope
  --threads N              worker threads for the parallel-engine side
                           (default: MMGPU_SIM_THREADS, else host parallelism;
                           serial modes are unaffected)
";

/// Parsed `--faults` specification: rates for each injected fault kind
/// plus the seed that makes the schedule deterministic.
#[derive(Debug, Clone, PartialEq)]
struct FaultSpec {
    seed: u64,
    panic: f64,
    delay: f64,
    delay_ms: u64,
    poison: f64,
    nan: f64,
    dropout: f64,
}

impl FaultSpec {
    fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut f = FaultSpec {
            seed: 0,
            panic: 0.0,
            delay: 0.0,
            delay_ms: 100,
            poison: 0.0,
            nan: 0.0,
            dropout: 0.0,
        };
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("--faults: expected key=value, got {part:?}"))?;
            let rate = |what: &str| -> Result<f64, String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("--faults: {what} expects a number, got {value:?}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("--faults: {what} must be in [0, 1], got {value}"));
                }
                Ok(v)
            };
            match key.trim() {
                "seed" => {
                    f.seed = value
                        .parse()
                        .map_err(|_| format!("--faults: seed expects an integer, got {value:?}"))?
                }
                "panic" => f.panic = rate("panic")?,
                "delay" => f.delay = rate("delay")?,
                "delay-ms" => {
                    f.delay_ms = value.parse().map_err(|_| {
                        format!("--faults: delay-ms expects an integer, got {value:?}")
                    })?
                }
                "poison" => f.poison = rate("poison")?,
                "nan" => f.nan = rate("nan")?,
                "dropout" => f.dropout = rate("dropout")?,
                other => return Err(format!("--faults: unknown key {other:?}")),
            }
        }
        Ok(f)
    }

    /// The runtime half: panics, latency, poisoned cache entries.
    fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with_panic_rate(self.panic)
            .with_delay_rate(self.delay, Duration::from_millis(self.delay_ms))
            .with_poison_rate(self.poison)
    }

    /// The silicon half: sensor NaN glitches and dropouts.
    fn sensor_faults(&self) -> Option<silicon::SensorFaults> {
        let f = silicon::SensorFaults {
            nan_rate: self.nan,
            dropout_rate: self.dropout,
            seed: self.seed,
        };
        (!f.is_noop()).then_some(f)
    }
}

/// Disarms process-wide sensor faults when the run ends, on every exit
/// path.
struct SensorFaultGuard;

impl Drop for SensorFaultGuard {
    fn drop(&mut self) {
        silicon::arm_sensor_faults(None);
    }
}

/// Strict `--threads` parsing: the historical lenient warn-and-default
/// path hid typos like `--threads 08x` behind surprising autodetection.
fn parse_threads(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "xp run: --threads expects a positive integer, got {value:?} (e.g. --threads 4)"
        )),
    }
}

fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(|| USAGE.to_string())?;
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "check" => {
            let dir = it
                .next()
                .ok_or_else(|| "xp check: missing results directory".to_string())?;
            Ok(Command::Check {
                dir: PathBuf::from(dir),
            })
        }
        "trace" => {
            match it.next().map(String::as_str) {
                Some("summary") => {}
                Some(other) => {
                    return Err(format!(
                        "xp trace: unknown subcommand {other:?} (expected `summary`)"
                    ))
                }
                None => return Err("xp trace: missing subcommand `summary`".to_string()),
            }
            let file = it
                .next()
                .ok_or_else(|| "xp trace summary: missing trace file".to_string())?;
            Ok(Command::TraceSummary {
                file: PathBuf::from(file),
            })
        }
        "bench" => {
            let mut opts = crate::bench::BenchOptions::default();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => opts.quick = true,
                    "--out" => {
                        let file = it
                            .next()
                            .ok_or_else(|| "xp bench: --out: missing file".to_string())?;
                        opts.out = Some(PathBuf::from(file));
                    }
                    "--baseline" => {
                        let file = it
                            .next()
                            .ok_or_else(|| "xp bench: --baseline: missing file".to_string())?;
                        opts.baseline = Some(PathBuf::from(file));
                    }
                    "--filter" => {
                        let pat = it
                            .next()
                            .ok_or_else(|| "xp bench: --filter: missing substring".to_string())?;
                        opts.filter = Some(pat.clone());
                    }
                    "--baseline-update" => opts.baseline_update = true,
                    "--allow-regress" => opts.allow_regress = true,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp bench: --threads: missing value".to_string())?;
                        opts.threads = Some(parse_threads(v)?);
                    }
                    other if other.starts_with("--threads=") => {
                        opts.threads = Some(parse_threads(&other["--threads=".len()..])?);
                    }
                    other => return Err(format!("xp bench: unknown option {other}\n\n{USAGE}")),
                }
            }
            Ok(Command::Bench(opts))
        }
        "serve" => {
            let mut opts = ServeOptions {
                socket: None,
                tcp: None,
                store: PathBuf::from("xpd-store"),
                store_cap_mb: 256,
                queue_cap: 256,
                batch_max: 8,
                batch_window_ms: 20,
                scale: Scale::Full,
                threads: runtime::resolve_threads(None),
                validation: true,
                trace: None,
                durability: xpd::store::Durability::default(),
                chaos_seed: None,
                slow_ms: None,
                log: None,
                log_cap_mb: 0,
            };
            let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                         flag: &str|
             -> Result<String, String> {
                it.next()
                    .map(|s| s.to_string())
                    .ok_or_else(|| format!("xp serve: {flag}: missing value"))
            };
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--socket" => opts.socket = Some(PathBuf::from(value(&mut it, "--socket")?)),
                    "--tcp" => opts.tcp = Some(value(&mut it, "--tcp")?),
                    "--store" => opts.store = PathBuf::from(value(&mut it, "--store")?),
                    "--store-cap-mb" => {
                        let v = value(&mut it, "--store-cap-mb")?;
                        opts.store_cap_mb = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!("xp serve: --store-cap-mb expects a positive integer, got {v:?}")
                        })?;
                    }
                    "--queue-cap" => {
                        let v = value(&mut it, "--queue-cap")?;
                        opts.queue_cap = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!("xp serve: --queue-cap expects a positive integer, got {v:?}")
                        })?;
                    }
                    "--batch-max" => {
                        let v = value(&mut it, "--batch-max")?;
                        opts.batch_max = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!("xp serve: --batch-max expects a positive integer, got {v:?}")
                        })?;
                    }
                    "--batch-window-ms" => {
                        let v = value(&mut it, "--batch-window-ms")?;
                        opts.batch_window_ms = v.parse().map_err(|_| {
                            format!("xp serve: --batch-window-ms expects milliseconds, got {v:?}")
                        })?;
                    }
                    "--smoke" => opts.scale = Scale::Smoke,
                    "--no-validation" => opts.validation = false,
                    "--trace" => opts.trace = Some(PathBuf::from(value(&mut it, "--trace")?)),
                    "--durability" => {
                        let v = value(&mut it, "--durability")?;
                        opts.durability = xpd::store::Durability::parse(&v)
                            .map_err(|e| format!("xp serve: --durability: {e}"))?;
                    }
                    "--chaos-seed" => {
                        let v = value(&mut it, "--chaos-seed")?;
                        opts.chaos_seed = Some(v.parse().map_err(|_| {
                            format!("xp serve: --chaos-seed expects an integer seed, got {v:?}")
                        })?);
                    }
                    "--slow-ms" => {
                        let v = value(&mut it, "--slow-ms")?;
                        opts.slow_ms =
                            Some(v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                                format!(
                                    "xp serve: --slow-ms expects positive milliseconds, got {v:?}"
                                )
                            })?);
                    }
                    "--log" => opts.log = Some(PathBuf::from(value(&mut it, "--log")?)),
                    "--log-cap-mb" => {
                        let v = value(&mut it, "--log-cap-mb")?;
                        opts.log_cap_mb = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!("xp serve: --log-cap-mb expects a positive integer, got {v:?}")
                        })?;
                    }
                    "--threads" => {
                        let v = value(&mut it, "--threads")?;
                        opts.threads = parse_threads(&v)?;
                    }
                    other if other.starts_with("--threads=") => {
                        opts.threads = parse_threads(&other["--threads=".len()..])?;
                    }
                    other => return Err(format!("xp serve: unknown option {other}")),
                }
            }
            if opts.socket.is_none() && opts.tcp.is_none() {
                return Err(
                    "xp serve: no endpoint (pass --socket PATH and/or --tcp ADDR)".to_string(),
                );
            }
            Ok(Command::Serve(opts))
        }
        "query" => {
            let mut socket: Option<PathBuf> = None;
            let mut tcp: Option<String> = None;
            let mut artifact: Option<String> = None;
            let mut sets: Vec<(String, String)> = Vec::new();
            let mut stats = false;
            let mut health = false;
            let mut shutdown = false;
            let mut metrics = false;
            let mut prometheus = false;
            let mut timing = false;
            let mut timeout = None;
            let mut deadline_ms: Option<u64> = None;
            let mut retries: u32 = 0;
            let mut backoff = Duration::from_millis(100);
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--socket" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --socket: missing path".to_string())?;
                        socket = Some(PathBuf::from(v));
                    }
                    "--tcp" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --tcp: missing address".to_string())?;
                        tcp = Some(v.clone());
                    }
                    "--set" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --set: missing KEY=VALUE".to_string())?;
                        let (k, val) = v.split_once('=').ok_or_else(|| {
                            format!(
                                "xp query: --set expects KEY=VALUE, got {v:?} (keys: {SET_KEYS})"
                            )
                        })?;
                        if sets.iter().any(|(prev, _)| prev == k) {
                            return Err(format!("xp query: duplicate --set key {k:?}"));
                        }
                        sets.push((k.to_string(), val.to_string()));
                    }
                    "--stats" => stats = true,
                    "--health" => health = true,
                    "--shutdown" => shutdown = true,
                    "--metrics" => metrics = true,
                    "--prometheus" => {
                        metrics = true;
                        prometheus = true;
                    }
                    "--timing" => timing = true,
                    "--timeout-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --timeout-ms: missing value".to_string())?;
                        let ms: u64 = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!(
                                "xp query: --timeout-ms expects positive milliseconds, got {v:?}"
                            )
                        })?;
                        timeout = Some(Duration::from_millis(ms));
                    }
                    "--deadline-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --deadline-ms: missing value".to_string())?;
                        let ms: u64 = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!(
                                "xp query: --deadline-ms expects positive milliseconds, got {v:?}"
                            )
                        })?;
                        deadline_ms = Some(ms);
                    }
                    "--retries" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --retries: missing value".to_string())?;
                        retries = v.parse().map_err(|_| {
                            format!("xp query: --retries expects a non-negative integer, got {v:?}")
                        })?;
                    }
                    "--backoff-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp query: --backoff-ms: missing value".to_string())?;
                        let ms: u64 = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!(
                                "xp query: --backoff-ms expects positive milliseconds, got {v:?}"
                            )
                        })?;
                        backoff = Duration::from_millis(ms);
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("xp query: unknown option {other}"));
                    }
                    id => {
                        if artifact.replace(id.to_string()).is_some() {
                            return Err("xp query: more than one artifact id given".to_string());
                        }
                    }
                }
            }
            let endpoint = match (socket, tcp) {
                (Some(path), None) => xpd::client::Endpoint::Unix(path),
                (None, Some(addr)) => xpd::client::Endpoint::Tcp(addr),
                (None, None) => {
                    return Err(
                        "xp query: no daemon endpoint (pass --socket PATH or --tcp ADDR)"
                            .to_string(),
                    )
                }
                (Some(_), Some(_)) => {
                    return Err("xp query: --socket and --tcp are mutually exclusive".to_string())
                }
            };
            if (stats || health || shutdown || metrics) && !sets.is_empty() {
                return Err("xp query: --set only applies to artifact queries".to_string());
            }
            if (stats || health || shutdown || metrics) && deadline_ms.is_some() {
                return Err("xp query: --deadline-ms only applies to artifact queries".to_string());
            }
            if (stats || health || shutdown || metrics) && timing {
                return Err("xp query: --timing only applies to artifact queries".to_string());
            }
            let request = match (stats, health, shutdown, metrics, artifact) {
                (true, false, false, false, None) => common::proto::QueryRequest::stats(),
                (false, true, false, false, None) => common::proto::QueryRequest::health(),
                (false, false, true, false, None) => common::proto::QueryRequest::shutdown(),
                (false, false, false, true, None) => {
                    common::proto::QueryRequest::metrics(if prometheus {
                        common::proto::MetricsFormat::Prometheus
                    } else {
                        common::proto::MetricsFormat::Json
                    })
                }
                (false, false, false, false, Some(id)) => {
                    let mut request = common::proto::QueryRequest::query(id);
                    request.sets = sets;
                    if let Some(ms) = deadline_ms {
                        request = request.with_deadline_ms(ms);
                    }
                    if timing {
                        request = request.with_timing();
                    }
                    request
                }
                (false, false, false, false, None) => {
                    return Err(
                        "xp query: no artifact id (or pass --stats / --health / --metrics / \
                         --shutdown)"
                            .to_string(),
                    )
                }
                _ => return Err(
                    "xp query: --stats, --health, --metrics, --shutdown, and an artifact id are \
                     mutually exclusive"
                        .to_string(),
                ),
            };
            Ok(Command::Query(QueryOptions {
                endpoint,
                request,
                timeout,
                retries,
                backoff,
            }))
        }
        "top" => {
            let mut socket: Option<PathBuf> = None;
            let mut tcp: Option<String> = None;
            let mut interval = Duration::from_millis(2000);
            let mut once = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--socket" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp top: --socket: missing path".to_string())?;
                        socket = Some(PathBuf::from(v));
                    }
                    "--tcp" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp top: --tcp: missing address".to_string())?;
                        tcp = Some(v.clone());
                    }
                    "--interval-ms" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp top: --interval-ms: missing value".to_string())?;
                        let ms: u64 = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!(
                                "xp top: --interval-ms expects positive milliseconds, got {v:?}"
                            )
                        })?;
                        interval = Duration::from_millis(ms);
                    }
                    "--once" => once = true,
                    other => return Err(format!("xp top: unknown option {other}")),
                }
            }
            let endpoint = match (socket, tcp) {
                (Some(path), None) => xpd::client::Endpoint::Unix(path),
                (None, Some(addr)) => xpd::client::Endpoint::Tcp(addr),
                (None, None) => {
                    return Err(
                        "xp top: no daemon endpoint (pass --socket PATH or --tcp ADDR)".to_string(),
                    )
                }
                (Some(_), Some(_)) => {
                    return Err("xp top: --socket and --tcp are mutually exclusive".to_string())
                }
            };
            Ok(Command::Top(TopOptions {
                endpoint,
                interval,
                once,
            }))
        }
        "run" => {
            let mut opts = RunOptions {
                ids: Vec::new(),
                scale: Scale::Full,
                threads: runtime::resolve_threads(None),
                validation: true,
                format: Format::Text,
                out: None,
                resume: false,
                retries: 0,
                point_timeout: None,
                faults: None,
                trace: None,
                metrics_out: None,
            };
            let mut explicit_out = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--smoke" => opts.scale = Scale::Smoke,
                    "--no-validation" => opts.validation = false,
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp run: --threads: missing value".to_string())?;
                        opts.threads = parse_threads(v)?;
                    }
                    "--format" => {
                        let f = it
                            .next()
                            .ok_or_else(|| "--format: missing value".to_string())?;
                        opts.format = match f.as_str() {
                            "text" => Format::Text,
                            "json" => Format::Json,
                            "both" => Format::Both,
                            other => return Err(format!("--format: unknown format {other:?}")),
                        };
                    }
                    "--out" => {
                        let dir = it
                            .next()
                            .ok_or_else(|| "--out: missing directory".to_string())?;
                        opts.out = Some(PathBuf::from(dir));
                        explicit_out = true;
                    }
                    "--resume" => {
                        let dir = it
                            .next()
                            .ok_or_else(|| "--resume: missing directory".to_string())?;
                        opts.out = Some(PathBuf::from(dir));
                        opts.resume = true;
                    }
                    "--retries" => {
                        let v = it
                            .next()
                            .ok_or_else(|| "xp run: --retries: missing value".to_string())?;
                        opts.retries = v.parse().map_err(|_| {
                            format!("xp run: --retries expects a non-negative integer, got {v:?}")
                        })?;
                    }
                    "--point-timeout-ms" => {
                        let v = it.next().ok_or_else(|| {
                            "xp run: --point-timeout-ms: missing value".to_string()
                        })?;
                        let ms: u64 = v.parse().map_err(|_| {
                            format!("xp run: --point-timeout-ms expects milliseconds, got {v:?}")
                        })?;
                        if ms == 0 {
                            return Err("xp run: --point-timeout-ms must be positive".to_string());
                        }
                        opts.point_timeout = Some(Duration::from_millis(ms));
                    }
                    "--faults" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| "xp run: --faults: missing specification".to_string())?;
                        opts.faults = Some(FaultSpec::parse(spec)?);
                    }
                    "--trace" => {
                        let file = it
                            .next()
                            .ok_or_else(|| "xp run: --trace: missing output file".to_string())?;
                        opts.trace = Some(PathBuf::from(file));
                    }
                    "--metrics-out" => {
                        let file = it.next().ok_or_else(|| {
                            "xp run: --metrics-out: missing output file".to_string()
                        })?;
                        opts.metrics_out = Some(PathBuf::from(file));
                    }
                    other if other.starts_with("--threads=") => {
                        opts.threads = parse_threads(&other["--threads=".len()..])?;
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("xp run: unknown option {other}"));
                    }
                    id => opts.ids.push(id.to_string()),
                }
            }
            if opts.resume && explicit_out {
                return Err(
                    "xp run: --out and --resume are mutually exclusive (resume implies the directory)"
                        .to_string(),
                );
            }
            if opts.ids.is_empty() {
                return Err(
                    "xp run: no artifact ids given (try `xp list`, or `xp run all`)".to_string(),
                );
            }
            Ok(Command::Run(opts))
        }
        other => Err(format!("xp: unknown command {other:?}\n\n{USAGE}")),
    }
}

/// Creates the output directory and proves it is writable *before* any
/// expensive simulation work starts, so a bad `--out` fails in
/// milliseconds instead of after the sweep.
fn prepare_out_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("xp run: cannot create {}: {e}", dir.display()))?;
    let probe = dir.join(".xp-write-probe");
    std::fs::write(&probe, b"probe\n").map_err(|e| {
        format!(
            "xp run: {} is not writable: {e} (fix permissions or pick another --out)",
            dir.display()
        )
    })?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// Reads `journal.jsonl` from a prior `--out` run, keeping the last
/// record per artifact id. A missing journal means nothing to resume;
/// a corrupt one is an error (silently rerunning everything would mask
/// data loss).
fn load_journal(dir: &Path) -> Result<Vec<(String, Json)>, String> {
    let path = dir.join("journal.jsonl");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "xp run: no journal at {}; running everything",
                path.display()
            );
            return Ok(Vec::new());
        }
        Err(e) => return Err(format!("xp run: cannot read {}: {e}", path.display())),
    };
    let records = Json::parse_jsonl(&text)
        .map_err(|e| format!("xp run: {} is corrupt: {e}", path.display()))?;
    let mut latest: Vec<(String, Json)> = Vec::new();
    for rec in records {
        let Some(id) = rec.get("artifact").and_then(Json::as_str) else {
            return Err(format!(
                "xp run: {}: record missing `artifact`",
                path.display()
            ));
        };
        let id = id.to_string();
        if let Some(slot) = latest.iter_mut().find(|(k, _)| *k == id) {
            slot.1 = rec;
        } else {
            latest.push((id, rec));
        }
    }
    Ok(latest)
}

/// Entry point for the `xp` binary. Returns the process exit code:
/// 0 on success, 1 on evaluation/IO failure, 2 on usage errors
/// (including unknown artifact ids).
pub fn main(args: &[String]) -> i32 {
    restore_default_sigpipe();
    match parse(args) {
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
        Ok(Command::List) => {
            let registry = ArtifactRegistry::standard(&RegistryOptions::default());
            for artifact in registry.iter() {
                let marker = if artifact.composite() { "*" } else { " " };
                println!("{:<16}{marker} {}", artifact.id(), artifact.title());
            }
            println!("\n* composite: included in `run <id>` but not in `run all`");
            0
        }
        Ok(Command::Check { dir }) => check(&dir),
        Ok(Command::TraceSummary { file }) => trace_summary(&file),
        Ok(Command::Bench(opts)) => crate::bench::run(&opts),
        Ok(Command::Serve(opts)) => serve(&opts),
        Ok(Command::Query(opts)) => query(&opts),
        Ok(Command::Top(opts)) => top(&opts),
        Ok(Command::Run(opts)) => run(&opts),
    }
}

/// `xp serve`: run the `xpd` daemon over the artifact registry until a
/// client sends `--shutdown`.
fn serve(opts: &ServeOptions) -> i32 {
    let trace_session = opts
        .trace
        .is_some()
        .then(|| trace::session(trace::TraceConfig::default()));
    let engine = std::sync::Arc::new(RegistryEngine::new(
        opts.scale,
        opts.threads,
        opts.validation,
    ));
    let config = xpd::server::ServerConfig {
        socket: opts.socket.clone(),
        tcp: opts.tcp.clone(),
        store_dir: opts.store.clone(),
        store_cap_bytes: opts.store_cap_mb.saturating_mul(1024 * 1024),
        queue_cap: opts.queue_cap,
        batch_max: opts.batch_max,
        batch_window: Duration::from_millis(opts.batch_window_ms),
        durability: opts.durability,
        chaos_seed: opts.chaos_seed,
        slow_ms: opts.slow_ms,
        log_file: opts.log.clone(),
        log_cap_bytes: opts.log_cap_mb.saturating_mul(1024 * 1024),
    };
    let server = match xpd::server::Server::bind(config, engine) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xp serve: {e}");
            return 1;
        }
    };
    // SIGINT/SIGTERM request the same graceful drain a client
    // `shutdown` does: stop accepting, finish queued work, flush the
    // store, exit 0. (`kill -9` is the crash the store's recovery path
    // exists for — CI exercises both.) SIGQUIT dumps the flight
    // recorder and keeps serving.
    install_shutdown_signals(server.stop_handle(), server.flight_recorder());
    if let Some(path) = &opts.socket {
        eprintln!("xp serve: listening on {}", path.display());
    }
    if let Some(addr) = server.tcp_addr() {
        eprintln!("xp serve: listening on tcp {addr}");
    }
    eprintln!(
        "xp serve: store {} (cap {} MiB, durability {}), scale {:?}, {} thread(s)",
        opts.store.display(),
        opts.store_cap_mb,
        opts.durability,
        opts.scale,
        opts.threads
    );
    let code = match server.run() {
        Ok(()) => {
            eprintln!("xp serve: shut down cleanly");
            0
        }
        Err(e) => {
            eprintln!("xp serve: {e}");
            1
        }
    };
    if let (Some(session), Some(path)) = (trace_session, &opts.trace) {
        let snapshot = session.finish();
        let body = format!("{}\n", trace::export::chrome_trace(&snapshot).render());
        match std::fs::write(path, body) {
            Ok(()) => eprintln!(
                "xp serve: wrote {} trace event(s) to {}",
                snapshot.events.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("xp serve: cannot write {}: {e}", path.display());
                return 1;
            }
        }
    }
    code
}

/// Signal-to-drain plumbing for `xp serve`: the C handler may only
/// touch an atomic, so it trips this flag and a watcher thread performs
/// the actual graceful stop.
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Trips on SIGQUIT: the watcher dumps the flight recorder and keeps
/// serving — a diagnostic snapshot, not a shutdown.
static FLIGHT_DUMP_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

extern "C" fn on_flight_dump_signal(_signum: i32) {
    FLIGHT_DUMP_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// The one C symbol the CLI needs: `signal(2)`. `std` exposes no signal
/// API, and declaring the libc function directly keeps the workspace
/// dependency-free. Handlers travel as raw addresses so one declaration
/// covers both installing a Rust handler and restoring `SIG_DFL` (0).
unsafe fn install_signal(signum: i32, handler: usize) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    signal(signum, handler);
}

/// Rust's startup ignores SIGPIPE, which turns `xp top | head` into a
/// broken-pipe panic on the next stdout write instead of the silent
/// exit every Unix filter gives. Restore the default disposition before
/// any output happens.
fn restore_default_sigpipe() {
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe { install_signal(SIGPIPE, SIG_DFL) };
}

/// Routes SIGINT/SIGTERM to the server's graceful-stop handle and
/// SIGQUIT to an on-demand flight-recorder dump.
fn install_shutdown_signals(
    handle: xpd::server::StopHandle,
    flight: std::sync::Arc<xpd::flightrec::FlightRecorder>,
) {
    const SIGINT: i32 = 2;
    const SIGQUIT: i32 = 3;
    const SIGTERM: i32 = 15;
    unsafe {
        install_signal(SIGINT, on_shutdown_signal as *const () as usize);
        install_signal(SIGTERM, on_shutdown_signal as *const () as usize);
        install_signal(SIGQUIT, on_flight_dump_signal as *const () as usize);
    }
    let spawned = std::thread::Builder::new()
        .name("xp-serve-signals".to_string())
        .spawn(move || loop {
            if FLIGHT_DUMP_REQUESTED.swap(false, std::sync::atomic::Ordering::SeqCst) {
                match flight.dump("sigquit") {
                    Ok(path) => eprintln!("xp serve: flight recorder dumped to {}", path.display()),
                    Err(e) => eprintln!("xp serve: flight recorder dump failed: {e}"),
                }
            }
            if SHUTDOWN_REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
                eprintln!("xp serve: shutdown signal received; draining");
                handle.stop();
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        });
    if let Err(e) = spawned {
        eprintln!("xp serve: cannot watch for signals: {e}");
    }
}

/// `xp query`: one request against a running daemon, with optional
/// retries. Artifact payloads go to stdout verbatim (byte-identical to
/// the file `xp run --out` writes); digests, sources, and stats
/// commentary go to stderr.
fn query(opts: &QueryOptions) -> i32 {
    let policy = xpd::client::RetryPolicy {
        retries: opts.retries,
        backoff: opts.backoff,
        jitter_seed: u64::from(std::process::id()),
    };
    let outcome =
        xpd::client::request_with_retries(&opts.endpoint, &opts.request, opts.timeout, &policy);
    let response = match outcome {
        Ok(r) => r,
        Err(e) => {
            // Typed classification, not string matching: a retryable
            // failure that survived every attempt still names itself.
            if e.is_retryable() && opts.retries > 0 {
                eprintln!("xp query: giving up after {} retries: {e}", opts.retries);
            } else {
                eprintln!("xp query: {e}");
            }
            return 1;
        }
    };
    match response.status.as_str() {
        "busy" => {
            eprintln!(
                "xp query: daemon busy: {}",
                response.error.as_deref().unwrap_or("queue full")
            );
            3
        }
        "timeout" => {
            eprintln!(
                "xp query: {}",
                response.error.as_deref().unwrap_or("deadline expired")
            );
            4
        }
        "error" => {
            eprintln!(
                "xp query: {}",
                response.error.as_deref().unwrap_or("unknown error")
            );
            1
        }
        _ => {
            if let Some(stats) = &response.stats {
                println!("{}", stats.render_pretty().trim_end());
            } else if let Some(metrics) = &response.metrics {
                // Prometheus text rides the wire as one JSON string;
                // the JSON rendering is a structured object.
                match metrics.as_str() {
                    Some(text) => print!("{text}"),
                    None => println!("{}", metrics.render_pretty().trim_end()),
                }
                if std::io::stdout().flush().is_err() {
                    return 1;
                }
            } else if let Some(payload) = &response.payload {
                let source = match response.source {
                    Some(common::proto::Source::Store) => "store",
                    Some(common::proto::Source::Computed) => "computed",
                    None => "?",
                };
                eprintln!(
                    "xp query: {} digest={} source={source}",
                    opts.request.artifact,
                    response.digest.as_deref().unwrap_or("?")
                );
                if let Some(timing) = &response.timing {
                    // Stderr with the other commentary: the payload on
                    // stdout stays byte-identical to `xp run --out`.
                    eprintln!("xp query: timing {}", timing.render());
                }
                print!("{payload}");
                if std::io::stdout().flush().is_err() {
                    return 1;
                }
            } else {
                // Shutdown acknowledgement.
                eprintln!("xp query: daemon acknowledged");
            }
            0
        }
    }
}

/// `xp top`: a live, refreshing view of a running daemon built from its
/// `metrics` and `health` ops. Redraws in place on interactive
/// terminals; with `--once`, `NO_COLOR`, `TERM=dumb`, or a piped
/// stdout it prints plain frames instead.
fn top(opts: &TopOptions) -> i32 {
    let fancy = !opts.once && top_wants_ansi();
    let mut first = true;
    loop {
        let frame = match top_frame(&opts.endpoint) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("xp top: {e}");
                return 1;
            }
        };
        if fancy {
            // Home + clear: each frame repaints over the previous one.
            print!("\x1b[H\x1b[2J{frame}");
        } else {
            if !first {
                println!();
            }
            print!("{frame}");
        }
        if std::io::stdout().flush().is_err() {
            return 1;
        }
        if opts.once {
            return 0;
        }
        first = false;
        std::thread::sleep(opts.interval);
    }
}

/// Whether `xp top` may redraw with ANSI escapes: an interactive
/// stdout, no `NO_COLOR`, and a terminal that is not `dumb` — the same
/// detection the runtime's progress reporting uses.
fn top_wants_ansi() -> bool {
    use std::io::IsTerminal;
    std::env::var_os("NO_COLOR").is_none()
        && std::env::var("TERM").map(|t| t != "dumb").unwrap_or(true)
        && std::io::stdout().is_terminal()
}

/// One rendered `xp top` frame: readiness, uptime, queue/store gauges,
/// request rate and hit ratio, and the last minute's latency quantiles.
fn top_frame(endpoint: &xpd::client::Endpoint) -> Result<String, String> {
    let timeout = Some(Duration::from_secs(5));
    let mut conn =
        xpd::client::Connection::connect(endpoint, timeout).map_err(|e| e.message().to_string())?;
    let metrics = conn
        .request(&common::proto::QueryRequest::metrics(
            common::proto::MetricsFormat::Json,
        ))
        .map_err(|e| e.message().to_string())?;
    let health = conn
        .request(&common::proto::QueryRequest::health())
        .map_err(|e| e.message().to_string())?;
    let doc = metrics
        .metrics
        .ok_or_else(|| "daemon answered without a metrics document".to_string())?;
    let ready = match health
        .stats
        .as_ref()
        .and_then(|h| h.get("ready"))
        .and_then(Json::as_bool)
    {
        Some(true) => "ready",
        Some(false) => "not ready",
        None => "?",
    };

    let num = |path: &[&str]| -> f64 {
        let mut cur = &doc;
        for key in path {
            match cur.get(key) {
                Some(next) => cur = next,
                None => return 0.0,
            }
        }
        cur.as_f64().unwrap_or(0.0)
    };
    let hits = num(&["counters", "xpd.store.hit"]);
    let misses = num(&["counters", "xpd.store.miss"]);
    let lookups = hits + misses;

    let mut out = String::new();
    out.push_str(&format!(
        "xpd {endpoint} — {ready}, up {}, pid {}\n",
        format_uptime(num(&["uptime_secs"])),
        num(&["pid"]) as u64
    ));
    out.push_str(&format!(
        "queue {}/{}   in-flight {}   store {} entries / {:.1} MiB\n",
        num(&["gauges", "queue_depth"]) as u64,
        num(&["gauges", "queue_cap"]) as u64,
        num(&["gauges", "inflight"]) as u64,
        num(&["gauges", "store_entries"]) as u64,
        num(&["gauges", "store_bytes"]) / (1024.0 * 1024.0)
    ));
    out.push_str(&format!(
        "requests {} total   {:.2}/s (1m)",
        num(&["counters", "xpd.request"]) as u64,
        num(&["window_1m", "rates", "xpd.request"])
    ));
    if lookups > 0.0 {
        out.push_str(&format!("   hit ratio {:.1}%", 100.0 * hits / lookups));
    }
    let chaos = num(&["counters", "xpd.chaos.injected"]);
    if chaos > 0.0 {
        out.push_str(&format!("   chaos {}", chaos as u64));
    }
    out.push('\n');
    let latency = doc
        .get("window_1m")
        .and_then(|w| w.get("latency"))
        .and_then(Json::as_object)
        .unwrap_or(&[]);
    if !latency.is_empty() {
        out.push_str("latency, last 1m (ms):\n");
        for (name, h) in latency {
            let short = name.strip_prefix("xpd.").unwrap_or(name);
            let g = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            out.push_str(&format!(
                "  {short:<28} p50 {:>9.2}  p99 {:>9.2}  max {:>9.2}  (n={})\n",
                g("p50_ms"),
                g("p99_ms"),
                g("max_ms"),
                g("count") as u64
            ));
        }
    }
    Ok(out)
}

/// `4242.0` seconds → `"1h10m"`, `"7m02s"`, or `"42s"`.
fn format_uptime(secs: f64) -> String {
    let s = secs as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// `xp trace summary <file>`: rebuild per-span statistics (count, total,
/// p50/p90/p99, max) from an exported Chrome trace and print them as a
/// table, largest total first, followed by a table of the trace's
/// counters (e.g. the `sim.ff.*` fast-forward statistics).
fn trace_summary(file: &Path) -> i32 {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xp trace summary: cannot read {}: {e}", file.display());
            return 1;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "xp trace summary: {} is not valid JSON: {e}",
                file.display()
            );
            return 1;
        }
    };
    let (stats, unmatched) = match trace::export::span_stats_from_chrome_trace(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xp trace summary: {}: {e}", file.display());
            return 1;
        }
    };
    let counters = trace::export::counters_from_chrome_trace(&json).unwrap_or_default();
    if stats.is_empty() && counters.is_empty() {
        println!("no span or counter events in {}", file.display());
        return 0;
    }
    if !stats.is_empty() {
        print!("{}", trace::export::summary_table(&stats));
    }
    if !counters.is_empty() {
        if !stats.is_empty() {
            println!();
        }
        print!("{}", trace::export::counters_table(&counters));
        if let Some(block) = xpd_counters_block(&counters) {
            print!("{block}");
        }
    }
    if unmatched > 0 {
        eprintln!(
            "xp trace summary: {unmatched} unmatched event(s) skipped \
             (ring buffers dropped their oldest events during capture)"
        );
    }
    0
}

/// Derived serving statistics for traces that carry `xpd.*` counters
/// (a daemon session recorded with `xp serve --trace`): store hit rate,
/// in-flight dedup joins, queue pressure, and batching shape. `None`
/// when the trace has no daemon activity.
fn xpd_counters_block(counters: &[(String, u64)]) -> Option<String> {
    if !counters.iter().any(|(name, _)| name.starts_with("xpd.")) {
        return None;
    }
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let hits = get("xpd.store.hit");
    let misses = get("xpd.store.miss");
    let lookups = hits + misses;
    let batches = get("xpd.batch");
    let points = get("xpd.batch_points");
    let mut out = String::new();
    out.push_str("\nserving (xpd):\n");
    out.push_str(&format!("  requests          {:>8}\n", get("xpd.request")));
    if lookups > 0 {
        out.push_str(&format!(
            "  store hit rate    {:>7.1}% ({hits} hit / {misses} miss)\n",
            100.0 * hits as f64 / lookups as f64
        ));
    }
    out.push_str(&format!(
        "  store evictions   {:>8}\n",
        get("xpd.store.eviction")
    ));
    if get("xpd.store.corrupt") > 0 {
        out.push_str(&format!(
            "  store quarantined {:>8}  (checksum failures, self-healed)\n",
            get("xpd.store.corrupt")
        ));
    }
    out.push_str(&format!(
        "  in-flight joins   {:>8}\n",
        get("xpd.inflight_join")
    ));
    out.push_str(&format!(
        "  queue peak depth  {:>8}  (enqueued {}, rejected {})\n",
        get("xpd.queue.peak_depth"),
        get("xpd.queue.enqueued"),
        get("xpd.queue.rejected")
    ));
    if get("xpd.timeout") > 0 {
        out.push_str(&format!("  deadline expiries {:>8}\n", get("xpd.timeout")));
    }
    if get("xpd.chaos.injected") > 0 {
        out.push_str(&format!(
            "  chaos injections  {:>8}\n",
            get("xpd.chaos.injected")
        ));
    }
    if batches > 0 {
        out.push_str(&format!(
            "  batches           {:>8}  (mean {:.1} queries/batch)\n",
            batches,
            points as f64 / batches as f64
        ));
    }
    Some(out)
}

fn run(opts: &RunOptions) -> i32 {
    let registry = ArtifactRegistry::standard(&RegistryOptions {
        validation: opts.validation,
    });

    // Resolve ids; `all` expands to every non-composite artifact.
    let mut ids: Vec<&str> = Vec::new();
    for id in &opts.ids {
        if id == "all" {
            for a in registry.all_ids() {
                if !ids.contains(&a) {
                    ids.push(a);
                }
            }
        } else if registry.get(id).is_some() {
            if !ids.contains(&id.as_str()) {
                ids.push(registry.get(id).unwrap().id());
            }
        } else {
            eprintln!("xp run: unknown artifact {id:?} (try `xp list`)");
            return 2;
        }
    }

    // Fail fast on an unusable --out before any simulation work.
    if let Some(dir) = &opts.out {
        if let Err(msg) = prepare_out_dir(dir) {
            eprintln!("{msg}");
            return 1;
        }
    }

    // Prior journal records (last per artifact) when resuming.
    let prior: Vec<(String, Json)> = if opts.resume {
        match load_journal(opts.out.as_deref().expect("--resume implies --out")) {
            Ok(j) => j,
            Err(msg) => {
                eprintln!("{msg}");
                return 1;
            }
        }
    } else {
        Vec::new()
    };

    let started = Instant::now();

    // Decide, per artifact, whether a journaled result still stands:
    // status ok, same config digest, artifact file still on disk.
    let mut digests: Vec<(String, String)> = Vec::new();
    let mut to_run: Vec<&str> = Vec::new();
    let mut resumed: Vec<&str> = Vec::new();
    for id in &ids {
        let art_digest = artifact_digest(
            &registry.get(id).unwrap().plan(),
            opts.scale,
            opts.validation,
        );
        let keep = opts.resume
            && prior.iter().any(|(k, rec)| {
                k == *id
                    && rec.get("status").and_then(Json::as_str) == Some("ok")
                    && rec.get("digest").and_then(Json::as_str) == Some(art_digest.as_str())
            })
            && opts
                .out
                .as_ref()
                .map(|d| d.join(format!("{id}.json")).is_file())
                .unwrap_or(false);
        digests.push(((*id).to_string(), art_digest));
        if keep {
            resumed.push(id);
        } else {
            to_run.push(id);
        }
    }
    if opts.resume {
        eprintln!(
            "xp run: resuming; {} artifact(s) up to date, {} to run",
            resumed.len(),
            to_run.len()
        );
    }

    // Recording starts before the lab exists so the batch prime, every
    // artifact evaluation, and all runtime/sim/silicon activity under
    // them land in one session.
    let trace_session = (opts.trace.is_some() || opts.metrics_out.is_some())
        .then(|| trace::session(trace::TraceConfig::default()));

    let mut lab = Lab::with_threads(opts.scale, opts.threads);
    let mut policy = RetryPolicy::retries(opts.retries);
    if let Some(deadline) = opts.point_timeout {
        policy = policy.with_deadline(deadline);
    }
    lab = lab.with_retry_policy(policy);
    if let Some(spec) = &opts.faults {
        lab = lab.with_faults(spec.fault_plan());
        silicon::arm_sensor_faults(spec.sensor_faults());
    }
    let _sensor_guard = SensorFaultGuard;
    let suite = default_suite();

    // Union the plans of the artifacts that will actually run.
    let mut plan = SweepPlan::none();
    for id in &to_run {
        plan.merge(registry.get(id).unwrap().plan());
    }
    let mut configs: Vec<ExpConfig> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for cfg in plan.configs {
        if seen.insert(format!("{cfg:?}")) {
            configs.push(cfg);
        }
    }
    let digest = config_digest(&configs);

    // Pre-warm the shared fit cache so per-artifact fits are lookups.
    if plan.needs_fit {
        let _ = validation::fit_model_cached(opts.scale);
    }

    // One batch prime through the executor; artifact-internal primes
    // against the same points become cache hits. A fully-resumed batch
    // primes nothing.
    let mut points = Vec::with_capacity(suite.len() * (configs.len() + 1));
    if !to_run.is_empty() {
        for w in &suite {
            points.push((w.clone(), ExpConfig::baseline()));
            for cfg in &configs {
                points.push((w.clone(), cfg.clone()));
            }
        }
    }
    let sweep_report = lab.prime(&points);

    // The journal is rewritten each run: surviving records are carried
    // over as artifacts are visited, fresh records appended and flushed
    // as each artifact finishes, so a crash loses at most the artifact
    // in flight.
    let mut journal_file = match &opts.out {
        Some(dir) => {
            let path = dir.join("journal.jsonl");
            match std::fs::File::create(&path) {
                Ok(f) => Some(f),
                Err(e) => {
                    eprintln!("xp run: cannot write {}: {e}", path.display());
                    return 1;
                }
            }
        }
        None => None,
    };
    let journal_append = |file: &mut Option<std::fs::File>, rec: &Json| -> Result<(), String> {
        if let Some(f) = file.as_mut() {
            f.write_all(rec.render_jsonl_line().as_bytes())
                .and_then(|()| f.flush())
                .map_err(|e| format!("xp run: cannot append to journal: {e}"))?;
        }
        Ok(())
    };

    let mut manifest_artifacts = Json::array();
    let mut failures: Vec<ArtifactError> = Vec::new();
    let multi = ids.len() > 1;
    for id in &ids {
        let artifact = registry.get(id).unwrap();
        let art_digest = digests
            .iter()
            .find(|(k, _)| k == *id)
            .map(|(_, d)| d.clone())
            .unwrap();

        let mut entry = Json::object();
        entry.insert("id", artifact.id());
        entry.insert("title", artifact.title());

        if resumed.contains(id) {
            eprintln!("xp run: {id}: up to date, skipped (resume)");
            entry.insert("resumed", true);
            entry.insert("file", format!("{id}.json").as_str());
            manifest_artifacts.push(entry);
            let rec = prior
                .iter()
                .find(|(k, _)| k == *id)
                .map(|(_, r)| r.clone())
                .unwrap();
            if let Err(msg) = journal_append(&mut journal_file, &rec) {
                eprintln!("{msg}");
                return 1;
            }
            continue;
        }

        let eval_started = Instant::now();
        // Per-artifact span with a dynamic name; the string only
        // materializes while a session records.
        let _artifact_span = if trace::enabled() {
            trace::span(format!("xp.artifact.{id}"))
        } else {
            trace::Span::disabled()
        };
        // Isolate each artifact: a panic (e.g. an injected fault that
        // exhausted its retries) fails this artifact, not the batch.
        let outcome = catch_unwind(AssertUnwindSafe(|| artifact.evaluate(&lab, &suite)));
        let elapsed = eval_started.elapsed().as_secs_f64();
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => Err(ArtifactError::new(
                *id,
                "evaluate",
                ArtifactErrorKind::Sweep(runtime::cache::panic_message(payload.as_ref())),
            )),
        };
        entry.insert("eval_secs", elapsed);

        let mut journal_rec = Json::object();
        journal_rec.insert("artifact", *id);
        journal_rec.insert("digest", art_digest.as_str());

        match result {
            Ok(data) => {
                if opts.format.wants_text() {
                    if multi {
                        println!("== {id} ==");
                    }
                    print!("{}", data.text);
                }
                journal_rec.insert("status", "ok");
                if let Some(dir) = &opts.out {
                    let file = format!("{id}.json");
                    let path = dir.join(&file);
                    if let Err(e) =
                        std::fs::write(&path, format!("{}\n", data.json.render_pretty()))
                    {
                        eprintln!("xp run: cannot write {}: {e}", path.display());
                        return 1;
                    }
                    entry.insert("file", file.as_str());
                    journal_rec.insert("file", file.as_str());
                } else if opts.format.wants_json() {
                    println!("{}", data.json.render_pretty());
                }
            }
            Err(err) => {
                eprintln!("xp run: {err} (continuing with remaining artifacts)");
                entry.insert("error", err.to_json());
                journal_rec.insert("status", "failed");
                journal_rec.insert("error", err.to_string().as_str());
                failures.push(err);
            }
        }
        journal_rec.insert("eval_secs", elapsed);
        manifest_artifacts.push(entry);
        if let Err(msg) = journal_append(&mut journal_file, &journal_rec) {
            eprintln!("{msg}");
            return 1;
        }
    }

    if let Some(dir) = &opts.out {
        let mut manifest = Json::object();
        manifest.insert("schema_version", 1usize);
        manifest.insert("scale", format!("{:?}", opts.scale).as_str());
        manifest.insert("threads", lab.threads());
        manifest.insert("validation", opts.validation);
        manifest.insert("config_digest", digest.as_str());
        manifest.insert("planned_configs", configs.len());
        let mut suite_names = Json::array();
        for w in &suite {
            suite_names.push(w.name);
        }
        manifest.insert("suite", suite_names);
        manifest.insert("artifacts", manifest_artifacts);
        let mut failed = Json::array();
        for err in &failures {
            failed.push(err.to_json());
        }
        manifest.insert("failed_artifacts", failed);
        manifest.insert("resumed_artifacts", resumed.len());
        manifest.insert("sweep", sweep_report.to_json());
        let mut history = Json::array();
        for m in lab.sweep_history() {
            history.push(m.to_json());
        }
        manifest.insert("sweeps", history);
        manifest.insert("cached_runs", lab.cached_runs());
        manifest.insert("wall_time_secs", started.elapsed().as_secs_f64());
        let path = dir.join("manifest.json");
        if let Err(e) = std::fs::write(&path, format!("{}\n", manifest.render_pretty())) {
            eprintln!("xp run: cannot write {}: {e}", path.display());
            return 1;
        }
        eprintln!(
            "wrote {} artifact file(s) + manifest.json to {}",
            ids.len(),
            dir.display()
        );
    }

    if let Some(session) = trace_session {
        let snapshot = session.finish();
        if let Some(path) = &opts.trace {
            let body = format!("{}\n", trace::export::chrome_trace(&snapshot).render());
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("xp run: cannot write {}: {e}", path.display());
                return 1;
            }
            eprintln!(
                "wrote {} trace event(s) to {} (load in perfetto or chrome://tracing)",
                snapshot.events.len(),
                path.display()
            );
            if snapshot.dropped_events > 0 {
                eprintln!(
                    "xp run: trace ring buffers dropped {} oldest event(s); \
                     histograms still cover every span",
                    snapshot.dropped_events
                );
            }
        }
        if let Some(path) = &opts.metrics_out {
            let mut metrics = Json::object();
            metrics.insert("schema_version", 1usize);
            metrics.insert("trace", trace::export::summary(&snapshot));
            metrics.insert("sweep", sweep_report.to_json());
            if let Err(e) = std::fs::write(path, format!("{}\n", metrics.render_pretty())) {
                eprintln!("xp run: cannot write {}: {e}", path.display());
                return 1;
            }
            eprintln!("wrote metrics summary to {}", path.display());
        }
    }

    lab.print_sweep_summary();
    if failures.is_empty() {
        0
    } else {
        eprintln!(
            "xp run: {} of {} artifact(s) failed",
            failures.len(),
            ids.len()
        );
        1
    }
}

/// `xp check <dir>`: every JSON file `run --out` emitted must re-parse
/// through the strict parser, and the manifest must reference only files
/// that exist. The CI gate against schema regressions.
fn check(dir: &Path) -> i32 {
    let manifest_path = dir.join("manifest.json");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xp check: cannot read {}: {e}", manifest_path.display());
            return 1;
        }
    };
    let manifest = match Json::parse(&manifest) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "xp check: {} is not valid JSON: {e}",
                manifest_path.display()
            );
            return 1;
        }
    };

    let artifacts = match manifest.get("artifacts").and_then(Json::as_array) {
        Some(a) => a,
        None => {
            eprintln!(
                "xp check: {} has no `artifacts` array",
                manifest_path.display()
            );
            return 1;
        }
    };

    let mut checked = 0usize;
    for entry in artifacts {
        let id = entry.get("id").and_then(Json::as_str).unwrap_or("?");
        let Some(file) = entry.get("file").and_then(Json::as_str) else {
            continue;
        };
        let path = dir.join(file);
        let body = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "xp check: artifact {id}: cannot read {}: {e}",
                    path.display()
                );
                return 1;
            }
        };
        let json = match Json::parse(&body) {
            Ok(j) => j,
            Err(e) => {
                eprintln!(
                    "xp check: artifact {id}: {} is not valid JSON: {e}",
                    path.display()
                );
                return 1;
            }
        };
        if json.get("id").and_then(Json::as_str) != Some(id) {
            eprintln!(
                "xp check: artifact {id}: {} has mismatched `id`",
                path.display()
            );
            return 1;
        }
        checked += 1;
    }
    println!("xp check: manifest.json + {checked} artifact file(s) parse cleanly");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_rejects_unknown_commands_and_empty_runs() {
        assert!(parse(&argv(&["frobnicate"])).is_err());
        assert!(parse(&argv(&["run"])).is_err());
        assert!(parse(&argv(&["run", "--format", "yaml", "fig2"])).is_err());
        assert!(parse(&argv(&["check"])).is_err());
    }

    #[test]
    fn parse_accepts_the_documented_flags() {
        let Ok(Command::Run(opts)) = parse(&argv(&[
            "run",
            "all",
            "--smoke",
            "--threads",
            "2",
            "--no-validation",
            "--format",
            "both",
            "--out",
            "results",
            "--retries",
            "3",
            "--point-timeout-ms",
            "1500",
            "--faults",
            "seed=7,panic=0.2,poison=0.1",
            "--trace",
            "out.trace.json",
            "--metrics-out",
            "metrics.json",
        ])) else {
            panic!("expected a run command");
        };
        assert_eq!(opts.ids, vec!["all"]);
        assert_eq!(opts.scale, Scale::Smoke);
        assert_eq!(opts.threads, 2);
        assert!(!opts.validation);
        assert_eq!(opts.format, Format::Both);
        assert_eq!(opts.out.as_deref(), Some(Path::new("results")));
        assert!(!opts.resume);
        assert_eq!(opts.retries, 3);
        assert_eq!(opts.point_timeout, Some(Duration::from_millis(1500)));
        let spec = opts.faults.expect("faults parsed");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.panic, 0.2);
        assert_eq!(spec.poison, 0.1);
        assert_eq!(spec.nan, 0.0);
        assert_eq!(opts.trace.as_deref(), Some(Path::new("out.trace.json")));
        assert_eq!(opts.metrics_out.as_deref(), Some(Path::new("metrics.json")));
    }

    #[test]
    fn trace_summary_parses_and_rejects_bad_forms() {
        let Ok(Command::TraceSummary { file }) = parse(&argv(&["trace", "summary", "t.json"]))
        else {
            panic!("expected a trace summary command");
        };
        assert_eq!(file, Path::new("t.json"));
        assert!(parse(&argv(&["trace"])).is_err());
        assert!(parse(&argv(&["trace", "summary"])).is_err());
        assert!(parse(&argv(&["trace", "frobnicate", "t.json"])).is_err());
        // Flags stay run-only.
        assert!(parse(&argv(&["run", "fig2", "--trace"])).is_err());
        assert!(parse(&argv(&["run", "fig2", "--metrics-out"])).is_err());
    }

    #[test]
    fn threads_parsing_is_strict() {
        assert!(parse(&argv(&["run", "fig2", "--threads", "0"])).is_err());
        assert!(parse(&argv(&["run", "fig2", "--threads", "two"])).is_err());
        assert!(parse(&argv(&["run", "fig2", "--threads"])).is_err());
        assert!(parse(&argv(&["run", "fig2", "--threads=08x"])).is_err());
        let Ok(Command::Run(opts)) = parse(&argv(&["run", "fig2", "--threads=3"])) else {
            panic!("expected a run command");
        };
        assert_eq!(opts.threads, 3);
    }

    #[test]
    fn resume_and_out_are_mutually_exclusive() {
        assert!(parse(&argv(&["run", "fig2", "--out", "a", "--resume", "a"])).is_err());
        let Ok(Command::Run(opts)) = parse(&argv(&["run", "fig2", "--resume", "prior"])) else {
            panic!("expected a run command");
        };
        assert!(opts.resume);
        assert_eq!(opts.out.as_deref(), Some(Path::new("prior")));
    }

    #[test]
    fn fault_specs_parse_and_reject_bad_input() {
        let spec = FaultSpec::parse(
            "seed=9,panic=0.1,delay=0.05,delay-ms=20,poison=0.2,nan=0.3,dropout=0.4",
        )
        .unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.delay_ms, 20);
        assert_eq!(spec.dropout, 0.4);
        assert!(spec.sensor_faults().is_some());
        assert!(!spec.fault_plan().is_noop());

        // Rates outside [0, 1], unknown keys, and bare words are errors.
        assert!(FaultSpec::parse("panic=1.5").is_err());
        assert!(FaultSpec::parse("frobnicate=1").is_err());
        assert!(FaultSpec::parse("panic").is_err());

        // A runtime-only spec arms no sensor faults.
        let spec = FaultSpec::parse("seed=1,panic=0.5").unwrap();
        assert!(spec.sensor_faults().is_none());
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let a = vec![ExpConfig::baseline()];
        let b = vec![ExpConfig::baseline()];
        assert_eq!(config_digest(&a), config_digest(&b));
        assert_ne!(config_digest(&a), config_digest(&[]));
    }

    #[test]
    fn digest_is_pinned_across_engine_changes() {
        // The manifest digest fingerprints the *configuration*, not the
        // machinery that ran it: engine-mode or performance work must
        // never shift it (it gates `--resume`). If this value changes,
        // the sweep's meaning changed — not just its speed.
        assert_eq!(config_digest(&[ExpConfig::baseline()]), "c0388d6bd40c1e46");
    }

    #[test]
    fn bench_parsing_accepts_documented_flags() {
        let Ok(Command::Bench(opts)) = parse(&argv(&[
            "bench",
            "--quick",
            "--out",
            "b.json",
            "--baseline",
            "base.json",
            "--filter",
            "memory",
            "--baseline-update",
            "--allow-regress",
            "--threads",
            "4",
        ])) else {
            panic!("expected a bench command");
        };
        assert!(opts.quick);
        assert_eq!(opts.out.as_deref(), Some(Path::new("b.json")));
        assert_eq!(opts.baseline.as_deref(), Some(Path::new("base.json")));
        assert_eq!(opts.filter.as_deref(), Some("memory"));
        assert!(opts.baseline_update);
        assert!(opts.allow_regress);
        assert_eq!(opts.threads, Some(4));

        let Ok(Command::Bench(opts)) = parse(&argv(&["bench"])) else {
            panic!("expected a bench command");
        };
        assert!(!opts.quick);
        assert!(opts.out.is_none());
        assert!(!opts.baseline_update);
        assert!(!opts.allow_regress);
        assert_eq!(opts.threads, None);

        let Ok(Command::Bench(opts)) = parse(&argv(&["bench", "--threads=8"])) else {
            panic!("expected a bench command");
        };
        assert_eq!(opts.threads, Some(8));

        assert!(parse(&argv(&["bench", "--frobnicate"])).is_err());
        assert!(parse(&argv(&["bench", "--out"])).is_err());
        assert!(parse(&argv(&["bench", "--baseline"])).is_err());
        assert!(parse(&argv(&["bench", "--filter"])).is_err());
        assert!(parse(&argv(&["bench", "--threads", "0"])).is_err());
        assert!(parse(&argv(&["bench", "--threads", "x"])).is_err());
    }

    #[test]
    fn serve_parsing_covers_the_documented_flags() {
        let Ok(Command::Serve(opts)) = parse(&argv(&[
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--socket",
            "/tmp/xpd.sock",
            "--store",
            "store-dir",
            "--store-cap-mb",
            "64",
            "--queue-cap",
            "4",
            "--batch-max",
            "2",
            "--batch-window-ms",
            "5",
            "--smoke",
            "--threads",
            "2",
            "--no-validation",
            "--trace",
            "serve.trace.json",
            "--slow-ms",
            "250",
            "--log",
            "events.jsonl",
            "--log-cap-mb",
            "8",
        ])) else {
            panic!("expected a serve command");
        };
        assert_eq!(opts.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.socket.as_deref(), Some(Path::new("/tmp/xpd.sock")));
        assert_eq!(opts.store, Path::new("store-dir"));
        assert_eq!(opts.store_cap_mb, 64);
        assert_eq!(opts.queue_cap, 4);
        assert_eq!(opts.batch_max, 2);
        assert_eq!(opts.batch_window_ms, 5);
        assert_eq!(opts.scale, Scale::Smoke);
        assert_eq!(opts.threads, 2);
        assert!(!opts.validation);
        assert_eq!(opts.trace.as_deref(), Some(Path::new("serve.trace.json")));
        assert_eq!(opts.slow_ms, Some(250));
        assert_eq!(opts.log.as_deref(), Some(Path::new("events.jsonl")));
        assert_eq!(opts.log_cap_mb, 8);

        // An endpoint is required; bad numbers are rejected.
        assert!(parse(&argv(&["serve"])).is_err());
        assert!(parse(&argv(&["serve", "--tcp", "x", "--store-cap-mb", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--tcp", "x", "--queue-cap", "none"])).is_err());
        assert!(parse(&argv(&["serve", "--tcp", "x", "--slow-ms", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--tcp", "x", "--log-cap-mb", "no"])).is_err());
        assert!(parse(&argv(&["serve", "--frobnicate"])).is_err());

        // Telemetry flags stay off by default.
        let Ok(Command::Serve(opts)) = parse(&argv(&["serve", "--tcp", "127.0.0.1:0"])) else {
            panic!("expected a serve command");
        };
        assert_eq!(opts.slow_ms, None);
        assert!(opts.log.is_none());
        assert_eq!(opts.log_cap_mb, 0);
    }

    #[test]
    fn top_parsing_requires_an_endpoint() {
        let Ok(Command::Top(opts)) = parse(&argv(&[
            "top",
            "--tcp",
            "127.0.0.1:7070",
            "--interval-ms",
            "500",
            "--once",
        ])) else {
            panic!("expected a top command");
        };
        assert_eq!(
            opts.endpoint,
            xpd::client::Endpoint::Tcp("127.0.0.1:7070".to_string())
        );
        assert_eq!(opts.interval, Duration::from_millis(500));
        assert!(opts.once);

        let Ok(Command::Top(opts)) = parse(&argv(&["top", "--socket", "/tmp/x"])) else {
            panic!("expected a top command");
        };
        assert_eq!(opts.interval, Duration::from_millis(2000));
        assert!(!opts.once);

        assert!(parse(&argv(&["top"])).is_err());
        assert!(parse(&argv(&["top", "--tcp", "h:1", "--socket", "s"])).is_err());
        assert!(parse(&argv(&["top", "--tcp", "h:1", "--interval-ms", "0"])).is_err());
        assert!(parse(&argv(&["top", "--tcp", "h:1", "--frobnicate"])).is_err());
    }

    #[test]
    fn query_parsing_builds_requests() {
        use common::proto::RequestOp;
        let Ok(Command::Query(q)) = parse(&argv(&[
            "query",
            "fig6",
            "--tcp",
            "127.0.0.1:7070",
            "--set",
            "bw=2x",
            "--set",
            "gpms=16",
            "--timeout-ms",
            "250",
        ])) else {
            panic!("expected a query command");
        };
        assert_eq!(q.request.op, RequestOp::Query);
        assert_eq!(q.request.artifact, "fig6");
        assert_eq!(q.request.sets.len(), 2);
        assert_eq!(
            q.endpoint,
            xpd::client::Endpoint::Tcp("127.0.0.1:7070".to_string())
        );
        assert_eq!(q.timeout, Some(Duration::from_millis(250)));

        let Ok(Command::Query(q)) = parse(&argv(&["query", "--stats", "--socket", "/tmp/x"]))
        else {
            panic!("expected a stats query");
        };
        assert_eq!(q.request.op, RequestOp::Stats);
        let Ok(Command::Query(q)) = parse(&argv(&["query", "--shutdown", "--tcp", "h:1"])) else {
            panic!("expected a shutdown query");
        };
        assert_eq!(q.request.op, RequestOp::Shutdown);
        let Ok(Command::Query(q)) = parse(&argv(&["query", "--metrics", "--tcp", "h:1"])) else {
            panic!("expected a metrics query");
        };
        assert_eq!(q.request.op, RequestOp::Metrics);
        assert_eq!(q.request.format, common::proto::MetricsFormat::Json);
        let Ok(Command::Query(q)) = parse(&argv(&["query", "--prometheus", "--tcp", "h:1"])) else {
            panic!("expected a prometheus metrics query");
        };
        assert_eq!(q.request.op, RequestOp::Metrics);
        assert_eq!(q.request.format, common::proto::MetricsFormat::Prometheus);
        let Ok(Command::Query(q)) = parse(&argv(&["query", "fig6", "--timing", "--tcp", "h:1"]))
        else {
            panic!("expected a timed artifact query");
        };
        assert!(q.request.timing);

        // Usage errors: endpoint required, one artifact, exclusive modes.
        assert!(parse(&argv(&["query", "fig6"])).is_err());
        assert!(parse(&argv(&["query", "--tcp", "h:1"])).is_err());
        assert!(parse(&argv(&["query", "fig6", "fig7", "--tcp", "h:1"])).is_err());
        assert!(parse(&argv(&["query", "fig6", "--tcp", "h:1", "--socket", "s"])).is_err());
        assert!(parse(&argv(&["query", "fig6", "--stats", "--tcp", "h:1"])).is_err());
        assert!(parse(&argv(&["query", "fig6", "--metrics", "--tcp", "h:1"])).is_err());
        assert!(parse(&argv(&["query", "--stats", "--timing", "--tcp", "h:1"])).is_err());
        assert!(parse(&argv(&[
            "query",
            "--metrics",
            "--tcp",
            "h:1",
            "--set",
            "bw=2x"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "query", "--stats", "--tcp", "h:1", "--set", "bw=2x"
        ]))
        .is_err());
        assert!(parse(&argv(&["query", "fig6", "--tcp", "h:1", "--set", "bw2x"])).is_err());
        assert!(parse(&argv(&[
            "query", "fig6", "--tcp", "h:1", "--set", "bw=2x", "--set", "bw=4x"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "query",
            "fig6",
            "--tcp",
            "h:1",
            "--timeout-ms",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn xpd_counter_block_renders_hit_rate_and_batching() {
        let counters = vec![
            ("xpd.request".to_string(), 10),
            ("xpd.store.hit".to_string(), 6),
            ("xpd.store.miss".to_string(), 2),
            ("xpd.store.eviction".to_string(), 1),
            ("xpd.inflight_join".to_string(), 2),
            ("xpd.queue.enqueued".to_string(), 2),
            ("xpd.queue.peak_depth".to_string(), 2),
            ("xpd.batch".to_string(), 2),
            ("xpd.batch_points".to_string(), 2),
        ];
        let block = xpd_counters_block(&counters).expect("xpd counters present");
        assert!(block.contains("serving (xpd)"), "{block}");
        assert!(block.contains("75.0%"), "{block}");
        assert!(block.contains("mean 1.0 queries/batch"), "{block}");
        // Traces without daemon activity stay untouched.
        assert!(xpd_counters_block(&[("cache.hit".to_string(), 3)]).is_none());
    }

    #[test]
    fn artifact_digests_track_scale_and_plan() {
        let plan = SweepPlan::sweep(vec![ExpConfig::baseline()]);
        let a = artifact_digest(&plan, Scale::Smoke, true);
        assert_eq!(a, artifact_digest(&plan, Scale::Smoke, true));
        assert_ne!(a, artifact_digest(&plan, Scale::Full, true));
        assert_ne!(a, artifact_digest(&plan, Scale::Smoke, false));
        assert_ne!(a, artifact_digest(&SweepPlan::none(), Scale::Smoke, true));
    }

    #[test]
    fn unknown_artifact_id_is_a_usage_error() {
        assert_eq!(main(&argv(&["run", "no_such_artifact", "--smoke"])), 2);
    }
}
