//! Deterministic per-case RNG for the test runner.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// The generator handed to strategies for one test case.
///
/// Seeded from a hash of the fully qualified test name and the case
/// index, so every run of the suite generates the same inputs — a
/// failing case reproduces without any persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
