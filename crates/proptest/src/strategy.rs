//! The [`Strategy`] trait and the built-in strategy types.

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and derives a second strategy
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate by re-drawing
    /// (bounded retries; panics if the predicate is pathologically
    /// selective).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Boxes a strategy for heterogeneous unions (see [`Union`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`crate::any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// String literals act as pattern strategies. Supported syntax is the
/// subset this workspace uses: concatenations of literal characters and
/// character classes `[a-z]`, each optionally followed by `{m,n}` or
/// `{n}` repetition. Unsupported patterns generate themselves verbatim.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match generate_pattern(self, rng) {
            Some(s) => s,
            None => (*self).to_string(),
        }
    }
}

fn generate_pattern(pat: &str, rng: &mut TestRng) -> Option<String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal char.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..].iter().position(|&c| c == ']')? + i;
            let mut alpha = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        alpha.push(char::from_u32(c)?);
                    }
                    j += 3;
                } else {
                    alpha.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            alpha
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        if alphabet.is_empty() {
            return None;
        }
        // Optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}')? + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
                None => {
                    let n: usize = body.trim().parse().ok()?;
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        if lo > hi {
            return None;
        }
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    Some(out)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10_u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let f = (0.25_f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
            let s = (-5_i32..=5).generate(&mut r);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn pattern_strategy_matches_class_and_reps() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{3,8}".generate(&mut r);
            assert!(s.len() >= 3 && s.len() <= 8, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let strat = (1_u32..5, 0.0_f64..1.0).prop_map(|(n, f)| n as f64 + f);
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((1.0..5.0).contains(&v));
        }
    }
}
