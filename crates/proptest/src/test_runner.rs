//! Runner configuration for the `proptest!` macro.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; that keeps this workspace's
        // heavier simulator properties comfortably fast too.
        ProptestConfig { cases: 256 }
    }
}
