#![warn(missing_docs)]

//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the subset of the proptest 1.x API the workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range/tuple/collection
//! strategies, `any::<T>()`, `prop_oneof!`, simple `[a-z]{m,n}` string
//! patterns, and the `proptest!` / `prop_assert*` macro family driven by
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case index and the
//!   assertion message; re-running is deterministic (cases are seeded
//!   from a fixed per-test stream), so failures reproduce exactly.
//! * **Uniform generation only** — no bias toward edge values.

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

use strategy::{Any, Arbitrary};

/// The strategy producing any value of `T` (uniform over the domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case with
/// a formatted message instead of panicking (so the runner can attach
/// case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold (counted as
/// a pass; this runner does not re-draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `#[test] fn name(bindings) { body }`
/// block becomes a standard `#[test]` that runs the body over
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests $cfg; $($rest)*);
    };
    (@tests $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::rng::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        $crate::proptest!(@bind __proptest_rng; $body; $($params)*);
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} for `{}` failed:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
    (@bind $rng:ident; $body:block;) => {
        (move || -> ::std::result::Result<(), ::std::string::String> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    (@bind $rng:ident; $body:block; mut $name:ident in $strat:expr) => {{
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $body;)
    }};
    (@bind $rng:ident; $body:block; mut $name:ident in $strat:expr, $($rest:tt)*) => {{
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $body; $($rest)*)
    }};
    (@bind $rng:ident; $body:block; $name:ident in $strat:expr) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $body;)
    }};
    (@bind $rng:ident; $body:block; $name:ident in $strat:expr, $($rest:tt)*) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $body; $($rest)*)
    }};
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ::std::default::Default::default(); $($rest)*);
    };
}
