//! Manual inspection helper: dump the fitted model for either the fast
//! (tiny) or the paper-scale configuration.
//!
//! ```sh
//! cargo test -p microbench --test dump_fitted_model --release -- --ignored --nocapture
//! ```

use microbench::{fit, FitConfig};
use silicon::VirtualK40;

fn dump(label: &str, cfg: &FitConfig) {
    let hw = VirtualK40::new();
    let fitted = fit(&hw, cfg);
    println!("== {label} ==");
    println!("const_power {}", fitted.const_power);
    println!("ep_stall {:.4} nJ", fitted.ep_stall.nanojoules());
    println!("EPI:\n{}", fitted.epi);
    println!("EPT:\n{}", fitted.ept);
}

#[test]
#[ignore = "manual inspection helper"]
fn dump_fit_fast() {
    dump("fast (tiny configuration)", &FitConfig::fast());
}

#[test]
#[ignore = "manual inspection helper"]
fn dump_fit_paper_scale() {
    dump("paper-scale (K40-class)", &FitConfig::default());
}
