//! Glue between the performance simulator and the virtual silicon: run a
//! kernel, extrapolate it to a sensor-resolvable duration, and measure it
//! through the board sensor.
//!
//! The paper's microbenchmarks loop for seconds on real hardware; cycle
//! simulation cannot afford that, but a steady-state loop's counts and
//! duration scale exactly linearly with its iteration count, so we
//! simulate a short run and replay it `R` times as one long kernel.

use common::units::{Energy, Power, Time};
use isa::{EventCounts, KernelProgram};
use silicon::{HiddenBehavior, KernelActivity, Measurement, RunProfile, VirtualK40};
use sim::{GpuConfig, GpuSim, KernelResult};

/// A microbenchmark measurement: the (scaled) counter record plus the
/// sensor measurement of the same run.
#[derive(Debug, Clone)]
pub struct ScaledMeasurement {
    /// Counter-visible events, scaled to the measured duration.
    pub counts: EventCounts,
    /// The sensor measurement.
    pub measurement: Measurement,
    /// The replication factor applied to the simulated run.
    pub replication: u64,
}

impl ScaledMeasurement {
    /// Duration covered by the sensor windows (slightly over the run).
    pub fn window_time(&self) -> Time {
        let n = self.measurement.samples.len() as f64;
        Time::from_millis(15.0 * n)
    }

    /// Dynamic (above-idle) energy implied by the measurement, given the
    /// measured idle power (Eq. 5's numerator).
    pub fn dynamic_energy(&self, idle: Power) -> Energy {
        (self.measurement.measured_energy - idle * self.window_time()).max_zero()
    }
}

/// Replication factor needed to stretch `duration` to at least `target`.
pub fn replication_factor(duration: Time, target: Time) -> u64 {
    if !duration.is_positive() {
        return 1;
    }
    (target.secs() / duration.secs()).ceil().max(1.0) as u64
}

/// Runs `program` on a fresh simulator for `cfg`, stretches the result to
/// `target` seconds, and measures it on `hw`.
pub fn run_and_measure(
    hw: &VirtualK40,
    cfg: &GpuConfig,
    program: &dyn KernelProgram,
    behavior: HiddenBehavior,
    target: Time,
) -> ScaledMeasurement {
    let mut sim = GpuSim::new(cfg);
    let result = sim.run_kernel(program);
    measure_scaled(hw, &result, behavior, target)
}

/// Stretches an existing simulation result to `target` and measures it.
pub fn measure_scaled(
    hw: &VirtualK40,
    result: &KernelResult,
    behavior: HiddenBehavior,
    target: Time,
) -> ScaledMeasurement {
    let r = replication_factor(result.counts.elapsed, target);
    let mut counts = result.counts.clone();
    counts.scale(r);
    let activity = KernelActivity::new(counts.elapsed, counts.clone(), behavior);
    let profile = RunProfile::new(result.name.clone()).kernel(activity);
    let measurement = hw.measure(&profile);
    ScaledMeasurement {
        counts,
        measurement,
        replication: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::Opcode;

    #[test]
    fn replication_reaches_target() {
        let r = replication_factor(Time::from_micros(20.0), Time::from_millis(750.0));
        assert_eq!(r, 37_500);
        assert_eq!(replication_factor(Time::ZERO, Time::from_secs(1.0)), 1);
        assert_eq!(
            replication_factor(Time::from_secs(2.0), Time::from_secs(1.0)),
            1
        );
    }

    #[test]
    fn run_and_measure_produces_steady_measurement() {
        let hw = VirtualK40::new();
        let cfg = GpuConfig::tiny(1);
        let k = crate::kernels::ComputeUbench::new(Opcode::FFma32, 500, &cfg.gpm);
        let m = run_and_measure(
            &hw,
            &cfg,
            &k,
            HiddenBehavior::regular(),
            Time::from_millis(600.0),
        );
        assert!(m.counts.elapsed.secs() >= 0.6);
        assert!(m.replication > 1);
        assert!(m.measurement.samples.len() >= 40);
        // Dynamic energy is positive and roughly ΔP × T.
        let idle = hw.measure_idle(Time::from_secs(1.0));
        assert!(m.dynamic_energy(idle).joules() > 0.0);
    }

    #[test]
    fn dynamic_energy_clamps_at_zero() {
        let hw = VirtualK40::new();
        let cfg = GpuConfig::tiny(1);
        let k = crate::kernels::ComputeUbench::new(Opcode::Mov32, 50, &cfg.gpm);
        let m = run_and_measure(
            &hw,
            &cfg,
            &k,
            HiddenBehavior::regular(),
            Time::from_millis(100.0),
        );
        // Even against an absurdly high idle estimate, no negative energy.
        let e = m.dynamic_energy(Power::from_watts(10_000.0));
        assert_eq!(e, Energy::ZERO);
    }
}
