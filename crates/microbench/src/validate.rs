//! Mixed-instruction validation (Fig. 4a of the paper).
//!
//! After fitting, the model is checked against microbenchmarks that
//! *combine* instruction types — the step that exposes coverage and
//! interaction issues the single-instruction benchmarks cannot see. The
//! paper reports errors between +2.5% and −6% for FADD64 combined with
//! each memory level; the slight underestimation is exactly what an
//! unmodeled compute↔memory interaction term produces.

use crate::harness::run_and_measure;
use crate::kernels::{MemLevel, MixedUbench};
use common::units::Time;
use gpujoule::{EnergyModel, ValidationItem, ValidationReport};
use isa::Opcode;
use silicon::{HiddenBehavior, VirtualK40};
use sim::GpuConfig;

/// The Fig. 4a combination set: FADD64 against each memory level, plus
/// the three-way L2 + DRAM combination.
pub fn fig4a_combinations() -> Vec<&'static str> {
    vec![
        "FADD64 + Shared Memory",
        "FADD64 + L1D Cache",
        "FADD64 + L2 Cache",
        "FADD64 + DRAM",
        "FADD64 + L2 Cache + DRAM",
    ]
}

/// Runs the mixed-instruction validation of a fitted model against the
/// virtual silicon, returning one item per combination.
pub fn validate_mixed(
    hw: &VirtualK40,
    model: &EnergyModel,
    gpu: &GpuConfig,
    target: Time,
) -> ValidationReport {
    let combos: Vec<(String, MixedUbench)> = vec![
        (
            "FADD64 + Shared Memory".into(),
            MixedUbench::new(Opcode::FAdd64, MemLevel::Shared, 6, &gpu.gpm),
        ),
        (
            "FADD64 + L1D Cache".into(),
            MixedUbench::new(Opcode::FAdd64, MemLevel::L1, 6, &gpu.gpm),
        ),
        (
            "FADD64 + L2 Cache".into(),
            MixedUbench::new(Opcode::FAdd64, MemLevel::L2, 6, &gpu.gpm),
        ),
        (
            "FADD64 + DRAM".into(),
            MixedUbench::new(Opcode::FAdd64, MemLevel::Dram, 6, &gpu.gpm),
        ),
        (
            "FADD64 + L2 Cache + DRAM".into(),
            MixedUbench::with_extra_dram(Opcode::FAdd64, 6, &gpu.gpm),
        ),
    ];

    combos
        .into_iter()
        .map(|(name, kernel)| {
            let run = run_and_measure(hw, gpu, &kernel, HiddenBehavior::regular(), target);
            let modeled = model.estimate_total(&run.counts);
            ValidationItem::new(name, modeled, run.measurement.measured_energy)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit, FitConfig};

    #[test]
    fn combination_list_matches_fig4a() {
        assert_eq!(fig4a_combinations().len(), 5);
    }

    #[test]
    fn mixed_validation_error_is_single_digit() {
        let hw = VirtualK40::new();
        let cfg = FitConfig::fast();
        let fitted = fit(&hw, &cfg);
        let model = fitted.to_energy_model();
        let report = validate_mixed(&hw, &model, &cfg.gpu, Time::from_millis(300.0));
        assert_eq!(report.len(), 5);
        // The paper-scale Fig. 4a band (+2.5%/−6%) is asserted by the
        // integration test on the full K40-class configuration. The tiny
        // 4-SM test configuration runs the memory system at a fraction of
        // its design rate, so the floor-power mismatch between the pure
        // and mixed benchmarks is proportionally larger; just require
        // single-digit mean error and bounded per-item error here.
        for item in report.items() {
            assert!(
                item.error_percent().abs() < 25.0,
                "{}: {:+.1}%",
                item.name,
                item.error_percent()
            );
        }
        assert!(report.mean_abs_error_percent() < 12.0);
    }
}
