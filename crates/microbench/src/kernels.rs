//! Microbenchmark kernels (paper §IV-A).
//!
//! Two families, exactly as in the paper:
//!
//! * **Compute microbenchmarks** execute one PTX instruction in a steady
//!   loop with everything else stripped away (Algorithm 1's inline-asm
//!   loop).
//! * **Data-movement microbenchmarks** size and stride their working sets
//!   so that every access is served by one chosen level of the hierarchy:
//!   shared memory, the L1, the L2 (working set over the L1s but under
//!   the L2), or DRAM (working set well over the L2). Accesses are
//!   warp-coalesced by construction.
//!
//! A third family of **mixed validation kernels** combines one compute
//! opcode with one memory level for the Fig. 4a validation step.

use common::{CtaId, WarpId};
use isa::{GridShape, KernelProgram, MemRef, Opcode, WarpInstr, WarpInstrStream};
use sim::GpmConfig;
use std::fmt;

/// Which memory level a data-movement microbenchmark stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Shared memory to register file.
    Shared,
    /// L1 cache (working set fits each SM's L1).
    L1,
    /// L2 cache (working set over the L1s, under the module L2).
    L2,
    /// DRAM (working set well over the L2).
    Dram,
}

impl MemLevel {
    /// All levels, nearest first (the order the derivation pipeline fits
    /// them, subtracting each level's cost from the next).
    pub const ALL: [MemLevel; 4] = [MemLevel::Shared, MemLevel::L1, MemLevel::L2, MemLevel::Dram];
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLevel::Shared => write!(f, "shared"),
            MemLevel::L1 => write!(f, "l1"),
            MemLevel::L2 => write!(f, "l2"),
            MemLevel::Dram => write!(f, "dram"),
        }
    }
}

/// Grid shape that exactly fills one GPM at full occupancy.
fn full_grid(gpm: &GpmConfig, warps_per_cta: u32) -> GridShape {
    let total_warps = (gpm.sms * gpm.max_resident_warps) as u32;
    GridShape::new(total_warps / warps_per_cta, warps_per_cta)
}

/// A compute microbenchmark: every warp executes `iterations` copies of
/// one opcode (Algorithm 1).
///
/// # Examples
///
/// ```
/// use microbench::kernels::ComputeUbench;
/// use sim::GpmConfig;
/// use isa::{KernelProgram, Opcode};
///
/// let k = ComputeUbench::new(Opcode::FFma32, 1000, &GpmConfig::k40_class());
/// assert_eq!(k.grid().total_warps(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct ComputeUbench {
    op: Opcode,
    iterations: u32,
    grid: GridShape,
    name: String,
}

impl ComputeUbench {
    /// Builds the benchmark for one opcode at a given iteration count,
    /// sized to fill `gpm`.
    pub fn new(op: Opcode, iterations: u32, gpm: &GpmConfig) -> Self {
        Self::with_grid(op, iterations, full_grid(gpm, 8))
    }

    /// Like [`ComputeUbench::new`] with an explicit grid — used by the
    /// occupancy sweep that isolates the lane-stall energy.
    pub fn with_grid(op: Opcode, iterations: u32, grid: GridShape) -> Self {
        ComputeUbench {
            op,
            iterations,
            grid,
            name: format!("ubench-{}", op.mnemonic()),
        }
    }

    /// The opcode under test.
    pub fn opcode(&self) -> Opcode {
        self.op
    }
}

impl KernelProgram for ComputeUbench {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> GridShape {
        self.grid
    }

    fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
        let op = self.op;
        Box::new((0..self.iterations).map(move |_| WarpInstr::Compute(op)))
    }
}

/// A data-movement microbenchmark targeting one hierarchy level.
#[derive(Debug, Clone)]
pub struct MemoryUbench {
    level: MemLevel,
    lines_per_warp: u64,
    passes: u32,
    grid: GridShape,
    region: u64,
    name: String,
}

impl MemoryUbench {
    /// Builds the benchmark for `level`, sized from the GPM geometry so
    /// the working set lands in the right level.
    pub fn new(level: MemLevel, gpm: &GpmConfig) -> Self {
        Self::with_grid(level, gpm, full_grid(gpm, 8))
    }

    /// Like [`MemoryUbench::new`] but with an explicit grid — used by the
    /// occupancy sweep that separates stall energy from transaction
    /// energy.
    pub fn with_grid(level: MemLevel, gpm: &GpmConfig, grid: GridShape) -> Self {
        let warps_per_sm = (grid.total_warps() as f64 / gpm.sms as f64).ceil().max(1.0) as u64;
        let l1_lines = gpm.l1_bytes.count() / 128;
        let l2_lines_per_warp = {
            // Over the L1s (per-SM footprint beyond L1 capacity), under the
            // module L2 across all SMs.
            let per_sm_target = l1_lines * 2;
            let total = gpm.l2_bytes.count() / 128 / 2; // half the L2
            (per_sm_target / warps_per_sm.min(per_sm_target))
                .min(total / grid.total_warps())
                .max(1)
        };
        // High pass counts keep the one-time warm-up fill a negligible
        // share of the traffic (Algorithm 1 loops inside the kernel).
        let (lines_per_warp, passes) = match level {
            MemLevel::Shared => (16, 160),
            // Fit all resident warps' slices in the L1 comfortably.
            MemLevel::L1 => ((l1_lines / (2 * warps_per_sm)).max(1), 640),
            MemLevel::L2 => (l2_lines_per_warp, 80),
            // Well past the L2: stream fresh lines.
            MemLevel::Dram => (96, 4),
        };
        MemoryUbench {
            level,
            lines_per_warp,
            passes,
            grid,
            region: 0x4000_0000_0000,
            name: format!("ubench-mem-{level}"),
        }
    }

    /// The level under test.
    pub fn level(&self) -> MemLevel {
        self.level
    }

    /// Memory references each warp performs.
    pub fn refs_per_warp(&self) -> u64 {
        self.lines_per_warp * self.passes as u64
    }
}

impl KernelProgram for MemoryUbench {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> GridShape {
        self.grid
    }

    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let warp_global = cta.0 as u64 * self.grid.warps_per_cta as u64 + warp.0 as u64;
        let level = self.level;
        let lines = self.lines_per_warp;
        let passes = self.passes as u64;
        let slice = self.region + warp_global * lines * 128;
        let dram_stride = lines * 128;
        Box::new((0..lines * passes).map(move |i| match level {
            MemLevel::Shared => {
                WarpInstr::Mem(MemRef::shared((i % lines) * 128 % (48 * 1024), false))
            }
            MemLevel::L1 | MemLevel::L2 => {
                WarpInstr::Mem(MemRef::global_load(slice + (i % lines) * 128))
            }
            MemLevel::Dram => {
                // Fresh lines every pass: pass p uses a disjoint slab, so
                // nothing is ever re-served by the L2.
                let pass = i / lines;
                let off = i % lines;
                WarpInstr::Mem(MemRef::global_load(
                    slice + pass * dram_stride * 4096 + off * 128,
                ))
            }
        }))
    }

    fn footprint_bytes(&self) -> u64 {
        match self.level {
            MemLevel::Shared => 48 * 1024,
            _ => self.grid.total_warps() * self.lines_per_warp * 128,
        }
    }
}

/// A mixed validation kernel: `compute_per_mem` copies of one opcode
/// between successive memory references at one level (the Fig. 4a
/// combinations, e.g. "FADD64 + L2 Cache").
#[derive(Debug, Clone)]
pub struct MixedUbench {
    op: Opcode,
    compute_per_mem: u32,
    mem: MemoryUbench,
    /// For the "L2 + DRAM" combination: a second interleaved DRAM-level
    /// reference stream.
    extra_dram: Option<MemoryUbench>,
    name: String,
}

impl MixedUbench {
    /// Builds `op` + one memory level.
    pub fn new(op: Opcode, level: MemLevel, compute_per_mem: u32, gpm: &GpmConfig) -> Self {
        MixedUbench {
            op,
            compute_per_mem,
            mem: MemoryUbench::new(level, gpm),
            extra_dram: None,
            name: format!("mixed-{}-{level}", op.mnemonic()),
        }
    }

    /// Builds the "FADD64 + L2 Cache + DRAM" style combination.
    pub fn with_extra_dram(op: Opcode, compute_per_mem: u32, gpm: &GpmConfig) -> Self {
        MixedUbench {
            op,
            compute_per_mem,
            mem: MemoryUbench::new(MemLevel::L2, gpm),
            extra_dram: Some(MemoryUbench::new(MemLevel::Dram, gpm)),
            name: format!("mixed-{}-l2+dram", op.mnemonic()),
        }
    }
}

impl KernelProgram for MixedUbench {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> GridShape {
        self.mem.grid
    }

    fn warp_instructions(&self, cta: CtaId, warp: WarpId) -> WarpInstrStream {
        let op = self.op;
        let k = self.compute_per_mem as usize;
        let mem_stream = self.mem.warp_instructions(cta, warp);
        match &self.extra_dram {
            None => Box::new(mem_stream.flat_map(move |m| {
                std::iter::repeat_n(WarpInstr::Compute(op), k).chain(std::iter::once(m))
            })),
            Some(extra) => {
                let dram_stream = extra.warp_instructions(cta, warp);
                // Interleave: compute burst, L2 ref, compute burst, DRAM ref.
                let zipped = mem_stream.zip(dram_stream);
                Box::new(zipped.flat_map(move |(a, b)| {
                    std::iter::repeat_n(WarpInstr::Compute(op), k)
                        .chain(std::iter::once(a))
                        .chain(std::iter::repeat_n(WarpInstr::Compute(op), k))
                        .chain(std::iter::once(b))
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::MemSpace;
    use sim::{GpuConfig, GpuSim};

    #[test]
    fn compute_ubench_is_pure() {
        let gpm = GpmConfig::tiny();
        let k = ComputeUbench::new(Opcode::FRcp32, 100, &gpm);
        let v: Vec<_> = k.warp_instructions(CtaId::new(0), WarpId::new(0)).collect();
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|i| *i == WarpInstr::Compute(Opcode::FRcp32)));
    }

    #[test]
    fn full_grid_fills_all_sms() {
        let gpm = GpmConfig::k40_class();
        let k = ComputeUbench::new(Opcode::FAdd32, 10, &gpm);
        assert_eq!(
            k.grid().total_warps() as usize,
            gpm.sms * gpm.max_resident_warps
        );
    }

    #[test]
    fn l1_ubench_hits_l1_after_warmup() {
        let cfg = GpuConfig::tiny(1);
        let mut sim = GpuSim::new(&cfg);
        let k = MemoryUbench::new(MemLevel::L1, &cfg.gpm);
        sim.run_kernel(&k);
        assert!(
            sim.memory().l1_hit_rate() > 0.9,
            "L1 ubench hit rate {}",
            sim.memory().l1_hit_rate()
        );
    }

    #[test]
    fn l2_ubench_misses_l1_but_hits_l2() {
        let cfg = GpuConfig::tiny(1);
        let mut sim = GpuSim::new(&cfg);
        let k = MemoryUbench::new(MemLevel::L2, &cfg.gpm);
        sim.run_kernel(&k);
        assert!(
            sim.memory().l1_hit_rate() < 0.35,
            "L2 ubench should thrash L1s, hit rate {}",
            sim.memory().l1_hit_rate()
        );
        assert!(
            sim.memory().l2_hit_rate() > 0.7,
            "L2 ubench should hit L2, hit rate {}",
            sim.memory().l2_hit_rate()
        );
    }

    #[test]
    fn dram_ubench_misses_l2() {
        let cfg = GpuConfig::tiny(1);
        let mut sim = GpuSim::new(&cfg);
        let k = MemoryUbench::new(MemLevel::Dram, &cfg.gpm);
        sim.run_kernel(&k);
        assert!(
            sim.memory().l2_hit_rate() < 0.1,
            "DRAM ubench should stream past L2, hit rate {}",
            sim.memory().l2_hit_rate()
        );
    }

    #[test]
    fn shared_ubench_stays_on_chip() {
        let cfg = GpuConfig::tiny(1);
        let mut sim = GpuSim::new(&cfg);
        let k = MemoryUbench::new(MemLevel::Shared, &cfg.gpm);
        let r = sim.run_kernel(&k);
        assert!(r.counts.txns.get(isa::Transaction::SharedToReg) > 0);
        assert_eq!(r.counts.txns.get(isa::Transaction::DramToL2), 0);
    }

    #[test]
    fn mixed_ubench_interleaves() {
        let gpm = GpmConfig::tiny();
        let k = MixedUbench::new(Opcode::FAdd64, MemLevel::L1, 3, &gpm);
        let v: Vec<_> = k.warp_instructions(CtaId::new(0), WarpId::new(0)).collect();
        let computes = v
            .iter()
            .filter(|i| matches!(i, WarpInstr::Compute(_)))
            .count();
        let mems = v
            .iter()
            .filter(|i| matches!(i, WarpInstr::Mem(m) if m.space == MemSpace::Global))
            .count();
        assert_eq!(computes, 3 * mems);
    }

    #[test]
    fn mixed_with_dram_has_both_levels() {
        let cfg = GpuConfig::tiny(1);
        let mut sim = GpuSim::new(&cfg);
        let k = MixedUbench::with_extra_dram(Opcode::FAdd64, 4, &cfg.gpm);
        let r = sim.run_kernel(&k);
        assert!(r.counts.instrs.get(Opcode::FAdd64) > 0);
        assert!(r.counts.txns.get(isa::Transaction::DramToL2) > 0);
        // The L2 component should be visible as a decent hit rate.
        assert!(sim.memory().l2_hit_rate() > 0.2);
    }

    #[test]
    fn occupancy_variants_change_parallelism() {
        let gpm = GpmConfig::k40_class();
        let low = MemoryUbench::with_grid(MemLevel::Dram, &gpm, GridShape::new(16, 1));
        let high = MemoryUbench::new(MemLevel::Dram, &gpm);
        assert!(low.grid().total_warps() < high.grid().total_warps());
    }

    #[test]
    fn display_and_accessors() {
        let gpm = GpmConfig::tiny();
        assert_eq!(MemLevel::Dram.to_string(), "dram");
        let k = MemoryUbench::new(MemLevel::L2, &gpm);
        assert_eq!(k.level(), MemLevel::L2);
        assert!(k.refs_per_warp() > 0);
        assert!(k.name().contains("l2"));
        let c = ComputeUbench::new(Opcode::FSin32, 5, &gpm);
        assert_eq!(c.opcode(), Opcode::FSin32);
    }
}
