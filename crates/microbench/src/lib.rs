#![deny(missing_docs)]

//! The GPUJoule microbenchmark suite and EPI/EPT derivation pipeline
//! (paper §IV and Fig. 3).
//!
//! The paper derives its energy model by running microbenchmarks on a
//! Tesla K40 and reading the board power sensor; this crate does the same
//! against the `silicon` crate's virtual K40, using the `sim` crate for
//! timing. The pipeline never reads the silicon's hidden parameters —
//! recovering Table Ib through the sensor is the point of the exercise.
//!
//! # Examples
//!
//! ```no_run
//! use microbench::{fit, FitConfig};
//! use silicon::VirtualK40;
//!
//! let hw = VirtualK40::new();
//! let fitted = fit(&hw, &FitConfig::default());
//! println!("{}", fitted.epi);
//! ```

pub mod fit;
pub mod harness;
pub mod kernels;
pub mod validate;

pub use fit::{fit, FitConfig, FittedModel};
pub use harness::{measure_scaled, replication_factor, run_and_measure, ScaledMeasurement};
pub use kernels::{ComputeUbench, MemLevel, MemoryUbench, MixedUbench};
pub use validate::{fig4a_combinations, validate_mixed};
