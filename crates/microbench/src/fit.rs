//! The EPI/EPT derivation pipeline (paper §IV-B, Eq. 5, and the Fig. 3
//! refinement loop).
//!
//! Fitting proceeds the way the paper describes:
//!
//! 1. measure idle power;
//! 2. for every PTX opcode, run its compute microbenchmark and apply
//!    Eq. 5: `EPI = (P_active − P_idle) × T / N`;
//! 3. for every memory level (near to far), run its pointer-chase
//!    microbenchmark and fit the per-transaction energy after subtracting
//!    the already-fitted contributions of nearer levels;
//! 4. fit the lane-stall energy jointly with the DRAM transaction energy
//!    from an occupancy sweep (low-occupancy runs are stall-dominated,
//!    full-occupancy runs are transaction-dominated);
//! 5. iterate 2–4: warm-up traffic and stall energy couple the fits, so a
//!    few fixed-point rounds sharpen them (the refinement loop of Fig. 3).

use crate::harness::{run_and_measure, ScaledMeasurement};
use crate::kernels::{ComputeUbench, MemLevel, MemoryUbench};
use common::units::{Energy, Power, Time};
use gpujoule::{EnergyModel, EnergyModelBuilder, EpiTable, EptTable};
use isa::{GridShape, Opcode, Transaction};
use silicon::{HiddenBehavior, VirtualK40};
use sim::GpuConfig;

/// Configuration of the fitting pipeline.
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// The single-GPM configuration microbenchmarks run on.
    pub gpu: GpuConfig,
    /// Virtual duration each microbenchmark is stretched to (long enough
    /// for dozens of 15 ms sensor windows).
    pub target_duration: Time,
    /// Per-warp iterations of each compute microbenchmark.
    pub compute_iterations: u32,
    /// Fixed-point refinement rounds.
    pub rounds: u32,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            gpu: GpuConfig::single_gpm(),
            target_duration: Time::from_millis(750.0),
            compute_iterations: 1500,
            rounds: 3,
        }
    }
}

impl FitConfig {
    /// A reduced configuration for fast tests (tiny GPM, shorter targets).
    pub fn fast() -> Self {
        FitConfig {
            gpu: GpuConfig::tiny(1),
            target_duration: Time::from_millis(300.0),
            compute_iterations: 400,
            rounds: 2,
        }
    }
}

/// The result of fitting GPUJoule against (virtual) silicon.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Fitted per-instruction energies.
    pub epi: EpiTable,
    /// Fitted per-transaction energies.
    pub ept: EptTable,
    /// Fitted lane-stall energy.
    pub ep_stall: Energy,
    /// Measured idle power (Eq. 4's `Const_Power`).
    pub const_power: Power,
    /// Refinement rounds executed.
    pub rounds: u32,
}

impl FittedModel {
    /// Builds the evaluable energy model from the fitted parameters.
    pub fn to_energy_model(&self) -> EnergyModel {
        EnergyModelBuilder::new()
            .epi_table(self.epi.clone())
            .ept_table(self.ept.clone())
            .ep_stall(self.ep_stall)
            .const_power(self.const_power)
            .build()
    }
}

/// Runs the full fitting pipeline against `hw`.
///
/// This is the paper's workflow end to end: the fitting code never reads
/// the silicon's hidden truth model — only the sensor.
pub fn fit(hw: &VirtualK40, cfg: &FitConfig) -> FittedModel {
    let idle = hw.measure_idle(Time::from_secs(2.0));
    let behavior = HiddenBehavior::regular();

    // ---- run every microbenchmark once (results are reused across
    // refinement rounds; the runs themselves are deterministic) ----------
    let compute_runs: Vec<(Opcode, ScaledMeasurement)> = Opcode::ALL
        .iter()
        .map(|&op| {
            let k = ComputeUbench::new(op, cfg.compute_iterations, &cfg.gpu.gpm);
            (
                op,
                run_and_measure(hw, &cfg.gpu, &k, behavior, cfg.target_duration),
            )
        })
        .collect();

    let mem_runs: Vec<(MemLevel, ScaledMeasurement)> = MemLevel::ALL
        .iter()
        .map(|&level| {
            let k = MemoryUbench::new(level, &cfg.gpu.gpm);
            (
                level,
                run_and_measure(hw, &cfg.gpu, &k, behavior, cfg.target_duration),
            )
        })
        .collect();

    // Occupancy sweep of a *compute* benchmark for the stall fit: at low
    // occupancy the SM stalls on the dependency latency of a single warp,
    // at full occupancy it barely stalls, and — unlike a memory sweep —
    // there is no memory-subsystem activity to confound the fit.
    let sms = cfg.gpu.gpm.sms as u32;
    let occupancy_grids = [
        GridShape::new(sms, 1),
        GridShape::new(sms, 2),
        GridShape::new(sms, 4),
        GridShape::new(sms * (cfg.gpu.gpm.max_resident_warps as u32 / 8).max(1), 8),
    ];
    let occ_runs: Vec<ScaledMeasurement> = occupancy_grids
        .iter()
        .map(|&grid| {
            let k = ComputeUbench::with_grid(Opcode::FAdd32, cfg.compute_iterations, grid);
            run_and_measure(hw, &cfg.gpu, &k, behavior, cfg.target_duration)
        })
        .collect();

    // ---- fixed-point refinement ----------------------------------------
    let mut epi = EpiTable::zeroed();
    let mut ept = EptTable::zeroed();

    // Joint (EPI_fadd32, EPStall) least squares over the compute
    // occupancy sweep: E_dyn_i = epi·instrs_i + ep_stall·stalls_i.
    let rows: Vec<(f64, f64, f64)> = occ_runs
        .iter()
        .map(|run| {
            (
                run.counts.instrs.get(Opcode::FAdd32) as f64,
                run.counts.stall_cycles as f64,
                run.dynamic_energy(idle).joules(),
            )
        })
        .collect();
    let ep_stall = match solve_2x2_lsq(&rows) {
        Some((_, stall)) => Energy::from_joules(stall.max(0.0)),
        None => Energy::ZERO,
    };

    for _ in 0..cfg.rounds.max(1) {
        // EPIs (Eq. 5), subtracting the fitted stall energy.
        for (op, run) in &compute_runs {
            let n = run.counts.instrs.get(*op);
            if n == 0 {
                continue;
            }
            let e_dyn = run.dynamic_energy(idle);
            let e_stall = ep_stall * run.counts.stall_cycles as f64;
            let e_op = (e_dyn - e_stall).max_zero();
            epi.set(*op, e_op / n as f64);
        }

        // EPTs, near to far, subtracting everything already known.
        for (level, run) in &mem_runs {
            let target_txn = match level {
                MemLevel::Shared => Transaction::SharedToReg,
                MemLevel::L1 => Transaction::L1ToReg,
                MemLevel::L2 => Transaction::L2ToL1,
                MemLevel::Dram => Transaction::DramToL2,
            };
            let txns = run.counts.txns.get(target_txn);
            if txns == 0 {
                continue;
            }
            let residual = residual_energy(run, idle, &epi, &ept, ep_stall, target_txn);
            ept.set(target_txn, residual / txns as f64);
        }
    }

    FittedModel {
        epi,
        ept,
        ep_stall,
        const_power: idle,
        rounds: cfg.rounds,
    }
}

/// Energy of a run explained by the already-fitted terms, *excluding* the
/// transaction class being fitted (and optionally stalls).
fn known_energy(
    run: &ScaledMeasurement,
    epi: &EpiTable,
    ept: &EptTable,
    ep_stall: Energy,
    excluding: Transaction,
) -> Energy {
    let mut e = Energy::ZERO;
    for (op, n) in run.counts.instrs.iter() {
        e += epi.get(op) * n as f64;
    }
    for (t, n) in run.counts.txns.iter() {
        if t != excluding && t.is_intra_gpm() {
            e += ept.get(t) * n as f64;
        }
    }
    e + ep_stall * run.counts.stall_cycles as f64
}

/// Residual dynamic energy attributable to the class being fitted.
fn residual_energy(
    run: &ScaledMeasurement,
    idle: Power,
    epi: &EpiTable,
    ept: &EptTable,
    ep_stall: Energy,
    target: Transaction,
) -> Energy {
    (run.dynamic_energy(idle) - known_energy(run, epi, ept, ep_stall, target)).max_zero()
}

/// Ordinary least squares for two unknowns over rows `(a1, a2, b)`.
/// Returns `None` if the normal matrix is singular.
fn solve_2x2_lsq(rows: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
    let (mut s11, mut s12, mut s22, mut r1, mut r2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(a1, a2, b) in rows {
        s11 += a1 * a1;
        s12 += a1 * a2;
        s22 += a2 * a2;
        r1 += a1 * b;
        r2 += a2 * b;
    }
    let det = s11 * s22 - s12 * s12;
    if det.abs() < 1e-12 * (s11 * s22).max(1.0) {
        return None;
    }
    Some(((r1 * s22 - r2 * s12) / det, (r2 * s11 - r1 * s12) / det))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsq_solves_exact_system() {
        // b = 2*a1 + 0.5*a2 exactly.
        let rows = vec![(1.0, 0.0, 2.0), (0.0, 2.0, 1.0), (1.0, 2.0, 3.0)];
        let (x, y) = solve_2x2_lsq(&rows).unwrap();
        assert!((x - 2.0).abs() < 1e-9);
        assert!((y - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lsq_rejects_singular() {
        let rows = vec![(1.0, 2.0, 3.0), (2.0, 4.0, 6.0)];
        assert!(solve_2x2_lsq(&rows).is_none());
    }

    #[test]
    fn fit_recovers_planted_parameters_on_tiny_hw() {
        // End-to-end: the pipeline only sees the sensor, yet must land
        // close to the hidden truth. Tiny config for speed; the full-size
        // accuracy test lives in the integration suite.
        let hw = VirtualK40::new();
        let cfg = FitConfig::fast();
        let fitted = fit(&hw, &cfg);

        let truth = hw.truth();
        // Idle power recovered.
        assert!((fitted.const_power.watts() - truth.idle_power().watts()).abs() < 1.5);

        // Compute EPIs within ~12% (sensor noise + stall coupling).
        for op in [
            Opcode::FFma32,
            Opcode::FAdd64,
            Opcode::FRcp32,
            Opcode::IAdd32,
        ] {
            let got = fitted.epi.get(op).nanojoules();
            let want = truth.true_epi(op).nanojoules();
            let err = (got - want).abs() / want;
            assert!(
                err < 0.12,
                "{op}: fitted {got:.4} vs true {want:.4} ({err:.3})"
            );
        }

        // Memory EPTs: shared/L1 should recover truth closely; L2/DRAM
        // absorb the floor power and land at or above truth.
        let shared = fitted.ept.get(Transaction::SharedToReg).nanojoules();
        assert!((shared - 5.45).abs() / 5.45 < 0.15, "shared {shared}");
        let l1 = fitted.ept.get(Transaction::L1ToReg).nanojoules();
        assert!((l1 - 5.99).abs() / 5.99 < 0.15, "l1 {l1}");
        // The tiny configuration is latency-bound (4 SMs cannot saturate
        // the K40-class L2/DRAM), so the floor power spreads over fewer
        // transactions than on the full configuration and the fitted
        // L2/DRAM values land well above truth. The full-size recovery
        // test (fitted ≈ Table Ib) lives in tests/pipeline.rs.
        let l2 = fitted.ept.get(Transaction::L2ToL1).nanojoules();
        assert!(l2 > 3.0 && l2 < 14.0, "l2 {l2}");
        let dram = fitted.ept.get(Transaction::DramToL2).nanojoules();
        assert!(dram > 5.0 && dram < 20.0, "dram {dram}");

        // Stall energy is non-negative and bounded.
        assert!(fitted.ep_stall.nanojoules() >= 0.0);
        assert!(fitted.ep_stall.nanojoules() < 2.0);

        // The fitted model is usable.
        let model = fitted.to_energy_model();
        assert!(model.const_power().watts() > 50.0);
    }
}
