//! Quick phase-level timing harness for the compute/32gpm bench shape.
//! Run with: cargo run --release -p sim --example prof

use common::{CtaId, WarpId};
use isa::{GridShape, KernelProgram, Opcode, WarpInstr, WarpInstrStream};
use sim::{EngineMode, GpuConfig, GpuSim};
use std::time::Instant;

struct ComputeBound {
    ctas: u32,
    warps: u32,
    len: u32,
}

impl KernelProgram for ComputeBound {
    fn name(&self) -> &str {
        "prof-compute"
    }
    fn grid(&self) -> GridShape {
        GridShape::new(self.ctas, self.warps)
    }
    fn warp_instructions(&self, _cta: CtaId, _warp: WarpId) -> WarpInstrStream {
        Box::new((0..self.len).map(|_| WarpInstr::Compute(Opcode::FFma32)))
    }
    fn uniform_warp_program(&self) -> Option<Vec<WarpInstr>> {
        Some(vec![WarpInstr::Compute(Opcode::FFma32); self.len as usize])
    }
}

fn main() {
    let gpms = 32usize;
    let cfg = GpuConfig::paper(gpms, sim::BwSetting::X2, sim::Topology::Ring);
    let program = ComputeBound {
        ctas: gpms as u32 * 16,
        warps: 8,
        len: 96,
    };

    for mode in [EngineMode::EventDriven, EngineMode::Naive] {
        // Warm up.
        let mut sim = GpuSim::with_mode(&cfg, mode);
        sim.run_kernel(&program);

        let iters = 20;
        let mut t_construct = 0.0;
        let mut t_run = 0.0;
        let mut cycles = 0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let mut sim = GpuSim::with_mode(&cfg, mode);
            let t1 = Instant::now();
            cycles = sim.run_kernel(&program).cycles;
            t_construct += t1.duration_since(t0).as_secs_f64();
            t_run += t1.elapsed().as_secs_f64();
        }
        println!(
            "{mode:?}: construct {:.3} ms  run {:.3} ms  ({} cycles, {:.0} cyc/s)",
            t_construct / iters as f64 * 1e3,
            t_run / iters as f64 * 1e3,
            cycles,
            cycles as f64 / (t_run / iters as f64)
        );

        // Reused-sim path (scratch warm): construct once, run many.
        let mut sim = GpuSim::with_mode(&cfg, mode);
        sim.run_kernel(&program);
        let t0 = Instant::now();
        for _ in 0..iters {
            sim.run_kernel(&program);
        }
        let warm = t0.elapsed().as_secs_f64() / iters as f64;
        println!(
            "{mode:?}: warm-reuse run {:.3} ms ({:.0} cyc/s)",
            warm * 1e3,
            cycles as f64 / warm
        );
    }
}
