//! Property tests for the simulator's core data structures: cache
//! bookkeeping, bandwidth queues, ring routing, and page placement.

use common::GpmId;
use proptest::prelude::*;
use sim::bw::BwResource;
use sim::cache::Cache;
use sim::noc::Noc;
use sim::pages::PageTable;
use sim::{BwSetting, GpuConfig, Topology};

proptest! {
    #[test]
    fn cache_hits_plus_misses_equals_accesses(
        addrs in prop::collection::vec(0_u64..1 << 20, 1..400),
        stores in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut c = Cache::new(16 * 1024, 4, 128);
        let n = addrs.len().min(stores.len());
        for i in 0..n {
            c.access(addrs[i], stores[i]);
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, n as u64);
    }

    #[test]
    fn cache_second_pass_hits_when_working_set_fits(
        start in (0_u64..1 << 16).prop_map(|v| v * 128),
        lines in 1_usize..96,
    ) {
        // 96 lines over 128 available (16 KiB, 4-way): no capacity misses
        // on a repeat pass, and modulo-indexed sets see at most `assoc`
        // lines each from a contiguous range (no conflict misses either).
        let mut c = Cache::new(16 * 1024, 4, 128);
        for i in 0..lines {
            c.access(start + i as u64 * 128, false);
        }
        for i in 0..lines {
            prop_assert!(c.access(start + i as u64 * 128, false).is_hit());
        }
    }

    #[test]
    fn cache_flush_returns_only_dirty_lines(
        ops in prop::collection::vec((0_u64..1 << 14, any::<bool>()), 1..200),
    ) {
        let mut c = Cache::new(8 * 1024, 2, 128);
        for &(addr, store) in &ops {
            c.access(addr * 128, store);
        }
        let dirty = c.flush_all();
        // Everything returned must correspond to some store the test made
        // (line-aligned address of a stored access).
        for line in dirty {
            prop_assert!(ops.iter().any(|&(a, s)| s && (a * 128) & !127 == line));
        }
        // And the cache is empty afterwards.
        let probe_miss = !c.probe(ops[0].0 * 128);
        prop_assert!(probe_miss);
    }

    #[test]
    fn bw_completion_never_precedes_request(
        requests in prop::collection::vec((1_u64..4096, 0_u64..1 << 20), 1..200),
    ) {
        let mut r = BwResource::new(64.0);
        let mut sorted = requests.clone();
        sorted.sort_by_key(|&(_, now)| now);
        let mut last_completion = 0;
        for (bytes, now) in sorted {
            let done = r.acquire(bytes, now);
            prop_assert!(done >= now, "completion {done} precedes request {now}");
            // FIFO service: completions are monotone when arrivals are.
            prop_assert!(done >= last_completion);
            last_completion = done;
        }
    }

    #[test]
    fn bw_backlog_conserves_service_time(
        requests in prop::collection::vec(1_u64..4096, 1..100),
    ) {
        // All arriving at time 0: the last completion is at least
        // total_bytes / rate.
        let mut r = BwResource::new(128.0);
        let mut last = 0;
        for &bytes in &requests {
            last = r.acquire(bytes, 0);
        }
        let total: u64 = requests.iter().sum();
        let min_cycles = (total as f64 / 128.0).floor() as u64;
        prop_assert!(last >= min_cycles);
        prop_assert!(last <= min_cycles + requests.len() as u64 + 2);
    }

    #[test]
    fn ring_transfer_arrives_no_earlier_than_now(
        n in 2_usize..33,
        src in 0_u16..32,
        dst in 0_u16..32,
        bytes in 1_u64..4096,
        now in 0_u64..1 << 20,
    ) {
        let src = src % n as u16;
        let dst = dst % n as u16;
        let cfg = GpuConfig::paper(n, BwSetting::X2, Topology::Ring);
        let mut noc = Noc::new(&cfg);
        let arrival = noc.transfer(GpmId::new(src), GpmId::new(dst), bytes, now);
        prop_assert!(arrival >= now);
        if src != dst {
            // Hop-bytes are bounded by the worst half-ring distance.
            prop_assert!(noc.hop_bytes() <= bytes * (n as u64 / 2).max(1));
            prop_assert!(noc.hop_bytes() >= bytes);
            prop_assert_eq!(noc.transfer_bytes(), bytes);
        } else {
            prop_assert_eq!(noc.hop_bytes(), 0);
        }
    }

    #[test]
    fn page_table_first_touch_is_stable(
        touches in prop::collection::vec((0_u64..1 << 24, 0_u16..8), 1..300),
    ) {
        let mut pt = PageTable::new(64 * 1024);
        let mut first: std::collections::HashMap<u64, GpmId> = Default::default();
        for &(addr, gpm) in &touches {
            let home = pt.home_of(addr, GpmId::new(gpm));
            let expected = *first.entry(addr / (64 * 1024)).or_insert(home);
            prop_assert_eq!(home, expected);
        }
        // Lookup agrees with home_of for every touched address.
        for &(addr, _) in &touches {
            prop_assert_eq!(pt.lookup(addr), first.get(&(addr / (64 * 1024))).copied());
        }
    }
}
